#include "net/bus.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace garnet::net {
namespace {

using util::Duration;

struct BusFixture : ::testing::Test {
  sim::Scheduler scheduler;
  obs::MetricsRegistry registry;
  MessageBus bus{scheduler, MessageBus::Config{}};

  BusFixture() { bus.set_metrics(registry); }

  [[nodiscard]] std::uint64_t counter(std::string_view name) {
    return registry.snapshot().counter(name);
  }
};

TEST_F(BusFixture, DeliversToEndpoint) {
  std::vector<Envelope> received;
  const Address a = bus.add_endpoint("a", [&](Envelope e) { received.push_back(std::move(e)); });
  const Address b = bus.add_endpoint("b", [&](Envelope) { FAIL() << "wrong endpoint"; });
  (void)b;

  bus.post(b, a, MessageType::kAppBase, util::to_bytes("hello"));
  scheduler.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, b);
  EXPECT_EQ(received[0].to, a);
  EXPECT_EQ(util::to_string(received[0].payload), "hello");
}

TEST_F(BusFixture, DeliveryTakesLatency) {
  const Address a = bus.add_endpoint("a", [&](Envelope e) {
    EXPECT_GE((scheduler.now() - e.sent_at).ns, MessageBus::Config{}.latency.ns);
  });
  bus.post(a, a, MessageType::kAppBase, {});
  scheduler.run();
  EXPECT_EQ(counter("garnet.bus.delivered"), 1u);
}

TEST_F(BusFixture, LookupByName) {
  const Address a = bus.add_endpoint("service.alpha", [](Envelope) {});
  EXPECT_EQ(bus.lookup("service.alpha"), a);
  EXPECT_EQ(bus.lookup("service.beta"), std::nullopt);
}

TEST_F(BusFixture, RemoveEndpointStopsDelivery) {
  int count = 0;
  const Address a = bus.add_endpoint("a", [&](Envelope) { ++count; });
  bus.post(a, a, MessageType::kAppBase, {});
  scheduler.run();
  EXPECT_EQ(count, 1);

  bus.remove_endpoint(a);
  EXPECT_EQ(bus.lookup("a"), std::nullopt);
  bus.post(a, a, MessageType::kAppBase, {});
  scheduler.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(counter("garnet.bus.dropped_no_endpoint"), 1u);
}

TEST_F(BusFixture, MessageToUnknownAddressDropped) {
  bus.post(Address{}, Address{999}, MessageType::kAppBase, {});
  scheduler.run();
  EXPECT_EQ(counter("garnet.bus.dropped_no_endpoint"), 1u);
  EXPECT_EQ(counter("garnet.bus.delivered"), 0u);
}

TEST_F(BusFixture, InFlightMessageSurvivesEndpointChurn) {
  // A message posted before its target deregisters is dropped at
  // delivery time, not crashed on.
  const Address a = bus.add_endpoint("a", [](Envelope) { FAIL(); });
  bus.post(a, a, MessageType::kAppBase, {});
  bus.remove_endpoint(a);
  scheduler.run();
  EXPECT_EQ(counter("garnet.bus.dropped_no_endpoint"), 1u);
}

TEST_F(BusFixture, StatsCountBytes) {
  const Address a = bus.add_endpoint("a", [](Envelope) {});
  bus.post(a, a, MessageType::kAppBase, util::Bytes(10));
  bus.post(a, a, MessageType::kAppBase, util::Bytes(22));
  scheduler.run();
  EXPECT_EQ(counter("garnet.bus.posted"), 2u);
  EXPECT_EQ(counter("garnet.bus.bytes"), 32u);
}

TEST_F(BusFixture, FaultCountersExposedEvenWithoutInjector) {
  // The exposition schema is stable: a fault-free bus still reports all
  // five garnet.bus.faults kinds (as zero) and the garnet.rpc.* family.
  const obs::MetricsSnapshot snap = registry.snapshot();
  for (const char* kind : {"drop", "duplicate", "delay", "reorder", "partition"}) {
    ASSERT_NE(snap.find("garnet.bus.faults", {{"kind", kind}}), nullptr) << kind;
    EXPECT_EQ(snap.counter("garnet.bus.faults", {{"kind", kind}}), 0u) << kind;
  }
  ASSERT_NE(snap.find("garnet.rpc.calls"), nullptr);
  ASSERT_NE(snap.find("garnet.rpc.retries"), nullptr);
  ASSERT_NE(snap.find("garnet.rpc.exhausted"), nullptr);
  ASSERT_NE(snap.find("garnet.rpc.deduped"), nullptr);
}

TEST_F(BusFixture, PayloadAccountingExposedByCollector) {
  // The deprecated stats() shim is gone; the collector is the only read
  // surface, and it now carries the zero-copy payload accounting. The
  // counters are process-wide and monotonic, so assert deltas.
  const std::uint64_t allocs_before = counter("garnet.bus.payload_allocs");
  const std::uint64_t bytes_before = counter("garnet.bus.payload_alloc_bytes");
  const Address a = bus.add_endpoint("a", [](Envelope) {});
  bus.post(a, a, MessageType::kAppBase, util::Bytes(8));
  scheduler.run();
  EXPECT_EQ(counter("garnet.bus.payload_allocs") - allocs_before, 1u);
  EXPECT_EQ(counter("garnet.bus.payload_alloc_bytes") - bytes_before, 8u);
  ASSERT_NE(registry.snapshot().find("garnet.bus.payload_copies"), nullptr);
}

TEST_F(BusFixture, SharedPayloadSurvivesSenderSideDestruction) {
  // The sender's handle dies before delivery; the queued envelope's
  // refcount keeps the allocation alive, so the receiver reads the very
  // same bytes, never a rescue copy.
  const std::byte* data = nullptr;
  std::vector<Envelope> received;
  const Address a = bus.add_endpoint("a", [&](Envelope e) { received.push_back(std::move(e)); });

  const std::uint64_t copies_before = counter("garnet.bus.payload_copies");
  {
    util::SharedBytes frame{util::to_bytes("outlives the sender")};
    data = frame.data();
    bus.post(a, a, MessageType::kAppBase, std::move(frame));
  }  // sender-side handle destroyed here; delivery still pending

  scheduler.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].payload.data(), data);
  EXPECT_EQ(util::to_string(received[0].payload), "outlives the sender");
  EXPECT_EQ(counter("garnet.bus.payload_copies"), copies_before);
}

TEST(BusFaultAliasing, InjectedDuplicateSharesTheBufferNotACopy) {
  sim::Scheduler scheduler;
  MessageBus::Config config;
  config.faults.links[{"src", "dst"}].duplicate = 1.0;
  MessageBus bus(scheduler, config);
  obs::MetricsRegistry registry;
  bus.set_metrics(registry);

  std::vector<const std::byte*> seen;
  const Address dst =
      bus.add_endpoint("dst", [&](Envelope e) { seen.push_back(e.payload.data()); });
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  const std::uint64_t allocs_before = registry.snapshot().counter("garnet.bus.payload_allocs");
  const std::uint64_t copies_before = registry.snapshot().counter("garnet.bus.payload_copies");
  bus.post(src, dst, MessageType::kAppBase, util::Bytes(256));
  scheduler.run();

  // Original + injected duplicate arrived, aliasing one allocation.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(bus.fault_injector()->counters().duplicated, 1u);
  EXPECT_EQ(registry.snapshot().counter("garnet.bus.payload_allocs") - allocs_before, 1u);
  EXPECT_EQ(registry.snapshot().counter("garnet.bus.payload_copies") - copies_before, 0u);
}

TEST_F(BusFixture, OrderPreservedForEqualJitter) {
  MessageBus::Config config;
  config.latency = Duration::micros(100);
  config.max_jitter = Duration::nanos(0);
  MessageBus nojitter(scheduler, config);
  std::vector<int> order;
  const Address a = nojitter.add_endpoint("a", [&](Envelope e) {
    util::ByteReader r(e.payload);
    order.push_back(static_cast<int>(r.u32()));
  });
  for (int i = 0; i < 5; ++i) {
    util::ByteWriter w(4);
    w.u32(static_cast<std::uint32_t>(i));
    nojitter.post(a, a, MessageType::kAppBase, std::move(w).take());
  }
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(BusFixture, AddressesAreUniqueAndValid) {
  const Address a = bus.add_endpoint("a", [](Envelope) {});
  const Address b = bus.add_endpoint("b", [](Envelope) {});
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace garnet::net
