// Determinism is the reproduction's measurement foundation: a seed fully
// determines every radio loss, every mobility path, every jitter draw
// and every service decision. These properties run the FULL system and
// compare complete event traces.
#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

/// A compact fingerprint of everything observable in one run.
struct Trace {
  std::vector<std::uint64_t> deliveries;  // (stream, seq, time) hashes
  std::uint64_t radio_frames = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t acks = 0;
  std::uint64_t prearm_hits = 0;

  bool operator==(const Trace&) const = default;
};

Trace run_full_scenario(std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {700, 700}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.08;
  config.field.radio.edge_loss = 0.25;
  Runtime runtime(config);
  runtime.deploy_receivers(9, 280);
  runtime.deploy_transmitters(4, 400);

  wireless::SensorField::PopulationSpec population;
  population.count = 6;
  population.interval_ms = 300;
  runtime.deploy_population(population);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  Trace trace;
  consumer.set_data_handler([&](const core::Delivery& delivery) {
    std::uint64_t h = delivery.message.stream_id.packed();
    h = h * 0x9E3779B97F4A7C15ull + delivery.message.sequence;
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(delivery.first_heard.ns);
    trace.deliveries.push_back(h);
  });
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(10));

  // Exercise the control path too.
  consumer.report_state(1);
  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 150, {});
  runtime.run_for(Duration::seconds(10));

  trace.radio_frames = runtime.telemetry().registry.snapshot().counter("garnet.radio.uplink_frames");
  trace.duplicates = runtime.filtering().stats().duplicates_dropped;
  trace.acks = runtime.actuation().stats().acked;
  trace.prearm_hits = runtime.resource().stats().prearm_hits;
  return trace;
}

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, IdenticalSeedsIdenticalTraces) {
  const Trace first = run_full_scenario(GetParam());
  const Trace second = run_full_scenario(GetParam());
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.deliveries.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(1u, 42u, 0xDEADBEEFu, 31337u));

TEST(Determinism, DifferentSeedsDiverge) {
  const Trace a = run_full_scenario(1);
  const Trace b = run_full_scenario(2);
  EXPECT_NE(a.deliveries, b.deliveries);
}

}  // namespace
}  // namespace garnet
