// Crash-recovery acceptance suite: scheduled process crashes from the
// FaultPlan kill the stateful services mid-stream and the recovery
// harness brings them back from checkpoint + op-log replay.
//
//   * Crashing the dispatcher mid-flood with overload control active:
//     the promoted service resumes credit windows, replays the
//     orphanage stash, never double-delivers, and the shed journal
//     still contains no control-plane sheds.
//   * A seeded plan crashing and restarting each stateful service
//     (filtering, dispatch, location, catalog) completes with zero
//     duplicate deliveries and all four services recovered.
//   * Two runs from the same seed produce byte-identical fault and
//     shed journals and identical recovery telemetry.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <utility>

#include "garnet/runtime.hpp"
#include "obs/metrics.hpp"

namespace garnet {
namespace {

using util::Duration;
using util::SimTime;

/// Counts deliveries per (stream, sequence); the suite's core invariant
/// is that no pair is ever seen twice.
struct DeliveryLedger {
  std::map<std::pair<std::uint32_t, core::SequenceNo>, int> counts;

  void attach(core::Consumer& consumer) {
    consumer.set_data_handler([this](const core::DeliveryView& d) {
      ++counts[{d.message.stream_id.packed(), d.message.sequence}];
    });
  }

  [[nodiscard]] int max_count() const {
    int most = 0;
    for (const auto& [key, count] : counts) most = std::max(most, count);
    return most;
  }
  [[nodiscard]] std::size_t distinct() const { return counts.size(); }
};

wireless::ReceptionReport make_report(core::SequenceNo seq, SimTime now,
                                      wireless::ReceiverId receiver = 1) {
  core::DataMessage msg;
  msg.stream_id = {1, 0};
  msg.sequence = seq;
  msg.payload = util::to_bytes("flood");
  return {receiver, -40.0, now, core::encode(msg)};
}

TEST(CrashRecovery, DispatchCrashMidFloodKeepsOverloadAndDeliveryInvariants) {
  // Satellite scenario: the dispatcher dies under load while a straggler
  // is forcing data sheds. The watchdog must promote it, the stash must
  // replay the crash-window messages, credit flow must resume — and the
  // overload layer's contract (control-plane never shed) must hold
  // across the promotion.
  Runtime::Config config;
  config.overload.credit_window = 32;
  config.overload.shed_journal_limit = 1 << 14;
  {
    net::InboxConfig fast;
    fast.capacity = 64;
    fast.policy = net::OverflowPolicy::kDropOldest;
    fast.service_time = Duration::micros(20);
    config.overload.inboxes["consumer.fast"] = fast;
    net::InboxConfig slow = fast;
    slow.capacity = 8;
    slow.service_time = Duration::millis(2);
    config.overload.inboxes["consumer.slow"] = slow;
  }
  config.recovery.enabled = true;
  {
    net::FaultPlan::CrashSpec crash;
    crash.service = "dispatch";
    crash.at = SimTime{} + Duration::millis(520);
    config.faults.crashes.push_back(crash);  // no restart: watchdog promotes
  }
  Runtime runtime(config);
  ASSERT_NE(runtime.recovery(), nullptr);

  core::Consumer fast(runtime.bus(), "consumer.fast");
  runtime.provision(fast, "fast");
  fast.subscribe(core::StreamPattern::everything());
  core::Consumer slow(runtime.bus(), "consumer.slow");
  runtime.provision(slow, "slow");
  slow.subscribe(core::StreamPattern::everything());
  DeliveryLedger ledger;
  ledger.attach(fast);
  runtime.run_for(Duration::millis(20));

  // 1ms flood cadence through the filtering service (the real ingest
  // path, so the runtime's crash redirects apply).
  sim::Scheduler& scheduler = runtime.scheduler();
  const SimTime flood_end = scheduler.now() + Duration::millis(1500);
  core::SequenceNo next_seq = 0;
  std::function<void()> inject = [&] {
    runtime.filtering().ingest(make_report(next_seq++, scheduler.now()));
    if (scheduler.now() < flood_end) scheduler.schedule_after(Duration::millis(1), inject);
  };
  inject();

  // Run until just before the crash: deliveries are flowing.
  runtime.run_for(Duration::millis(480));
  const std::size_t before_crash = ledger.distinct();
  EXPECT_GT(before_crash, 0u);

  // Through the crash, the detection window, and the promotion.
  runtime.run_for(Duration::seconds(2));

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.recovery.crashes"), 1u);
  EXPECT_EQ(snap.counter("garnet.recovery.promotions"), 1u);
  EXPECT_EQ(runtime.recovery()->stats().crashes, 1u);
  EXPECT_FALSE(runtime.recovery()->crashed("dispatch"));

  // Crash-window traffic was stashed in the Orphanage and replayed.
  EXPECT_GT(snap.counter("garnet.dispatch.recovery_replayed"), 0u);

  // Credit flow resumed: the healthy consumer kept receiving after the
  // promotion, well past what it had at crash time.
  EXPECT_GT(ledger.distinct(), before_crash);

  // No (stream, seq) was ever delivered twice, through stash replay and
  // credit re-priming included.
  EXPECT_EQ(ledger.max_count(), 1);

  // The overload contract held across the promotion: the straggler
  // forced data sheds, control traffic was never shed.
  EXPECT_GT(runtime.bus().shed_stats().data_total(), 0u);
  EXPECT_EQ(runtime.bus().shed_stats().control_total(), 0u);
}

/// One full deterministic chaos run for the acceptance scenario: all
/// four stateful services crash and restart mid-stream on a schedule.
struct ChaosOutcome {
  std::string fault_journal;
  std::string shed_journal;
  std::vector<std::uint64_t> counters;
  int max_delivery_count = 0;
  std::size_t distinct_deliveries = 0;
  double crashed_at_end = 0;
};

ChaosOutcome run_all_services_chaos(std::uint64_t seed) {
  Runtime::Config config;
  config.field.seed = seed;
  config.faults.seed = 0xD15EA5E;
  config.faults.journal_limit = 1 << 14;
  config.overload.shed_journal_limit = 1 << 14;
  config.recovery.enabled = true;
  const auto schedule_crash = [&](const char* service, std::int64_t at_ms) {
    net::FaultPlan::CrashSpec crash;
    crash.service = service;
    crash.at = SimTime{} + Duration::millis(at_ms);
    crash.restart_after = Duration::millis(180);  // rejoin before the watchdog
    config.faults.crashes.push_back(crash);
  };
  schedule_crash("filtering", 330);
  schedule_crash("dispatch", 730);
  schedule_crash("location", 1130);
  schedule_crash("catalog", 1530);

  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  runtime.deploy_transmitters(1, 900);
  wireless::SensorField::PopulationSpec population;
  population.count = 3;
  population.interval_ms = 100;
  runtime.deploy_population(population);

  core::Consumer consumer(runtime.bus(), "consumer.chaos");
  runtime.provision(consumer, "chaos");
  consumer.subscribe(core::StreamPattern::everything());
  DeliveryLedger ledger;
  ledger.attach(consumer);

  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::millis(2500));

  ChaosOutcome outcome;
  outcome.fault_journal = runtime.bus().fault_injector()->journal_text();
  outcome.shed_journal = runtime.bus().shed_journal_text();
  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  for (const char* name :
       {"garnet.recovery.crashes", "garnet.recovery.promotions", "garnet.recovery.rejoins",
        "garnet.recovery.ops_logged", "garnet.recovery.ops_replicated",
        "garnet.recovery.ops_replayed", "garnet.checkpoint.taken", "garnet.checkpoint.stored",
        "garnet.checkpoint.rejected", "garnet.recovery.inputs_lost", "garnet.bus.posted",
        "garnet.bus.delivered", "garnet.bus.dropped_endpoint_down",
        "garnet.dispatch.recovery_replayed", "garnet.filtering.messages_out"}) {
    outcome.counters.push_back(snap.counter(name));
  }
  for (const char* kind : {"crash", "restart"}) {
    outcome.counters.push_back(snap.counter("garnet.bus.faults", {{"kind", kind}}));
  }
  outcome.max_delivery_count = ledger.max_count();
  outcome.distinct_deliveries = ledger.distinct();
  outcome.crashed_at_end = snap.gauge("garnet.recovery.crashed");
  return outcome;
}

TEST(CrashRecovery, EveryStatefulServiceCrashesAndRecoversWithoutDuplicates) {
  const ChaosOutcome outcome = run_all_services_chaos(0x5EED);

  // All four crashes fired and every service came back (scheduled
  // restarts land inside the watchdog window, so they count as rejoins).
  EXPECT_EQ(outcome.counters[0], 4u);  // garnet.recovery.crashes
  EXPECT_EQ(outcome.counters[1] + outcome.counters[2], 4u);  // promotions + rejoins
  EXPECT_EQ(outcome.crashed_at_end, 0.0);  // nobody left dead

  // The injector journalled each crash and restart like any other fault.
  EXPECT_NE(outcome.fault_journal.find("crash"), std::string::npos);
  EXPECT_NE(outcome.fault_journal.find("restart"), std::string::npos);

  // The stream kept flowing across all four outages...
  EXPECT_GT(outcome.distinct_deliveries, 0u);
  // ...and no (stream, seq) pair was ever delivered twice: restored
  // dedup windows and sequence cursors close the duplicate leak.
  EXPECT_EQ(outcome.max_delivery_count, 1);
}

TEST(CrashRecovery, SameSeedRunsAreByteIdentical) {
  const ChaosOutcome first = run_all_services_chaos(0x5EED);
  const ChaosOutcome second = run_all_services_chaos(0x5EED);

  // Crash events are pure time triggers: they consume no rng draws, so
  // the whole fault journal — link faults and crash/restart records
  // interleaved — replays byte-for-byte, as does the shed journal and
  // every recovery counter.
  EXPECT_EQ(first.fault_journal, second.fault_journal);
  EXPECT_FALSE(first.fault_journal.empty());
  EXPECT_EQ(first.shed_journal, second.shed_journal);
  EXPECT_EQ(first.counters, second.counters);
  EXPECT_EQ(first.distinct_deliveries, second.distinct_deliveries);
  EXPECT_EQ(first.max_delivery_count, second.max_delivery_count);
}

TEST(CrashRecovery, RestartBeforeDetectionRejoinsWithoutPromotion) {
  // A crash healed by its scheduled restart inside the watchdog window
  // must come back as a rejoin; the watchdog never fires for it.
  Runtime::Config config;
  config.recovery.enabled = true;
  {
    net::FaultPlan::CrashSpec crash;
    crash.service = "filtering";
    crash.at = SimTime{} + Duration::millis(200);
    crash.restart_after = Duration::millis(150);
    config.faults.crashes.push_back(crash);
  }
  Runtime runtime(config);
  runtime.run_for(Duration::seconds(1));

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.recovery.crashes"), 1u);
  EXPECT_EQ(snap.counter("garnet.recovery.rejoins"), 1u);
  EXPECT_EQ(snap.counter("garnet.recovery.promotions"), 0u);
  EXPECT_FALSE(runtime.recovery()->crashed("filtering"));
}

TEST(CrashRecovery, FilteringCrashWindowInputsAreAccounted) {
  // Reception reports arriving while filtering is dead die with the
  // process; the runtime books them as lost inputs instead of silently
  // discarding them.
  Runtime::Config config;
  config.field.radio.base_loss = 0.0;  // every uplink frame is heard
  config.field.radio.edge_loss = 0.0;
  config.recovery.enabled = true;
  {
    net::FaultPlan::CrashSpec crash;
    crash.service = "filtering";
    crash.at = SimTime{} + Duration::millis(100);
    crash.restart_after = Duration::millis(200);
    config.faults.crashes.push_back(crash);
  }
  Runtime runtime(config);
  runtime.deploy_receivers(1, 5000);  // one receiver covering the field
  runtime.run_for(Duration::millis(150));  // inside the crash window
  ASSERT_TRUE(runtime.recovery()->crashed("filtering"));

  core::DataMessage msg;
  msg.stream_id = {1, 0};
  msg.sequence = 0;
  msg.payload = util::to_bytes("lost");
  runtime.field().medium().uplink({500, 500}, core::encode(msg), 1);
  msg.sequence = 1;
  runtime.field().medium().uplink({500, 500}, core::encode(msg), 1);

  runtime.run_for(Duration::seconds(1));
  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.recovery.inputs_lost"), 2u);
  EXPECT_EQ(snap.counter("garnet.recovery.service_inputs_lost", {{"service", "filtering"}}), 2u);
  EXPECT_FALSE(runtime.recovery()->crashed("filtering"));
}

}  // namespace
}  // namespace garnet
