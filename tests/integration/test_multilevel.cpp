// Multi-level data consumption (paper §4.2): "Consumer processes may
// generate further derived data streams by performing additional
// processing on received data. By supporting multi-level data consumption
// where each layer offers increasingly enhanced services to successive
// levels, an arbitrarily rich application infrastructure can be
// assembled."
//
// This suite builds a three-level graph over the middleware:
//   level 0: raw sensor streams
//   level 1: per-sensor smoother (subscribes raw, publishes averages)
//   level 2: field-wide alarm (subscribes averages, publishes alerts)
#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

Runtime::Config reliable_config() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

/// Level-1 consumer: windowed mean over one sensor's readings.
class Smoother {
 public:
  Smoother(Runtime& runtime, core::SensorId input, std::size_t window)
      : consumer_(runtime.bus(), "consumer.smoother." + std::to_string(input)),
        window_(window) {
    runtime.provision(consumer_, "smoother." + std::to_string(input));
    output_ = runtime.create_derived_stream("smoothed." + std::to_string(input), "smoothed");
    consumer_.set_data_handler([this](const core::Delivery& delivery) {
      util::ByteReader r(delivery.message.payload);
      const double value = r.f64();
      if (!r.ok()) return;
      recent_.push_back(value);
      if (recent_.size() < window_) return;
      double sum = 0;
      for (const double x : recent_) sum += x;
      recent_.clear();
      util::ByteWriter w(8);
      w.f64(sum / static_cast<double>(window_));
      consumer_.publish_derived(output_, std::move(w).take(),
                                static_cast<std::uint8_t>(core::HeaderFlag::kFused));
    });
    consumer_.subscribe(core::StreamPattern::all_of(input));
  }

  [[nodiscard]] core::StreamId output() const { return output_; }
  [[nodiscard]] std::uint64_t received() const { return consumer_.received(); }

 private:
  core::Consumer consumer_;
  core::StreamId output_;
  std::size_t window_;
  std::vector<double> recent_;
};

struct MultiLevelFixture : ::testing::Test {
  Runtime runtime{reliable_config()};

  MultiLevelFixture() {
    runtime.deploy_receivers(4, 300);
    wireless::SensorField::PopulationSpec spec;
    spec.first_id = 1;
    spec.count = 3;
    spec.interval_ms = 100;
    runtime.deploy_population(spec);
  }
};

TEST_F(MultiLevelFixture, DerivedStreamsFlowToSecondLevel) {
  Smoother smoother(runtime, 1, 5);
  core::Consumer level2(runtime.bus(), "consumer.level2");
  runtime.provision(level2, "level2");
  std::vector<double> averages;
  level2.set_data_handler([&](const core::Delivery& d) {
    util::ByteReader r(d.message.payload);
    averages.push_back(r.f64());
    EXPECT_TRUE(d.message.header.has(core::HeaderFlag::kDerived));
    EXPECT_TRUE(d.message.header.has(core::HeaderFlag::kFused));
  });
  level2.subscribe(core::StreamPattern::exact(smoother.output()));

  runtime.run_for(Duration::millis(50));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(10));

  EXPECT_GT(smoother.received(), 50u);
  EXPECT_GT(averages.size(), 10u);
  // Default sensor payloads are N(20, 1): the smoothed values stay close.
  for (const double avg : averages) {
    EXPECT_GT(avg, 15.0);
    EXPECT_LT(avg, 25.0);
  }
}

TEST_F(MultiLevelFixture, ThreeLevelGraph) {
  Smoother s1(runtime, 1, 5);
  Smoother s2(runtime, 2, 5);

  // Level 2: alarm when any smoothed value exceeds a threshold; publishes
  // its own derived alert stream.
  core::Consumer alarm(runtime.bus(), "consumer.alarm");
  runtime.provision(alarm, "alarm");
  const core::StreamId alerts = runtime.create_derived_stream("alerts", "alert");
  std::uint64_t alarm_inputs = 0;
  alarm.set_data_handler([&](const core::Delivery& d) {
    ++alarm_inputs;
    util::ByteReader r(d.message.payload);
    const double value = r.f64();
    if (value > 15.0) {  // always true for the synthetic signal
      util::ByteWriter w(8);
      w.f64(value);
      alarm.publish_derived(alerts, std::move(w).take());
    }
  });
  alarm.subscribe(core::StreamPattern::exact(s1.output()));
  alarm.subscribe(core::StreamPattern::exact(s2.output()));

  // Level 3 observer: end of the chain.
  core::Consumer observer(runtime.bus(), "consumer.observer");
  runtime.provision(observer, "observer");
  observer.subscribe(core::StreamPattern::exact(alerts));

  runtime.run_for(Duration::millis(50));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(10));

  EXPECT_GT(alarm_inputs, 10u);
  EXPECT_GT(observer.received(), 10u);
}

TEST_F(MultiLevelFixture, DerivedStreamsAppearInCatalog) {
  Smoother smoother(runtime, 1, 5);
  runtime.run_for(Duration::millis(50));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  const core::StreamInfo* info = runtime.catalog().find(smoother.output());
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->advertised);
  EXPECT_TRUE(info->derived);
  EXPECT_EQ(info->stream_class, "smoothed");
  EXPECT_GT(info->messages, 0u);

  core::StreamCatalog::Query query;
  query.stream_class = "smoothed";
  EXPECT_EQ(runtime.catalog().discover(query).size(), 1u);
}

TEST_F(MultiLevelFixture, RawSubscribersUnaffectedByDerivedLayer) {
  // Mutually-unaware consumption: adding the derived layer must not
  // change what a raw subscriber sees.
  core::Consumer raw(runtime.bus(), "consumer.raw");
  runtime.provision(raw, "raw");
  raw.subscribe(core::StreamPattern::all_of(1));
  Smoother smoother(runtime, 1, 5);

  runtime.run_for(Duration::millis(50));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  EXPECT_GT(raw.received(), 20u);
  EXPECT_EQ(raw.received(), smoother.received());
}

}  // namespace
}  // namespace garnet
