// Chaos suite: the acceptance tests for deterministic fault injection on
// the bus plus retry/backoff in the RPC layer.
//
//   * Under a seeded 20% drop plan, idempotent RPCs with a retry budget
//     all eventually succeed.
//   * With faults confined to the response link, every retry reaches the
//     callee and is absorbed by the at-most-once cache: non-idempotent
//     handlers execute exactly once and deduped == retries exactly.
//   * Two runs from the same seed produce byte-identical fault journals
//     and identical garnet.bus.faults / garnet.rpc.* telemetry.
//   * A partition between the filtering watchdog and primary promotes
//     the hot standby; its dedup state holds after the partition heals.
//   * An unreachable Resource Manager degrades actuation to an explicit
//     denial instead of a silent stall.
#include <gtest/gtest.h>

#include <functional>

#include "garnet/failover.hpp"
#include "garnet/runtime.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"

namespace garnet {
namespace {

using util::Duration;
using util::SimTime;

/// All telemetry this suite asserts determinism over.
std::vector<std::uint64_t> chaos_counters(const obs::MetricsSnapshot& snap) {
  std::vector<std::uint64_t> values;
  for (const char* kind : {"drop", "duplicate", "delay", "reorder", "partition"}) {
    values.push_back(snap.counter("garnet.bus.faults", {{"kind", kind}}));
  }
  for (const char* name : {"garnet.rpc.calls", "garnet.rpc.retries", "garnet.rpc.exhausted",
                           "garnet.rpc.deduped", "garnet.bus.posted", "garnet.bus.delivered"}) {
    values.push_back(snap.counter(name));
  }
  return values;
}

TEST(Chaos, IdempotentCallsAllSucceedUnder20PercentDrop) {
  sim::Scheduler scheduler;
  net::MessageBus::Config config;
  config.faults.seed = 0xC0FFEE;
  config.faults.global.drop = 0.20;
  net::MessageBus bus(scheduler, config);

  net::RpcNode server(bus, "server");
  net::RpcNode client(bus, "client");
  server.expose(1, [](net::Address, util::BytesView args) -> net::RpcResult {
    return util::Bytes(args.begin(), args.end());  // echo
  });

  net::CallOptions options;
  options.timeout = Duration::millis(5);
  options.retries = 8;  // acceptance floor is >= 5
  options.backoff = Duration::millis(1);
  options.idempotent = true;

  constexpr std::uint32_t kCalls = 40;
  std::uint32_t succeeded = 0;
  for (std::uint32_t i = 0; i < kCalls; ++i) {
    util::ByteWriter w(4);
    w.u32(i);
    client.call(server.address(), 1, std::move(w).take(), options,
                [&, expected = i](net::RpcResult result) {
                  ASSERT_TRUE(result.ok()) << "call " << expected << " exhausted its budget";
                  util::ByteReader r(result.value());
                  EXPECT_EQ(r.u32(), expected);
                  ++succeeded;
                });
  }
  scheduler.run();

  EXPECT_EQ(succeeded, kCalls);
  EXPECT_EQ(bus.rpc_stats().exhausted, 0u);
  EXPECT_GT(bus.rpc_stats().retries, 0u);  // the plan really did bite
  ASSERT_NE(bus.fault_injector(), nullptr);
  EXPECT_GT(bus.fault_injector()->counters().dropped, 0u);
}

TEST(Chaos, ResponseLinkFaultsDedupEqualsRetriesExactly) {
  // Faults only on server->client: every request arrives, so every
  // retry is a duplicate the callee's cache must absorb.
  sim::Scheduler scheduler;
  net::MessageBus::Config config;
  config.faults.seed = 7;
  config.faults.links[{"server", "client"}].drop = 0.30;
  net::MessageBus bus(scheduler, config);

  net::RpcNode server(bus, "server");
  net::RpcNode client(bus, "client");
  std::uint32_t executions = 0;
  server.expose(1, [&](net::Address, util::BytesView) -> net::RpcResult {
    ++executions;
    return util::to_bytes("ok");
  });

  net::CallOptions options;
  options.timeout = Duration::millis(5);
  options.retries = 10;
  options.backoff = Duration::millis(1);
  // Non-idempotent on purpose: execute-at-most-once is the property.

  constexpr std::uint32_t kCalls = 30;
  std::uint32_t succeeded = 0;
  for (std::uint32_t i = 0; i < kCalls; ++i) {
    client.call(server.address(), 1, {}, options, [&](net::RpcResult result) {
      ASSERT_TRUE(result.ok());
      ++succeeded;
    });
  }
  scheduler.run();

  EXPECT_EQ(succeeded, kCalls);
  EXPECT_EQ(executions, kCalls);  // retries never re-executed the handler
  EXPECT_GT(bus.rpc_stats().retries, 0u);
  // Every retry-induced duplicate request — and nothing else — hit the
  // cache: the two counters must agree to the message.
  EXPECT_EQ(bus.rpc_stats().deduped, bus.rpc_stats().retries);
}

TEST(Chaos, SameSeedByteIdenticalJournalAndTelemetry) {
  const auto run_once = [] {
    sim::Scheduler scheduler;
    obs::MetricsRegistry registry;
    net::MessageBus::Config config;
    config.faults.seed = 0xDECAF;
    config.faults.global.drop = 0.15;
    config.faults.global.duplicate = 0.10;
    config.faults.global.reorder = 0.10;
    config.faults.journal_limit = 4096;
    net::MessageBus bus(scheduler, config);
    bus.set_metrics(registry);

    net::RpcNode server(bus, "server");
    net::RpcNode client(bus, "client");
    server.expose(1, [](net::Address, util::BytesView) -> net::RpcResult {
      return util::to_bytes("pong");
    });

    net::CallOptions options;
    options.timeout = Duration::millis(5);
    options.retries = 6;
    options.backoff = Duration::millis(1);
    options.idempotent = true;
    for (int i = 0; i < 50; ++i) {
      client.call(server.address(), 1, {}, options, [](net::RpcResult) {});
    }
    scheduler.run();

    return std::make_pair(bus.fault_injector()->journal_text(),
                          chaos_counters(registry.snapshot()));
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);  // byte-identical fault sequence
  EXPECT_FALSE(first.first.empty());
  EXPECT_EQ(first.second, second.second);  // identical telemetry counters
}

TEST(Chaos, RuntimeChaosRunsAreReplayable) {
  // Same property through the full Runtime: the FaultPlan rides in on
  // Runtime::Config and the telemetry replays counter-for-counter.
  const auto run_once = [] {
    Runtime::Config config;
    config.field.seed = 77;
    config.faults.seed = 0xBEEF;
    config.faults.global.drop = 0.25;
    config.faults.global.duplicate = 0.10;
    Runtime runtime(config);
    runtime.deploy_receivers(4, 400);
    runtime.deploy_transmitters(1, 900);

    wireless::SensorField::PopulationSpec population;
    population.count = 3;
    population.interval_ms = 200;
    runtime.deploy_population(population);

    core::Consumer consumer(runtime.bus(), "consumer.chaos");
    runtime.provision(consumer, "chaos");
    consumer.subscribe(core::StreamPattern::everything());
    runtime.run_for(Duration::millis(20));
    runtime.start_sensors();
    runtime.run_for(Duration::seconds(1));
    consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 150, {});
    runtime.run_for(Duration::seconds(1));

    return chaos_counters(runtime.telemetry().registry.snapshot());
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  // The plan actually dropped traffic (index 0 = faults{kind=drop}).
  EXPECT_GT(first[0], 0u);
}

TEST(Chaos, PartitionPromotesFailoverAndDedupHoldsAfterHeal) {
  sim::Scheduler scheduler;
  net::MessageBus::Config config;
  {
    net::FaultPlan::PartitionSpec partition;
    partition.name = "watchdog-cut";
    partition.members = {FilteringFailover::kWatchdogEndpointName};
    partition.opens_at = SimTime{} + Duration::millis(500);
    partition.heals_at = SimTime{} + Duration::millis(1500);
    config.faults.partitions.push_back(partition);
  }
  net::MessageBus bus(scheduler, config);

  FilteringFailover::Config failover_config;
  failover_config.mode = FilteringFailover::Mode::kHot;
  failover_config.heartbeat_interval = Duration::millis(100);
  failover_config.miss_threshold = 3;
  obs::MetricsRegistry registry;
  FilteringFailover failover(scheduler, bus, failover_config);
  failover.set_metrics(registry);

  std::multiset<core::SequenceNo> delivered;
  failover.set_message_sink(
      [&](const core::DataMessage& m, SimTime) { delivered.insert(m.sequence); });

  const auto report = [](core::SequenceNo seq, wireless::ReceiverId receiver) {
    core::DataMessage msg;
    msg.stream_id = {1, 0};
    msg.sequence = seq;
    msg.payload = util::to_bytes("x");
    return wireless::ReceptionReport{receiver, -40.0, SimTime{}, core::encode(msg)};
  };

  // Healthy phase: pings flow, traffic is deduplicated by the primary.
  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(report(seq, 1));
  scheduler.run_until(SimTime{} + Duration::millis(450));
  EXPECT_FALSE(failover.failed_over());
  EXPECT_EQ(registry.snapshot().counter("garnet.failover.misses"), 0u);

  // Partition opens at 500ms: the watchdog's pings stop arriving even
  // though the primary never crashed; the standby must be promoted.
  scheduler.run_until(SimTime{} + Duration::millis(1400));
  EXPECT_TRUE(failover.failed_over());
  EXPECT_EQ(registry.snapshot().counter("garnet.failover.failovers"), 1u);
  EXPECT_GT(bus.fault_injector()->counters().partitioned, 0u);

  // After the heal, late radio copies of the pre-partition messages
  // arrive: the hot standby's shadowed dedup state still holds.
  scheduler.run_until(SimTime{} + Duration::millis(2000));
  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(report(seq, 2));
  for (core::SequenceNo seq = 0; seq < 5; ++seq) {
    EXPECT_EQ(delivered.count(seq), 1u) << "sequence " << seq << " re-delivered after heal";
  }
  failover.ingest(report(100, 1));
  EXPECT_EQ(delivered.count(100), 1u);  // fresh traffic flows post-heal
}

TEST(Chaos, FailoverDetectsDeadPrimaryThroughSaturatedWatchdogInbox) {
  // Combined partition + overload chaos: the watchdog's bounded inbox is
  // kept saturated by a data-plane flood for the whole run, and the
  // primary is islanded by a FaultPlan partition mid-flood. Liveness
  // traffic (ping responses) is control-plane, so it displaces flood
  // data instead of being shed — before the cut the flood must not
  // cause a false promotion, and once the partition opens the missed
  // pings still promote the standby on schedule.
  sim::Scheduler scheduler;
  net::MessageBus::Config config;
  {
    net::InboxConfig inbox;
    inbox.capacity = 4;
    inbox.policy = net::OverflowPolicy::kDropOldest;
    inbox.service_time = Duration::millis(1);
    config.inboxes[FilteringFailover::kWatchdogEndpointName] = inbox;
  }
  {
    net::FaultPlan::PartitionSpec partition;
    partition.name = "primary-island";
    partition.members = {FilteringFailover::kPrimaryEndpointName};
    partition.opens_at = SimTime{} + Duration::millis(1000);
    config.faults.partitions.push_back(partition);
  }
  net::MessageBus bus(scheduler, config);

  FilteringFailover::Config failover_config;
  failover_config.mode = FilteringFailover::Mode::kHot;
  failover_config.heartbeat_interval = Duration::millis(100);
  failover_config.miss_threshold = 3;
  obs::MetricsRegistry registry;
  FilteringFailover failover(scheduler, bus, failover_config);
  failover.set_metrics(registry);

  // Data-plane flood aimed at the watchdog endpoint, refreshed faster
  // than its inbox drains so the queue stays pinned at capacity.
  const net::Address flooder = bus.add_endpoint("chaos.flooder", [](net::Envelope) {});
  const auto watchdog = bus.lookup(FilteringFailover::kWatchdogEndpointName);
  ASSERT_TRUE(watchdog.has_value());
  std::function<void()> flood = [&] {
    for (int i = 0; i < 8; ++i) {
      bus.post(flooder, *watchdog, net::app_type(0), util::SharedBytes{util::to_bytes("junk")});
    }
    if (scheduler.now() < SimTime{} + Duration::millis(1900)) {
      scheduler.schedule_after(Duration::millis(2), flood);
    }
  };
  flood();

  // Healthy primary + saturated watchdog inbox: no false promotion.
  scheduler.run_until(SimTime{} + Duration::millis(1000));
  EXPECT_FALSE(failover.failed_over());
  EXPECT_EQ(registry.snapshot().counter("garnet.failover.misses"), 0u);
  EXPECT_GT(bus.shed_stats().data_total(), 0u);  // the flood really overflowed

  // At t=1s the partition islands the primary mid-flood: detection must
  // land within the usual heartbeat_interval * miss_threshold budget
  // despite the saturation.
  scheduler.run_until(SimTime{} + Duration::millis(1600));
  EXPECT_TRUE(failover.failed_over());
  EXPECT_EQ(registry.snapshot().counter("garnet.failover.failovers"), 1u);

  // The structural invariant: only data-plane traffic was shed.
  EXPECT_EQ(bus.shed_stats().control_total(), 0u);
}

TEST(Chaos, UnreachableResourceManagerDegradesToDenial) {
  // The Resource Manager is partitioned off from t=0 and never heals.
  // Actuation demands must come back *denied* within the approval retry
  // budget — an explicit degraded outcome, not a stall.
  Runtime::Config config;
  {
    net::FaultPlan::PartitionSpec partition;
    partition.name = "rm-island";
    partition.members = {core::ResourceManager::kEndpointName};
    partition.opens_at = SimTime{};  // open immediately
    config.faults.partitions.push_back(partition);
  }
  Runtime runtime(config);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");

  std::optional<core::Admission> admission;
  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 500,
                          [&](std::uint32_t, core::Admission a, std::uint32_t) { admission = a; });
  runtime.run_for(Duration::seconds(1));

  ASSERT_TRUE(admission.has_value()) << "degraded path must still answer the consumer";
  EXPECT_EQ(*admission, core::Admission::kDenied);
  EXPECT_GE(runtime.actuation().stats().approval_unreachable, 1u);

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  EXPECT_GE(snap.counter("garnet.actuation.approval_unreachable"), 1u);
  EXPECT_GE(snap.counter("garnet.rpc.exhausted"), 1u);
  EXPECT_GT(snap.counter("garnet.bus.faults", {{"kind", "partition"}}), 0u);
}

}  // namespace
}  // namespace garnet
