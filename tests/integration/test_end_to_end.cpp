// Whole-pipeline integration: mobile sensors over a lossy, duplicating
// radio, through Filtering and Dispatching, to mutually-unaware
// consumers — with the Orphanage catching unclaimed streams and the
// Location Service building estimates from reception evidence alone.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

Runtime::Config realistic_config(std::uint64_t seed = 42) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.05;
  config.field.radio.edge_loss = 0.3;
  return config;
}

struct EndToEndFixture : ::testing::Test {
  Runtime runtime{realistic_config()};

  EndToEndFixture() {
    runtime.deploy_receivers(9, 250);  // overlapping grid: duplicates guaranteed
    runtime.deploy_transmitters(4, 400);
    wireless::SensorField::PopulationSpec spec;
    spec.first_id = 1;
    spec.count = 8;
    spec.interval_ms = 250;
    runtime.deploy_population(spec);
  }
};

TEST_F(EndToEndFixture, DataFlowsRadioToConsumer) {
  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  std::vector<core::Delivery> got;
  consumer.set_data_handler([&](const core::Delivery& d) { got.push_back(d); });
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(30));

  // 8 sensors at 4 Hz over 30s: ~960 samples, minus loss and roaming.
  EXPECT_GT(got.size(), 300u);

  // The radio duplicated heavily; the consumer must never see the same
  // message twice.
  std::set<std::pair<std::uint32_t, core::SequenceNo>> seen;
  for (const core::Delivery& d : got) {
    EXPECT_TRUE(seen.insert({d.message.stream_id.packed(), d.message.sequence}).second);
  }
  EXPECT_GT(runtime.telemetry().registry.snapshot().counter("garnet.radio.uplink_duplicates"), 0u);
  EXPECT_GT(runtime.filtering().stats().duplicates_dropped, 0u);
}

TEST_F(EndToEndFixture, SelectiveSubscriptionsAreIsolated) {
  core::Consumer a(runtime.bus(), "consumer.a");
  core::Consumer b(runtime.bus(), "consumer.b");
  runtime.provision(a, "a");
  runtime.provision(b, "b");

  std::set<core::SensorId> a_sensors;
  std::set<core::SensorId> b_sensors;
  a.set_data_handler(
      [&](const core::Delivery& d) { a_sensors.insert(d.message.stream_id.sensor); });
  b.set_data_handler(
      [&](const core::Delivery& d) { b_sensors.insert(d.message.stream_id.sensor); });
  a.subscribe(core::StreamPattern::all_of(1));
  b.subscribe(core::StreamPattern::all_of(2));
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(20));

  EXPECT_EQ(a_sensors, (std::set<core::SensorId>{1}));
  EXPECT_EQ(b_sensors, (std::set<core::SensorId>{2}));
}

TEST_F(EndToEndFixture, UnclaimedStreamsLandInOrphanage) {
  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));  // only sensor 1 claimed
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(10));

  EXPECT_GT(runtime.orphanage().total_received(), 0u);
  // Sensors 2..8 were unclaimed; at least some produced orphaned streams.
  const auto report = runtime.orphanage().report();
  EXPECT_GE(report.size(), 3u);
  for (const core::OrphanAnalysis& analysis : report) {
    EXPECT_NE(analysis.id.sensor, 1u) << "claimed stream must not be orphaned";
  }
}

TEST_F(EndToEndFixture, BacklogClaimableAfterLateSubscribe) {
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));  // nobody listening: all orphaned

  const auto backlog = runtime.orphanage().claim({2, 0});
  EXPECT_FALSE(backlog.empty());
}

TEST_F(EndToEndFixture, LocationInferredWithoutSensorInvolvement) {
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(15));

  // Sensors never transmitted coordinates, yet estimates exist and are
  // roughly right.
  std::size_t estimated = 0;
  for (std::size_t i = 0; i < runtime.field().sensor_count(); ++i) {
    wireless::SensorNode& sensor = runtime.field().sensor_at(i);
    const auto estimate = runtime.location().estimate(sensor.id());
    if (!estimate) continue;
    ++estimated;
    const double error = sim::distance(estimate->position, sensor.position());
    EXPECT_LT(error, 300.0) << "sensor " << sensor.id();
  }
  EXPECT_GE(estimated, 4u);  // most sensors were heard recently
}

TEST_F(EndToEndFixture, CatalogDetectsAllActiveStreams) {
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(10));
  core::StreamCatalog::Query query;
  const auto streams = runtime.catalog().discover(query);
  EXPECT_GE(streams.size(), 6u);  // most of the 8 sensors heard
  for (const core::StreamInfo& info : streams) {
    EXPECT_FALSE(info.advertised);  // nobody advertised; auto-detected
    EXPECT_GT(info.messages, 0u);
  }
}

TEST_F(EndToEndFixture, LocationStreamIsSubscribable) {
  Runtime::Config config = realistic_config(77);
  config.publish_location_stream = true;
  Runtime rt(config);
  rt.deploy_receivers(9, 250);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 4;
  spec.interval_ms = 200;
  rt.deploy_population(spec);

  ASSERT_TRUE(rt.location_stream().has_value());
  core::Consumer watcher(rt.bus(), "consumer.location-watcher");
  rt.provision(watcher, "location-watcher");
  std::vector<core::Delivery> updates;
  watcher.set_data_handler([&](const core::Delivery& d) { updates.push_back(d); });
  watcher.subscribe(core::StreamPattern::exact(*rt.location_stream()));
  rt.run_for(Duration::millis(20));

  rt.start_sensors();
  rt.run_for(Duration::seconds(10));

  ASSERT_FALSE(updates.empty());
  // Payload decodes to sensor id + position + radius + confidence.
  util::ByteReader r(updates[0].message.payload);
  const core::SensorId sensor = r.u24();
  const double x = r.f64();
  const double y = r.f64();
  const double radius = r.f64();
  const double confidence = r.f64();
  EXPECT_TRUE(r.ok());
  EXPECT_GE(sensor, 1u);
  EXPECT_TRUE(rt.field().area().contains({x, y}));
  EXPECT_GT(radius, 0.0);
  EXPECT_GT(confidence, 0.0);
  EXPECT_TRUE(updates[0].message.header.has(core::HeaderFlag::kDerived));
}

TEST_F(EndToEndFixture, DeterministicEndToEnd) {
  const auto run_once = [] {
    Runtime rt(realistic_config(123));
    rt.deploy_receivers(9, 250);
    wireless::SensorField::PopulationSpec spec;
    spec.count = 4;
    rt.deploy_population(spec);
    core::Consumer consumer(rt.bus(), "consumer.app");
    rt.provision(consumer, "app");
    std::vector<std::uint64_t> trace;
    consumer.set_data_handler([&](const core::Delivery& d) {
      trace.push_back((static_cast<std::uint64_t>(d.message.stream_id.packed()) << 16) |
                      d.message.sequence);
    });
    consumer.subscribe(core::StreamPattern::everything());
    rt.run_for(Duration::millis(20));
    rt.start_sensors();
    rt.run_for(Duration::seconds(10));
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace garnet
