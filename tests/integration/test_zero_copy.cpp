// Copy-count regression guard for the zero-copy payload path.
//
// The dispatch fan-out invariant the perf work rests on: one dispatched
// message costs exactly one payload allocation (the encoded delivery
// frame) no matter how many consumers subscribe, and at most one counted
// copy end to end. Any future change that sneaks a per-subscriber copy
// into the path moves these counters and fails here long before it shows
// up in a benchmark trend.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "core/wire_types.hpp"
#include "net/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/shared_bytes.hpp"

namespace garnet {
namespace {

constexpr std::size_t kConsumers = 64;
constexpr std::size_t kMessages = 50;
constexpr std::size_t kPayloadBytes = 4096;

TEST(ZeroCopyGuard, FanOut64CostsOneAllocationAndNoCopiesPerMessage) {
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  obs::MetricsRegistry registry;
  bus.set_metrics(registry);
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::DispatchingService dispatch{bus, auth, catalog};

  // Every consumer runs the real receive path: parse the delivery frame
  // and record where its payload bytes live.
  std::uint64_t deliveries = 0;
  // sequence -> distinct payload addresses seen by the 64 subscribers.
  std::vector<std::set<const std::byte*>> payload_sites(kMessages);
  for (std::size_t i = 0; i < kConsumers; ++i) {
    const net::Address consumer =
        bus.add_endpoint("consumer" + std::to_string(i), [&](net::Envelope envelope) {
          auto delivery = core::decode_delivery_view(envelope.payload);
          ASSERT_TRUE(delivery.ok());
          EXPECT_EQ(delivery.value().message.payload.size(), kPayloadBytes);
          payload_sites[delivery.value().message.sequence].insert(
              delivery.value().message.payload.data());
          ++deliveries;
        });
    dispatch.subscribe(consumer, core::StreamPattern::exact({1, 0}));
  }

  core::DataMessage msg;
  msg.stream_id = {1, 0};
  msg.payload.assign(kPayloadBytes, std::byte{0x3C});

  const std::uint64_t allocs_before = registry.snapshot().counter("garnet.bus.payload_allocs");
  const std::uint64_t copies_before = registry.snapshot().counter("garnet.bus.payload_copies");

  for (std::size_t i = 0; i < kMessages; ++i) {
    msg.sequence = static_cast<core::SequenceNo>(i);
    dispatch.on_filtered(msg, scheduler.now());
    scheduler.run();
  }

  ASSERT_EQ(deliveries, kConsumers * kMessages);

  // All 64 subscribers of any one message read the same allocation.
  for (std::size_t seq = 0; seq < kMessages; ++seq) {
    EXPECT_EQ(payload_sites[seq].size(), 1u) << "message " << seq;
  }

  const std::uint64_t allocs =
      registry.snapshot().counter("garnet.bus.payload_allocs") - allocs_before;
  const std::uint64_t copies =
      registry.snapshot().counter("garnet.bus.payload_copies") - copies_before;
  EXPECT_EQ(allocs, kMessages) << "expected exactly 1 payload allocation per dispatched message";
  EXPECT_LE(copies, kMessages) << "expected at most 1 payload copy per dispatched message";
  EXPECT_EQ(copies, 0u) << "the delivery path itself should copy nothing";
}

}  // namespace
}  // namespace garnet
