// Integration coverage for the extension features working through the
// full runtime: location-aware beacons feeding hints (§5), codified
// constraints governing real requests (§8), QoS shaping real traffic
// (§1), and multi-hop relays extending a sparse deployment (§8).
#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

Runtime::Config clean_config(std::uint64_t seed = 3) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

TEST(Extensions, GpsBeaconHintsSharpenLocation) {
  Runtime runtime(clean_config());
  runtime.deploy_receivers(4, 450);

  // A location-aware sensor beaconing its GPS fix in the payload.
  wireless::SensorNode::Config config;
  config.id = 1;
  config.capabilities.location_aware = true;
  wireless::StreamSpec beacon;
  beacon.interval_ms = 500;
  beacon.generate_at = wireless::gps_beacon_generator(/*fix_noise_m=*/3.0);
  config.streams.push_back(beacon);
  const sim::Vec2 truth{123, 456};
  runtime.deploy_sensor(std::move(config), std::make_unique<sim::StaticMobility>(truth));

  // Its consumer parses the fix and feeds Location Service hints — the
  // §5 pathway ("a consumer may be able to infer, or otherwise acquire
  // knowledge of, the location of a sensor").
  core::Consumer consumer(runtime.bus(), "consumer.tracker");
  runtime.provision(consumer, "tracker");
  consumer.set_data_handler([&](const core::Delivery& delivery) {
    const auto fix = wireless::decode_gps_beacon(delivery.message.payload);
    if (!fix) return;
    consumer.send_location_hint({delivery.message.stream_id.sensor, fix->position.x,
                                 fix->position.y, /*radius_m=*/10.0});
  });
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(10));

  const auto estimate = runtime.location().estimate(1);
  ASSERT_TRUE(estimate.has_value());
  // Hints are fused with inference; the result must be far tighter than
  // receiver-zone inference alone (base radius 75m) and close to truth.
  EXPECT_LE(estimate->radius_m, 10.0);
  EXPECT_LT(sim::distance(estimate->position, truth), 30.0);
  EXPECT_GT(runtime.location().stats().hints, 5u);
}

TEST(Extensions, NonLocationAwareSensorIgnoresPositionalGenerator) {
  Runtime runtime(clean_config());
  runtime.deploy_receivers(4, 450);

  wireless::SensorNode::Config config;
  config.id = 1;  // NOT location-aware
  wireless::StreamSpec spec;
  spec.interval_ms = 200;
  spec.generate_at = wireless::gps_beacon_generator();
  config.streams.push_back(spec);
  runtime.deploy_sensor(std::move(config),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{100, 100}));

  core::Consumer consumer(runtime.bus(), "consumer.x");
  runtime.provision(consumer, "x");
  std::size_t beacons = 0;
  std::size_t messages = 0;
  consumer.set_data_handler([&](const core::Delivery& delivery) {
    ++messages;
    if (delivery.message.payload.size() == 24) ++beacons;
  });
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(3));

  EXPECT_GT(messages, 0u);
  EXPECT_EQ(beacons, 0u);  // fell back to the default 8-byte reading
}

TEST(Extensions, CodifiedConstraintGovernsConsumerRequests) {
  Runtime runtime(clean_config());
  runtime.deploy_receivers(4, 450);
  runtime.deploy_transmitters(4, 450);

  wireless::SensorNode::Config config;
  config.id = 1;
  config.capabilities.receive_capable = true;
  wireless::StreamSpec spec;
  spec.interval_ms = 1000;
  spec.constraints = {.min_interval_ms = 10, .max_interval_ms = 600000, .max_payload = 64};
  config.streams.push_back(spec);
  auto& sensor = runtime.deploy_sensor(
      std::move(config), std::make_unique<sim::StaticMobility>(sim::Vec2{300, 300}));
  sensor.start();

  // Operator policy is stricter than the hardware: winter power budget.
  ASSERT_TRUE(runtime.resource().codify(1, 0, "interval_ms >= 2s; mode in {0, 1}").ok());

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  runtime.run_for(Duration::millis(20));

  std::optional<std::uint32_t> effective;
  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 100,
                          [&](std::uint32_t, core::Admission, std::uint32_t v) { effective = v; });
  runtime.run_for(Duration::seconds(5));
  EXPECT_EQ(effective, 2000u);             // clamped by the codified floor
  EXPECT_EQ(sensor.stream(0)->interval_ms, 2000u);  // and that is what arrived

  std::optional<core::Admission> mode_admission;
  consumer.request_update({1, 0}, core::UpdateAction::kSetMode, 7,
                          [&](std::uint32_t, core::Admission a, std::uint32_t) {
                            mode_admission = a;
                          });
  runtime.run_for(Duration::seconds(2));
  EXPECT_EQ(mode_admission, core::Admission::kDenied);  // mode 7 not whitelisted
  EXPECT_EQ(sensor.stream(0)->mode, 0u);
}

TEST(Extensions, QosShapedConsumerAlongsideFirehose) {
  Runtime runtime(clean_config());
  runtime.deploy_receivers(4, 450);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  spec.interval_ms = 100;
  runtime.deploy_population(spec);

  core::Consumer firehose(runtime.bus(), "consumer.firehose");
  core::Consumer dashboard(runtime.bus(), "consumer.dashboard");
  runtime.provision(firehose, "firehose");
  runtime.provision(dashboard, "dashboard");
  firehose.subscribe(core::StreamPattern::everything());
  dashboard.subscribe(core::StreamPattern::everything(),
                      core::SubscribeOptions{.min_interval_ms = 2000, .max_age_ms = 0});
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(20));

  EXPECT_GT(firehose.received(), 300u);      // ~2 sensors * 10Hz * 20s
  EXPECT_LE(dashboard.received(), 12u);      // ~0.5Hz cap
  EXPECT_GE(dashboard.received(), 8u);
  EXPECT_GT(runtime.dispatch().subscriptions().qos_stats().suppressed_rate, 250u);
}

TEST(Extensions, RelaysExtendSparseRuntimeDeployment) {
  // One corner receiver; static sensors deep in the coverage hole are
  // unreachable without relays placed between them and the receiver.
  const auto run_with = [](bool with_relay) {
    Runtime runtime(clean_config(9));
    runtime.field().medium().add_receiver({1, {100, 100}, 180});
    runtime.location().set_receiver_layout(runtime.field().medium().receivers());

    wireless::SensorNode::Config far_sensor;
    far_sensor.id = 1;
    wireless::StreamSpec spec;
    spec.interval_ms = 200;
    far_sensor.streams.push_back(spec);
    runtime
        .deploy_sensor(std::move(far_sensor),
                       std::make_unique<sim::StaticMobility>(sim::Vec2{400, 100}))
        .start();

    if (with_relay) {
      wireless::SensorNode::Config relay;
      relay.id = 2;
      relay.capabilities.relay_capable = true;
      relay.relay_overhear_range_m = 200;
      runtime
          .deploy_sensor(std::move(relay),
                         std::make_unique<sim::StaticMobility>(sim::Vec2{250, 100}))
          .start();
    }

    core::Consumer consumer(runtime.bus(), "consumer.app");
    runtime.provision(consumer, "app");
    consumer.subscribe(core::StreamPattern::all_of(1));
    runtime.run_for(Duration::seconds(10));
    return consumer.received();
  };

  EXPECT_EQ(run_with(false), 0u);  // out of range, nothing arrives
  EXPECT_GT(run_with(true), 20u);  // the relay bridges the hole
}

}  // namespace
}  // namespace garnet
