// The full return path (paper Figure 1, right-to-left): consumer ->
// Resource Manager -> Actuation Service -> Message Replicator ->
// Transmitters -> sensor -> (data path) -> acknowledgement, plus
// conflict mediation between mutually-unaware consumers and the
// location-targeted replication saving.
#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

Runtime::Config reliable_config() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

struct ActuationPathFixture : ::testing::Test {
  Runtime runtime{reliable_config()};

  ActuationPathFixture() {
    runtime.deploy_receivers(9, 250);
    runtime.deploy_transmitters(9, 250);
  }

  wireless::SensorNode& deploy_sensor_at(core::SensorId id, sim::Vec2 position,
                                         std::uint32_t interval_ms = 200) {
    wireless::SensorNode::Config config;
    config.id = id;
    config.capabilities.receive_capable = true;
    wireless::StreamSpec spec;
    spec.interval_ms = interval_ms;
    spec.constraints = {.min_interval_ms = 50, .max_interval_ms = 60000, .max_payload = 128};
    config.streams.push_back(spec);
    return runtime.deploy_sensor(std::move(config),
                                 std::make_unique<sim::StaticMobility>(position));
  }
};

TEST_F(ActuationPathFixture, FullRoundTripWithAck) {
  auto& sensor = deploy_sensor_at(1, {300, 300});
  sensor.start();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::seconds(3));  // build location evidence

  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 100, {});
  runtime.run_for(Duration::seconds(3));

  EXPECT_EQ(sensor.stream(0)->interval_ms, 100u);
  EXPECT_EQ(runtime.actuation().stats().acked, 1u);
  EXPECT_EQ(runtime.actuation().stats().expired, 0u);
  EXPECT_GT(runtime.actuation().ack_latency().count(), 0u);
}

TEST_F(ActuationPathFixture, LocationTargetingActivatesFewerTransmitters) {
  // The quantitative claim behind §5 "Inferred location data ... required
  // to reduce transmission costs when forwarding control messages".
  auto& sensor = deploy_sensor_at(1, {100, 100});
  sensor.start();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");

  // Cold request: no location evidence yet -> flood through all 9.
  consumer.request_update({1, 0}, core::UpdateAction::kSetMode, 1, {});
  runtime.run_for(Duration::millis(200));
  const auto after_cold = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(after_cold.counter("garnet.replicator.flooded_sends"), 1u);
  EXPECT_EQ(after_cold.counter("garnet.replicator.transmitter_activations"), 9u);

  // Warm request: reception evidence accumulated -> targeted subset.
  runtime.run_for(Duration::seconds(5));
  consumer.request_update({1, 0}, core::UpdateAction::kSetMode, 2, {});
  runtime.run_for(Duration::millis(200));
  const auto after_warm = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(after_warm.counter("garnet.replicator.targeted_sends"), 1u);
  const auto warm_activations =
      after_warm.counter("garnet.replicator.transmitter_activations") - 9;
  EXPECT_LT(warm_activations, 9u);
  EXPECT_GE(warm_activations, 1u);

  runtime.run_for(Duration::seconds(2));
  EXPECT_EQ(sensor.stream(0)->mode, 2u);  // still delivered
}

TEST_F(ActuationPathFixture, ConflictingConsumersMediated) {
  auto& sensor = deploy_sensor_at(1, {300, 300});
  sensor.start();

  core::Consumer eco(runtime.bus(), "consumer.eco");
  core::Consumer greedy(runtime.bus(), "consumer.greedy");
  runtime.provision(eco, "eco");
  runtime.provision(greedy, "greedy");
  runtime.run_for(Duration::seconds(2));

  // Mutually-unaware demands: eco wants 5s, greedy wants 100ms. Policy is
  // most-demanding-wins, so the sensor must end up at 100ms and eco must
  // be told its demand was modified.
  std::optional<core::Admission> eco_admission;
  std::optional<std::uint32_t> eco_effective;
  greedy.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 100, {});
  runtime.run_for(Duration::seconds(2));
  eco.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 5000,
                     [&](std::uint32_t, core::Admission a, std::uint32_t effective) {
                       eco_admission = a;
                       eco_effective = effective;
                     });
  runtime.run_for(Duration::seconds(2));

  EXPECT_EQ(eco_admission, core::Admission::kModified);
  EXPECT_EQ(eco_effective, 100u);
  EXPECT_EQ(sensor.stream(0)->interval_ms, 100u);
}

TEST_F(ActuationPathFixture, RetransmissionSurvivesDownlinkLoss) {
  Runtime::Config lossy = reliable_config();
  lossy.field.radio.base_loss = 0.7;  // most copies die
  lossy.actuation.ack_timeout = Duration::millis(400);
  lossy.actuation.max_retries = 8;
  Runtime rt(lossy);
  rt.deploy_receivers(9, 250);
  rt.deploy_transmitters(9, 250);

  wireless::SensorNode::Config config;
  config.id = 1;
  config.capabilities.receive_capable = true;
  wireless::StreamSpec spec;
  spec.interval_ms = 100;
  config.streams.push_back(spec);
  auto& sensor = rt.deploy_sensor(std::move(config),
                                  std::make_unique<sim::StaticMobility>(sim::Vec2{300, 300}));
  sensor.start();

  core::Consumer consumer(rt.bus(), "consumer.app");
  rt.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  rt.run_for(Duration::seconds(1));

  consumer.request_update({1, 0}, core::UpdateAction::kSetMode, 9, {});
  rt.run_for(Duration::seconds(10));

  // Despite 70% loss per copy, 9 transmitters x retries get through.
  EXPECT_EQ(sensor.stream(0)->mode, 9u);
  EXPECT_EQ(rt.actuation().stats().acked, 1u);
}

TEST_F(ActuationPathFixture, SensorConstraintClampsFlowBack) {
  auto& sensor = deploy_sensor_at(1, {300, 300});
  sensor.start();
  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  runtime.run_for(Duration::millis(100));

  std::optional<core::Admission> admission;
  std::optional<std::uint32_t> effective;
  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 1,  // below 50ms floor
                          [&](std::uint32_t, core::Admission a, std::uint32_t e) {
                            admission = a;
                            effective = e;
                          });
  runtime.run_for(Duration::seconds(2));

  EXPECT_EQ(admission, core::Admission::kModified);
  EXPECT_EQ(effective, 50u);
  EXPECT_EQ(sensor.stream(0)->interval_ms, 50u);
}

TEST_F(ActuationPathFixture, PredictivePrearmCutsAdmissionLatency) {
  // E5's mechanism at integration level: train the coordinator, then
  // compare admission latency with and without prediction.
  auto& sensor = deploy_sensor_at(1, {300, 300});
  sensor.start();

  core::Consumer consumer(runtime.bus(), "consumer.flood-watch");
  const auto identity = runtime.provision(consumer, "flood-watch");
  (void)identity;
  runtime.coordinator().add_rule(
      {"flood-watch", /*state=*/3, {1, 0}, core::UpdateAction::kSetIntervalMs, 100});

  // Train: states 1 -> 2 -> 3, three times.
  for (int i = 0; i < 3; ++i) {
    for (const std::uint32_t state : {1u, 2u, 3u}) {
      consumer.report_state(state);
      runtime.run_for(Duration::millis(50));
    }
  }

  // Entering state 2 now predicts state 3 and pre-arms.
  consumer.report_state(1);
  runtime.run_for(Duration::millis(50));
  consumer.report_state(2);
  runtime.run_for(Duration::millis(50));
  EXPECT_GE(runtime.coordinator().stats().prearms_issued, 1u);

  const auto before = runtime.resource().stats().prearm_hits;
  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 100, {});
  runtime.run_for(Duration::seconds(1));
  EXPECT_EQ(runtime.resource().stats().prearm_hits, before + 1);
  EXPECT_EQ(sensor.stream(0)->interval_ms, 100u);
}

}  // namespace
}  // namespace garnet
