// Tree routing under churn: relay crashes and beacon-loss faults from
// the FaultPlan tear the multi-hop forest apart mid-stream, and the
// repair machinery (missed-beacon detection, backoff re-attach, orphan
// buffering) must restore delivery without ever duplicating a message —
// even when a fixed-service recovery promotion overlaps the re-parent.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <utility>

#include "garnet/runtime.hpp"
#include "obs/metrics.hpp"

namespace garnet {
namespace {

using util::Duration;
using util::SimTime;

/// Counts deliveries per (stream, sequence); the suite's core invariant
/// is that no pair is ever delivered twice.
struct DeliveryLedger {
  std::map<std::pair<std::uint32_t, core::SequenceNo>, int> counts;

  void attach(core::Consumer& consumer) {
    consumer.set_data_handler([this](const core::DeliveryView& d) {
      ++counts[{d.message.stream_id.packed(), d.message.sequence}];
    });
  }

  [[nodiscard]] int max_count() const {
    int most = 0;
    for (const auto& [key, count] : counts) most = std::max(most, count);
    return most;
  }
  [[nodiscard]] std::size_t distinct() const { return counts.size(); }
};

/// Chain deployment: one receiver at the origin (range 120), two relay
/// sensors inside its disk, and a source 220m out — reachable only
/// through a relay hop.
constexpr core::SensorId kRelayA = 1;
constexpr core::SensorId kRelayB = 2;
constexpr core::SensorId kSource = 3;

Runtime::Config chain_config(std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 200}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  config.field.tree_beacons = true;
  config.field.tree.beacon_interval = Duration::millis(100);
  config.field.tree_journal_limit = 4096;
  config.faults.journal_limit = 4096;
  return config;
}

wireless::SensorNode::Config chain_node(core::SensorId id, const Runtime::Config& config,
                                        bool sampling) {
  wireless::SensorNode::Config node;
  node.id = id;
  node.capabilities.relay_capable = true;
  node.relay_overhear_range_m = 150;
  node.tree = config.field.tree;
  if (sampling) {
    wireless::StreamSpec spec;
    spec.interval_ms = 200;
    node.streams.push_back(spec);
  }
  return node;
}

void deploy_chain(Runtime& runtime, const Runtime::Config& config) {
  runtime.field().medium().add_receiver({1, {0, 0}, 120});
  runtime.location().set_receiver_layout(runtime.field().medium().receivers());
  runtime.deploy_sensor(chain_node(kRelayA, config, /*sampling=*/false),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{100, 0}));
  runtime.deploy_sensor(chain_node(kRelayB, config, /*sampling=*/false),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{90, 50}));
  runtime.deploy_sensor(chain_node(kSource, config, /*sampling=*/true),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{220, 0}));
}

TEST(TreeChurn, RelayCrashMidForwardDeliversExactlyOnce) {
  Runtime::Config config = chain_config(11);
  // Both relays die mid-stream — the source is guaranteed to orphan no
  // matter which parent it picked — and rejoin cold 2.5s later.
  for (core::SensorId id : {kRelayA, kRelayB}) {
    net::FaultPlan::RelayFaultSpec fault;
    fault.node = id;
    fault.at = SimTime{} + Duration::seconds(4);
    fault.restart_after = Duration::millis(2500);
    config.faults.relay_faults.push_back(fault);
  }
  Runtime runtime(config);
  deploy_chain(runtime, config);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(kSource));
  DeliveryLedger ledger;
  ledger.attach(consumer);
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(4));  // up to the crash
  const std::size_t before_crash = ledger.distinct();
  EXPECT_GT(before_crash, 0u);  // multi-hop path was delivering

  // Through the outage: no relay is up, the source orphans and buffers.
  runtime.run_for(Duration::millis(2400));
  const std::size_t during_outage = ledger.distinct();

  // Through recovery: relays rejoin cold, the source re-attaches and
  // flushes its orphan backlog.
  runtime.run_for(Duration::seconds(6));
  EXPECT_GT(ledger.distinct(), during_outage);

  // The invariant under churn: nothing was ever delivered twice, not
  // even the frames wrapped toward a parent that died mid-forward.
  EXPECT_EQ(ledger.max_count(), 1);

  const net::FaultCounters& counters = runtime.bus().fault_injector()->counters();
  EXPECT_EQ(counters.relay_crashed, 2u);
  EXPECT_EQ(counters.relay_restarted, 2u);
  const std::string faults = runtime.bus().fault_injector()->journal_text();
  EXPECT_NE(faults.find("relay-crash"), std::string::npos);
  EXPECT_NE(faults.find("relay-restart"), std::string::npos);

  // The repair journal shows the source losing and re-finding a parent.
  const std::string repairs = runtime.field().tree_journal().text();
  EXPECT_NE(repairs.find("orphan sensor-3"), std::string::npos);
  EXPECT_GT(runtime.field().tree_stats().orphan_events, 0u);
}

TEST(TreeChurn, RecoveryPromotionOverlappingReparentStaysExactlyOnce) {
  Runtime::Config config = chain_config(12);
  config.recovery.enabled = true;
  {
    // The filtering service dies with no scheduled restart: the watchdog
    // must detect it and promote a replacement...
    net::FaultPlan::CrashSpec crash;
    crash.service = "filtering";
    crash.at = SimTime{} + Duration::seconds(4);
    config.faults.crashes.push_back(crash);
  }
  for (core::SensorId id : {kRelayA, kRelayB}) {
    // ...while, in the same window, the wireless tree is re-forming.
    net::FaultPlan::RelayFaultSpec fault;
    fault.node = id;
    fault.at = SimTime{} + Duration::millis(3900);
    fault.restart_after = Duration::millis(1200);
    config.faults.relay_faults.push_back(fault);
  }
  Runtime runtime(config);
  ASSERT_NE(runtime.recovery(), nullptr);
  deploy_chain(runtime, config);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(kSource));
  DeliveryLedger ledger;
  ledger.attach(consumer);
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(15));

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.recovery.crashes"), 1u);
  EXPECT_EQ(snap.counter("garnet.recovery.promotions"), 1u);
  EXPECT_FALSE(runtime.recovery()->crashed("filtering"));

  // The tree repaired itself underneath the promotion...
  EXPECT_GT(runtime.field().tree_stats().orphan_events, 0u);
  EXPECT_GT(ledger.distinct(), 0u);
  // ...and the overlap never opened a duplicate-delivery window: orphan
  // flush, relay dedup, filtering restore and stash replay all met.
  EXPECT_EQ(ledger.max_count(), 1);
}

/// One full churn run reduced to its replay-comparable artifacts.
struct ChurnOutcome {
  std::string fault_journal;
  std::string tree_journal;
  std::size_t distinct = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t reattaches = 0;
};

ChurnOutcome run_churn(std::uint64_t seed, util::Duration step) {
  Runtime::Config config = chain_config(seed);
  // Link noise draws from the injector's rng on every envelope; relay and
  // beacon faults are pure time triggers riding the same journal.
  config.faults.global.drop = 0.02;
  {
    net::FaultPlan::RelayFaultSpec fault;
    fault.node = kRelayA;
    fault.at = SimTime{} + Duration::seconds(3);
    fault.restart_after = Duration::millis(1500);
    config.faults.relay_faults.push_back(fault);
  }
  {
    net::FaultPlan::BeaconFaultSpec fault;
    fault.node = kSource;
    fault.at = SimTime{} + Duration::seconds(7);
    fault.restore_after = Duration::millis(1500);
    config.faults.beacon_faults.push_back(fault);
  }
  Runtime runtime(config);
  deploy_chain(runtime, config);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(kSource));
  DeliveryLedger ledger;
  ledger.attach(consumer);
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  const SimTime end = runtime.scheduler().now() + Duration::seconds(12);
  while (runtime.scheduler().now() < end) runtime.run_for(step);

  ChurnOutcome outcome;
  outcome.fault_journal = runtime.bus().fault_injector()->journal_text();
  outcome.tree_journal = runtime.field().tree_journal().text();
  outcome.distinct = ledger.distinct();
  outcome.forwarded = runtime.field().tree_stats().forwarded;
  outcome.reattaches = runtime.field().tree_stats().attaches;
  return outcome;
}

TEST(TreeChurn, SameSeedSameJournalsAtAnyCadence) {
  // The repair journal and the fault journal are pure functions of
  // (seed, plan): byte-identical whether the sim advances in one 12s
  // stride or in 25ms hops, because relay/beacon faults consume no rng
  // draws and the router draws none at all.
  const ChurnOutcome coarse = run_churn(0x7EE, Duration::seconds(12));
  const ChurnOutcome fine = run_churn(0x7EE, Duration::millis(25));

  EXPECT_FALSE(coarse.fault_journal.empty());
  EXPECT_NE(coarse.fault_journal.find("relay-crash"), std::string::npos);
  EXPECT_NE(coarse.fault_journal.find("beacon-loss"), std::string::npos);
  EXPECT_NE(coarse.fault_journal.find("beacon-restore"), std::string::npos);
  EXPECT_FALSE(coarse.tree_journal.empty());

  EXPECT_EQ(coarse.fault_journal, fine.fault_journal);
  EXPECT_EQ(coarse.tree_journal, fine.tree_journal);
  EXPECT_EQ(coarse.distinct, fine.distinct);
  EXPECT_EQ(coarse.forwarded, fine.forwarded);
  EXPECT_EQ(coarse.reattaches, fine.reattaches);
}

}  // namespace
}  // namespace garnet
