// Overload acceptance suite (the flood test from the fault model):
//
//   * 10x offered load with one consumer serving 100x slower than the
//     healthy one. The slow consumer is quarantined by the credit window
//     and shed at its bounded inbox; the healthy consumer's goodput must
//     stay within 10% of the same flood run without the straggler.
//   * Control-plane RPCs (catalog discovery) issued throughout the flood
//     must all complete with bounded latency, and no control-class
//     envelope may ever be shed while data was shed.
//   * Every overload transition is visible in telemetry, and two floods
//     from identical configs produce byte-identical shed journals.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;
using util::SimTime;

struct FloodOutcome {
  std::uint64_t fast_received = 0;
  std::uint64_t slow_received = 0;
  std::uint64_t discoveries_issued = 0;
  std::uint64_t discoveries_answered = 0;
  Duration control_p99{0};
  std::uint64_t data_sheds = 0;
  std::uint64_t control_sheds = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t credits_exhausted = 0;
  std::string shed_journal;
};

/// One second of flood at `message_interval`, optionally with the
/// 100x-slow subscriber attached. Everything is deterministic: messages
/// are injected straight into the dispatcher on a fixed schedule.
FloodOutcome run_flood(Duration message_interval, bool with_slow_consumer) {
  Runtime::Config config;
  config.overload.credit_window = 32;
  config.overload.shed_journal_limit = 1 << 16;
  {
    net::InboxConfig fast;
    fast.capacity = 64;
    fast.policy = net::OverflowPolicy::kDropOldest;
    fast.service_time = Duration::micros(20);  // healthy: keeps up with the flood
    config.overload.inboxes["consumer.fast"] = fast;
    net::InboxConfig slow = fast;
    slow.capacity = 8;
    slow.service_time = Duration::millis(2);  // 100x slower per message
    config.overload.inboxes["consumer.slow"] = slow;
  }
  Runtime runtime(config);

  core::Consumer fast(runtime.bus(), "consumer.fast");
  runtime.provision(fast, "fast");
  fast.subscribe(core::StreamPattern::everything());

  std::optional<core::Consumer> slow;
  if (with_slow_consumer) {
    slow.emplace(runtime.bus(), "consumer.slow");
    runtime.provision(*slow, "slow");
    slow->subscribe(core::StreamPattern::everything());
  }

  // Control-plane prober: a provisioned consumer running catalog
  // discovery on a fixed cadence for the whole flood.
  core::Consumer prober(runtime.bus(), "consumer.prober");
  runtime.provision(prober, "prober");
  runtime.run_for(Duration::millis(20));  // let the subscribe RPCs settle

  FloodOutcome outcome;
  std::vector<Duration> control_latencies;
  sim::Scheduler& scheduler = runtime.scheduler();

  const SimTime flood_end = scheduler.now() + Duration::seconds(1);
  core::SequenceNo next_seq = 0;
  std::function<void()> inject = [&] {
    core::DataMessage msg;
    msg.stream_id = {1, 0};
    msg.sequence = next_seq++;
    msg.payload = util::Bytes(24);
    runtime.dispatch().on_filtered(msg, scheduler.now());
    if (scheduler.now() < flood_end) scheduler.schedule_after(message_interval, inject);
  };
  std::function<void()> probe = [&] {
    ++outcome.discoveries_issued;
    const SimTime asked = scheduler.now();
    prober.discover({}, [&, asked](std::vector<core::StreamInfo>) {
      ++outcome.discoveries_answered;
      control_latencies.push_back(scheduler.now() - asked);
    });
    if (scheduler.now() < flood_end) scheduler.schedule_after(Duration::millis(20), probe);
  };
  inject();
  probe();
  runtime.run_for(Duration::seconds(2));  // flood + drain

  outcome.fast_received = fast.received();
  outcome.slow_received = slow ? slow->received() : 0;
  if (!control_latencies.empty()) {
    std::sort(control_latencies.begin(), control_latencies.end(),
              [](Duration a, Duration b) { return a.ns < b.ns; });
    outcome.control_p99 = control_latencies[(control_latencies.size() * 99) / 100];
  }
  outcome.data_sheds = runtime.bus().shed_stats().data_total();
  outcome.control_sheds = runtime.bus().shed_stats().control_total();
  outcome.quarantines = runtime.dispatch().stats().quarantines;
  outcome.credits_exhausted = runtime.dispatch().stats().credits_exhausted;
  outcome.shed_journal = runtime.bus().shed_journal_text();

  // Telemetry visibility: the same transitions through the registry.
  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.dispatch.quarantines"), outcome.quarantines);
  EXPECT_EQ(snap.counter("garnet.dispatch.credits_exhausted"), outcome.credits_exhausted);
  EXPECT_EQ(snap.counter("garnet.bus.shed", {{"class", "control"}, {"policy", "drop_oldest"}}) +
                snap.counter("garnet.bus.shed", {{"class", "control"}, {"policy", "drop_newest"}}) +
                snap.counter("garnet.bus.shed", {{"class", "control"}, {"policy", "reject_nack"}}),
            outcome.control_sheds);
  return outcome;
}

constexpr Duration kFloodInterval = Duration::micros(200);  // 10x the healthy 2ms cadence

TEST(OverloadFlood, SlowConsumerIsIsolatedGoodputHolds) {
  const FloodOutcome baseline = run_flood(kFloodInterval, /*with_slow_consumer=*/false);
  const FloodOutcome flooded = run_flood(kFloodInterval, /*with_slow_consumer=*/true);

  // The healthy consumer kept essentially all of its goodput despite the
  // straggler: within 10% of the no-straggler run at identical load.
  ASSERT_GT(baseline.fast_received, 4000u);  // the flood really ran
  EXPECT_GE(flooded.fast_received * 10, baseline.fast_received * 9);

  // The slow consumer was quarantined and shed, not allowed to drag the
  // deployment down — and received only a small fraction of the stream.
  EXPECT_GE(flooded.quarantines, 1u);
  EXPECT_GE(flooded.credits_exhausted, 1u);
  EXPECT_LT(flooded.slow_received * 5, flooded.fast_received);
  EXPECT_GT(flooded.data_sheds + flooded.quarantines, 0u);
}

TEST(OverloadFlood, ControlPlaneStaysResponsiveAndUnshed) {
  const FloodOutcome flooded = run_flood(kFloodInterval, /*with_slow_consumer=*/true);

  // Every discovery completed, with bounded tail latency.
  EXPECT_GT(flooded.discoveries_issued, 30u);
  EXPECT_EQ(flooded.discoveries_answered, flooded.discoveries_issued);
  EXPECT_LT(flooded.control_p99.ns, Duration::millis(50).ns);

  // The priority invariant held end to end: data was shed, control never.
  EXPECT_EQ(flooded.control_sheds, 0u);
}

TEST(OverloadFlood, IdenticalConfigsProduceIdenticalShedJournals) {
  const FloodOutcome first = run_flood(kFloodInterval, /*with_slow_consumer=*/true);
  const FloodOutcome second = run_flood(kFloodInterval, /*with_slow_consumer=*/true);

  EXPECT_FALSE(first.shed_journal.empty());
  EXPECT_EQ(first.shed_journal, second.shed_journal);
  EXPECT_EQ(first.fast_received, second.fast_received);
  EXPECT_EQ(first.slow_received, second.slow_received);
}

}  // namespace
}  // namespace garnet
