// Failure injection: the middleware must degrade gracefully, not crash
// or corrupt state, when the field misbehaves — heavy loss, dying
// sensors, roaming out of coverage, consumers vanishing mid-stream, and
// corrupted frames on the air.
#include <gtest/gtest.h>

#include <set>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

struct FailureFixture : ::testing::Test {
  static Runtime::Config config_with_loss(double base_loss, std::uint64_t seed = 5) {
    Runtime::Config config;
    config.field.area = {{0, 0}, {500, 500}};
    config.field.seed = seed;
    config.field.radio.base_loss = base_loss;
    config.field.radio.edge_loss = 0.3;
    return config;
  }
};

TEST_F(FailureFixture, HeavyLossNeverDuplicatesOrCrashes) {
  Runtime runtime(config_with_loss(0.6));
  runtime.deploy_receivers(9, 220);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 6;
  spec.interval_ms = 100;
  runtime.deploy_population(spec);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  std::set<std::pair<std::uint32_t, core::SequenceNo>> seen;
  std::uint64_t duplicates_at_consumer = 0;
  consumer.set_data_handler([&](const core::Delivery& d) {
    if (!seen.insert({d.message.stream_id.packed(), d.message.sequence}).second) {
      ++duplicates_at_consumer;
    }
  });
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(30));

  EXPECT_EQ(duplicates_at_consumer, 0u);
  EXPECT_GT(seen.size(), 100u);  // something still gets through
  // Loss means gaps: fewer unique messages than transmissions.
  EXPECT_LT(seen.size(),
            runtime.telemetry().registry.snapshot().counter("garnet.radio.uplink_frames"));
}

TEST_F(FailureFixture, SensorDeathMidRunIsQuietlyAbsorbed) {
  Runtime runtime(config_with_loss(0.0));
  runtime.deploy_receivers(4, 400);

  wireless::SensorNode::Config dying;
  dying.id = 1;
  dying.capabilities.receive_capable = true;
  dying.battery_joules = 0.05;  // dies after ~dozens of frames
  dying.tx_cost_joules_per_byte = 50e-6;
  wireless::StreamSpec spec;
  spec.interval_ms = 50;
  dying.streams.push_back(spec);
  auto& sensor = runtime.deploy_sensor(
      std::move(dying), std::make_unique<sim::StaticMobility>(sim::Vec2{250, 250}));

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));

  sensor.start();
  runtime.run_for(Duration::seconds(60));

  EXPECT_FALSE(sensor.alive());
  const std::uint64_t received_at_death = consumer.received();
  EXPECT_GT(received_at_death, 0u);
  runtime.run_for(Duration::seconds(10));
  EXPECT_EQ(consumer.received(), received_at_death);

  // Actuating a dead sensor expires cleanly after retries.
  consumer.request_update({1, 0}, core::UpdateAction::kSetMode, 1, {});
  runtime.run_for(Duration::seconds(30));
  EXPECT_EQ(runtime.actuation().stats().expired, 1u);
  EXPECT_EQ(runtime.actuation().pending_count(), 0u);
}

TEST_F(FailureFixture, RoamingOutOfCoverageLosesDataNotState) {
  // Paper §4.2: "Sensors are expected to occasionally roam outside the
  // reception zone, which may cause data messages to be lost."
  Runtime runtime(config_with_loss(0.0));
  // One receiver covering only the field centre.
  runtime.field().medium().add_receiver({1, {250, 250}, 120});
  runtime.location().set_receiver_layout(runtime.field().medium().receivers());

  // A patrol path that is in range only part of the time.
  wireless::SensorNode::Config config;
  config.id = 1;
  wireless::StreamSpec spec;
  spec.interval_ms = 100;
  config.streams.push_back(spec);
  auto& sensor = runtime.deploy_sensor(
      std::move(config),
      std::make_unique<sim::PathMobility>(
          std::vector<sim::Vec2>{{250, 250}, {250, 900}}, 20.0));

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));

  sensor.start();
  runtime.run_for(Duration::seconds(120));

  const auto radio = runtime.telemetry().registry.snapshot();
  EXPECT_GT(radio.counter("garnet.radio.uplink_unheard"), 0u);  // out-of-range losses happened
  EXPECT_GT(consumer.received(), 0u);           // in-range data flowed
  EXPECT_LT(consumer.received(), sensor.messages_sent());
}

TEST_F(FailureFixture, ConsumerVanishingMidStreamIsDropSafe) {
  Runtime runtime(config_with_loss(0.0));
  runtime.deploy_receivers(4, 400);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  spec.interval_ms = 100;
  runtime.deploy_population(spec);

  auto consumer = std::make_unique<core::Consumer>(runtime.bus(), "consumer.fleeting");
  runtime.provision(*consumer, "fleeting");
  consumer->subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(2));
  EXPECT_GT(consumer->received(), 0u);

  // The consumer process dies without unsubscribing. Deliveries to its
  // address are dropped by the bus; the pipeline keeps running.
  const net::Address gone = consumer->address();
  consumer.reset();
  runtime.run_for(Duration::seconds(5));
  EXPECT_GT(runtime.telemetry().registry.snapshot().counter("garnet.bus.dropped_no_endpoint"),
            0u);

  // Housekeeping: the operator can purge the dead subscriptions.
  EXPECT_GT(runtime.dispatch().drop_consumer(gone), 0u);
  const auto delivered_before = runtime.dispatch().stats().copies_delivered;
  runtime.run_for(Duration::seconds(2));
  EXPECT_EQ(runtime.dispatch().stats().copies_delivered, delivered_before);
}

TEST_F(FailureFixture, CorruptedFramesRejectedByChecksum) {
  Runtime runtime(config_with_loss(0.0));
  runtime.deploy_receivers(1, 1000);

  // Inject corrupted frames straight into the receiver feed.
  core::DataMessage msg;
  msg.stream_id = {1, 0};
  msg.sequence = 0;
  msg.payload = util::to_bytes("valid payload");
  util::Bytes wire = core::encode(msg);
  wire[wire.size() / 2] ^= std::byte{0xFF};

  runtime.filtering().ingest(wireless::ReceptionReport{1, -40.0, {}, wire});
  runtime.filtering().ingest(wireless::ReceptionReport{1, -40.0, {}, util::to_bytes("?")});

  EXPECT_EQ(runtime.filtering().stats().malformed, 2u);
  EXPECT_EQ(runtime.filtering().stats().messages_out, 0u);
  EXPECT_EQ(runtime.location().stats().observations, 0u);  // no poisoned evidence
}

TEST_F(FailureFixture, ZeroReceiversMeansOrderlySilence) {
  Runtime runtime(config_with_loss(0.0));  // no receivers deployed at all
  wireless::SensorField::PopulationSpec spec;
  spec.count = 3;
  runtime.deploy_population(spec);
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  EXPECT_GT(runtime.telemetry().registry.snapshot().counter("garnet.radio.uplink_unheard"), 0u);
  EXPECT_EQ(runtime.filtering().stats().copies_in, 0u);
  EXPECT_EQ(runtime.dispatch().stats().messages_in, 0u);
}

TEST_F(FailureFixture, ActuationWithoutTransmittersExpires) {
  Runtime runtime(config_with_loss(0.0));
  runtime.deploy_receivers(4, 400);  // uplink fine, downlink impossible
  wireless::SensorField::PopulationSpec spec;
  spec.count = 1;
  runtime.deploy_population(spec);
  runtime.start_sensors();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  std::optional<core::Admission> admission;
  consumer.request_update({1, 0}, core::UpdateAction::kSetMode, 1,
                          [&](std::uint32_t, core::Admission a, std::uint32_t) { admission = a; });
  runtime.run_for(Duration::seconds(30));

  // Admission succeeded (the fixed side is healthy)...
  EXPECT_EQ(admission, core::Admission::kApproved);
  // ...but no transmitter could carry it; the request expired cleanly.
  EXPECT_EQ(runtime.actuation().stats().expired, 1u);
}

}  // namespace
}  // namespace garnet
