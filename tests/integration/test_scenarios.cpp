// Scenario regression tests: the headline behaviours the example
// programs demonstrate, pinned as assertions so they cannot silently
// regress. Each test is a compressed version of one example.
#include <gtest/gtest.h>

#include "crypto/sealed.hpp"
#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

// --- water_course: predictive admission collapses after training -----------

TEST(Scenarios, WaterCoursePredictionCollapsesAdmissionLatency) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {2000, 400}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  config.resource.evaluation_delay = Duration::millis(25);
  Runtime runtime(config);
  runtime.deploy_receivers(6, 500);
  runtime.deploy_transmitters(6, 600);

  wireless::SensorNode::Config gauge;
  gauge.id = 2;
  gauge.capabilities.receive_capable = true;
  wireless::StreamSpec level;
  level.interval_ms = 2000;
  level.constraints = {.min_interval_ms = 100, .max_interval_ms = 60000, .max_payload = 64};
  gauge.streams.push_back(level);
  runtime.deploy_sensor(std::move(gauge),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{1000, 200}))
      .start();

  core::Consumer watch(runtime.bus(), "consumer.flood-watch");
  runtime.provision(watch, "flood-watch", 200, core::TrustLevel::kTrusted);
  runtime.coordinator().add_rule(
      {"flood-watch", 3, {2, 0}, core::UpdateAction::kSetIntervalMs, 100});

  std::vector<double> latencies_ms;
  for (int cycle = 0; cycle < 6; ++cycle) {
    watch.report_state(1);
    runtime.run_for(Duration::seconds(30));
    watch.report_state(2);
    runtime.run_for(Duration::seconds(30));
    watch.report_state(3);
    runtime.run_for(Duration::millis(5));

    const util::SimTime asked = runtime.scheduler().now();
    double latency = -1;
    watch.request_update({2, 0}, core::UpdateAction::kSetIntervalMs, 100,
                         [&](std::uint32_t, core::Admission, std::uint32_t) {
                           latency = (runtime.scheduler().now() - asked).to_millis();
                         });
    runtime.run_for(Duration::seconds(20));
    ASSERT_GE(latency, 0.0) << "cycle " << cycle;
    latencies_ms.push_back(latency);

    watch.request_update({2, 0}, core::UpdateAction::kSetIntervalMs, 2000, {});
    runtime.run_for(Duration::seconds(30));
  }

  // Untrained cycles pay the full deliberation; trained cycles must not.
  EXPECT_GT(latencies_ms[0], 25.0);
  EXPECT_GT(latencies_ms[2], 25.0);
  EXPECT_LT(latencies_ms[4], 5.0);  // trained by the 4th flood
  EXPECT_LT(latencies_ms[5], 5.0);
  EXPECT_GE(runtime.resource().stats().prearm_hits, 2u);
}

// --- military_recon: opacity of sealed payloads -----------------------------

TEST(Scenarios, SealedPayloadsOpaqueToMiddlewareAndKeyless) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);

  const crypto::Key key = crypto::key_from_seed(0x5EC7E7);
  wireless::SensorNode::Config sensor;
  sensor.id = 1;
  wireless::StreamSpec acoustic;
  acoustic.interval_ms = 200;
  acoustic.constraints.max_payload = 96;
  acoustic.generate = [key, seq = std::uint64_t{0}](util::SimTime, util::Rng& rng) mutable {
    util::ByteWriter w(8);
    w.f64(rng.normal(30.0, 4.0));
    return crypto::seal(key, crypto::nonce_from_counter((1ull << 32) | (seq++ & 0xFFFF)),
                        w.view());
  };
  sensor.streams.push_back(acoustic);
  runtime.deploy_sensor(std::move(sensor),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{200, 200}))
      .start();

  core::Consumer intel(runtime.bus(), "consumer.intel");
  core::Consumer observer(runtime.bus(), "consumer.observer");
  runtime.provision(intel, "intel");
  runtime.provision(observer, "observer");

  std::size_t intel_opened = 0;
  intel.set_data_handler([&](const core::Delivery& d) {
    const auto nonce = crypto::nonce_from_counter((1ull << 32) | d.message.sequence);
    if (crypto::open(key, nonce, d.message.payload).ok()) ++intel_opened;
  });
  std::size_t observer_opened = 0;
  std::size_t observer_received = 0;
  observer.set_data_handler([&](const core::Delivery& d) {
    ++observer_received;
    const auto nonce = crypto::nonce_from_counter((1ull << 32) | d.message.sequence);
    if (crypto::open(crypto::key_from_seed(0xBAD), nonce, d.message.payload).ok()) {
      ++observer_opened;
    }
  });
  intel.subscribe(core::StreamPattern::all_of(1));
  observer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.run_for(Duration::seconds(10));

  EXPECT_GT(observer_received, 30u);       // middleware serves both equally
  EXPECT_EQ(observer_opened, 0u);          // ...but ciphertext stays ciphertext
  EXPECT_EQ(intel_opened, observer_received);
}

// --- habitat: late discovery + orphanage handoff ----------------------------

TEST(Scenarios, LateConsumerDiscoversAndClaimsBacklog) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  config.orphanage.retention_per_stream = 16;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  spec.interval_ms = 200;
  runtime.deploy_population(spec);

  // Nobody is listening for 5 seconds: everything orphans.
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));
  EXPECT_GT(runtime.orphanage().total_received(), 20u);

  // A late consumer discovers the auto-detected streams over RPC and
  // claims the retained backlog before going live.
  core::Consumer late(runtime.bus(), "consumer.late");
  runtime.provision(late, "late");
  std::vector<core::StreamInfo> found;
  late.discover({.sensor = std::nullopt, .stream_class = "", .include_unadvertised = true},
                [&](std::vector<core::StreamInfo> streams) { found = std::move(streams); });
  runtime.run_for(Duration::millis(20));
  ASSERT_EQ(found.size(), 2u);

  std::size_t backlog = 0;
  for (const core::StreamInfo& info : found) {
    backlog += runtime.orphanage().claim(info.id).size();
    late.subscribe(core::StreamPattern::exact(info.id));
  }
  EXPECT_EQ(backlog, 32u);  // 16 retained per stream

  runtime.run_for(Duration::seconds(5));
  EXPECT_GT(late.received(), 20u);  // live data flows after the claim
}

}  // namespace
}  // namespace garnet
