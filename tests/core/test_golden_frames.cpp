// Golden-frame determinism for the StreamTable migration.
//
// The services used to checkpoint by walking sorted std::maps; they now
// walk StreamTable::for_each_sorted. Replicas upgrade one process at a
// time, so the refactor must be invisible on the wire: this suite pins
// capture_state() bytes against independent std::map-based reference
// encoders (the pre-refactor baseline, reconstructed inline), checks
// insertion-order invariance, and proves the incremental path — a full
// frame plus every subsequent delta — reproduces the primary's full
// capture byte for byte, with no partial application on corrupt input.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "core/location.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

// --- catalog: byte-golden against the std::map baseline ---------------

TEST(GoldenFrames, CatalogCaptureMatchesSortedMapReference) {
  StreamCatalog catalog;
  const SimTime t1 = SimTime{} + Duration::millis(100);
  const SimTime t2 = SimTime{} + Duration::millis(250);
  // Scrambled insertion order; the frame must come out key-sorted.
  catalog.advertise({7, 2}, "well-7", "water-level");
  catalog.advertise({1, 0}, "temp-1", "temperature");
  catalog.note_message({7, 2}, t1);
  catalog.note_message({3, 1}, t1);  // auto-detected, unadvertised
  catalog.note_message({3, 1}, t2);

  // Pre-refactor reference: a sorted std::map of the same logical
  // entries, encoded with the documented per-entry layout.
  struct Entry {
    std::string name, stream_class;
    bool advertised = false, derived = false;
    SimTime first_seen, last_seen;
    std::uint64_t messages = 0;
  };
  std::map<std::uint32_t, Entry> reference;
  reference[StreamId{1, 0}.packed()] = {"temp-1", "temperature", true, false, {}, {}, 0};
  reference[StreamId{7, 2}.packed()] = {"well-7", "water-level", true, false, {}, t1, 1};
  reference[StreamId{3, 1}.packed()] = {"", "", false, false, t1, t2, 2};

  util::ByteWriter w(256);
  w.u32(static_cast<std::uint32_t>(reference.size()));
  for (const auto& [packed, info] : reference) {
    w.u32(packed);
    w.str(info.name);
    w.str(info.stream_class);
    w.u8(info.advertised ? 1 : 0);
    w.u8(info.derived ? 1 : 0);
    w.i64(info.first_seen.ns);
    w.i64(info.last_seen.ns);
    w.u64(info.messages);
  }
  w.u32(kDerivedSensorBase);  // untouched derived-id allocator
  w.u8(0);

  EXPECT_EQ(catalog.capture_state(), std::move(w).take());
}

TEST(GoldenFrames, CatalogCaptureIsInsertionOrderInvariant) {
  const SimTime t = SimTime{} + Duration::millis(10);
  StreamCatalog a;
  a.advertise({1, 0}, "one", "temperature");
  a.advertise({2, 0}, "two", "temperature");
  a.note_message({9, 3}, t);
  StreamCatalog b;
  b.note_message({9, 3}, t);
  b.advertise({2, 0}, "two", "temperature");
  b.advertise({1, 0}, "one", "temperature");
  EXPECT_EQ(a.capture_state(), b.capture_state());
}

// --- filtering: byte-golden against the std::map baseline -------------

TEST(GoldenFrames, FilteringCaptureMatchesSortedMapReference) {
  sim::Scheduler scheduler;
  FilteringService service(scheduler, {});
  // note_seen drives the dedup cursor exactly like accepted traffic.
  service.note_seen({5, 1}, 3);
  service.note_seen({5, 1}, 4);
  service.note_seen({2, 0}, 7);

  // Reference: per-stream records sorted by packed id, each encoding
  // [started][newest][next_release][accepted][total_advance][seen set].
  util::ByteWriter w(128);
  w.u32(2);
  w.u32(StreamId{2, 0}.packed());
  w.u8(1);
  w.u16(7);
  w.u16(8);
  w.u64(1);
  w.u64(0);
  w.u16(1);
  w.u16(7);
  w.u32(StreamId{5, 1}.packed());
  w.u8(1);
  w.u16(4);
  w.u16(5);
  w.u64(2);
  w.u64(1);
  w.u16(2);
  w.u16(3);
  w.u16(4);

  EXPECT_EQ(service.capture_state(), std::move(w).take());
}

// --- full + deltas == full, per service -------------------------------

TEST(GoldenFrames, CatalogDeltaChainReproducesFullCapture) {
  const SimTime t = SimTime{} + Duration::millis(50);
  StreamCatalog primary;
  primary.advertise({1, 0}, "one", "temperature");
  primary.note_message({2, 0}, t);

  StreamCatalog standby;
  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());
  ASSERT_EQ(standby.capture_state(), primary.capture_state());

  // Delta 1: a new stream, a touched stream, and an allocator bump.
  primary.note_message({2, 0}, t + Duration::millis(5));
  primary.advertise({9, 9}, "nine", "water-level");
  (void)primary.allocate_derived();
  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());

  // Delta 2: only untouched state — an empty delta must also converge.
  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());
}

TEST(GoldenFrames, FilteringDeltaChainReproducesFullCapture) {
  sim::Scheduler scheduler;
  FilteringService primary(scheduler, {});
  FilteringService standby(scheduler, {});
  for (SequenceNo seq = 0; seq < 8; ++seq) primary.note_seen({1, 0}, seq);
  primary.note_seen({2, 0}, 100);

  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());
  ASSERT_EQ(standby.capture_state(), primary.capture_state());

  primary.note_seen({1, 0}, 8);        // existing stream advances
  primary.note_seen({3, 3}, 0);        // brand-new stream
  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());

  primary.note_seen({2, 0}, 101);
  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());
}

TEST(GoldenFrames, LocationDeltaChainReproducesFullCapture) {
  sim::Scheduler scheduler_a;
  net::MessageBus bus_a(scheduler_a, {});
  AuthService auth_a{{}};
  LocationService primary(bus_a, auth_a, {});
  sim::Scheduler scheduler_b;
  net::MessageBus bus_b(scheduler_b, {});
  AuthService auth_b{{}};
  LocationService standby(bus_b, auth_b, {});

  const SimTime t = SimTime{} + Duration::seconds(1);
  primary.observe({.sensor = 4, .receiver = 1, .rssi_dbm = -60.0, .heard_at = t});
  primary.observe({.sensor = 9, .receiver = 2, .rssi_dbm = -72.5, .heard_at = t});

  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());
  ASSERT_EQ(standby.capture_state(), primary.capture_state());

  primary.observe({.sensor = 4, .receiver = 3, .rssi_dbm = -55.0,
                   .heard_at = t + Duration::millis(10)});
  LocationHint hint;
  hint.sensor = 9;
  hint.x = 12.0;
  hint.y = 34.0;
  hint.radius_m = 20.0;
  primary.hint(hint, t + Duration::millis(20));
  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());
}

TEST(GoldenFrames, DispatchDeltaChainReproducesFullCapture) {
  sim::Scheduler scheduler_a;
  net::MessageBus bus_a(scheduler_a, {});
  AuthService auth_a{{}};
  StreamCatalog catalog_a;
  DispatchingService primary(bus_a, auth_a, catalog_a);
  sim::Scheduler scheduler_b;
  net::MessageBus bus_b(scheduler_b, {});
  AuthService auth_b{{}};
  StreamCatalog catalog_b;
  DispatchingService standby(bus_b, auth_b, catalog_b);

  const net::Address consumer = bus_a.add_endpoint("consumer", [](net::Envelope) {});
  primary.subscribe(consumer, StreamPattern::all_of(1));

  DataMessage msg;
  msg.stream_id = {1, 0};
  msg.payload = util::to_bytes("x");
  for (SequenceNo seq = 0; seq < 4; ++seq) {
    msg.sequence = seq;
    primary.on_filtered(msg, scheduler_a.now());
  }

  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());
  ASSERT_EQ(standby.capture_state(), primary.capture_state());

  // Delta: a new subscription rides whole, the cursor table rides as
  // dirty entries only.
  primary.subscribe(consumer, StreamPattern::exact({2, 0}));
  msg.stream_id = {2, 0};
  msg.sequence = 9;
  primary.on_filtered(msg, scheduler_a.now());
  msg.stream_id = {1, 0};
  msg.sequence = 4;
  primary.on_filtered(msg, scheduler_a.now());
  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());

  ASSERT_TRUE(standby.apply_delta(primary.capture_delta()).ok());
  EXPECT_EQ(standby.capture_state(), primary.capture_state());
}

// --- corrupt deltas never partially apply -----------------------------

TEST(GoldenFrames, TruncatedDeltaLeavesStateUntouched) {
  const SimTime t = SimTime{} + Duration::millis(5);
  StreamCatalog primary;
  primary.advertise({1, 0}, "one", "temperature");
  StreamCatalog standby;
  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());

  primary.advertise({2, 0}, "two", "temperature");
  primary.note_message({1, 0}, t);
  const util::Bytes delta = primary.capture_delta();
  const util::Bytes before = standby.capture_state();

  for (std::size_t len = 0; len < delta.size(); ++len) {
    EXPECT_FALSE(standby.apply_delta(util::BytesView(delta.data(), len)).ok())
        << "accepted a " << len << "-byte delta prefix";
    EXPECT_EQ(standby.capture_state(), before) << "partial apply at len " << len;
  }
  ASSERT_TRUE(standby.apply_delta(delta).ok());  // the intact delta still lands
  EXPECT_EQ(standby.capture_state(), primary.capture_state());
}

TEST(GoldenFrames, FilteringTruncatedDeltaLeavesStateUntouched) {
  sim::Scheduler scheduler;
  FilteringService primary(scheduler, {});
  FilteringService standby(scheduler, {});
  primary.note_seen({1, 0}, 1);
  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());
  primary.note_seen({1, 0}, 2);
  primary.note_seen({4, 0}, 5);
  const util::Bytes delta = primary.capture_delta();
  const util::Bytes before = standby.capture_state();

  for (std::size_t len = 0; len < delta.size(); ++len) {
    EXPECT_FALSE(standby.apply_delta(util::BytesView(delta.data(), len)).ok());
    EXPECT_EQ(standby.capture_state(), before);
  }
}

}  // namespace
}  // namespace garnet::core
