// Resource Manager admission control and conflict mediation (experiment
// E8's correctness side): mutually-unaware consumers with clashing
// demands are mediated per policy; trusted consumers may override.
#include "core/resource.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

using util::Duration;

struct ResourceFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};

  ResourceManager make(ConflictPolicy policy) {
    ResourceManager::Config config;
    config.policy = policy;
    config.evaluation_delay = Duration::millis(5);
    return ResourceManager(bus, auth, config);
  }

  ConsumerToken register_consumer(AuthService& a, const std::string& name,
                                  std::uint8_t priority = 100,
                                  std::optional<TrustLevel> trust = std::nullopt) {
    if (trust) a.grant_trust(name, *trust);
    const auto identity = a.register_consumer(name, net::Address{1}, priority);
    return identity.value().token;
  }

  SensorProfile profile_for(SensorId id, bool receive_capable = true) {
    SensorProfile profile;
    profile.id = id;
    profile.receive_capable = receive_capable;
    profile.constraints[0] = {.min_interval_ms = 100, .max_interval_ms = 60000, .max_payload = 64};
    return profile;
  }
};

TEST_F(ResourceFixture, UnknownTokenDenied) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  const Decision d = rm.evaluate_now(0xBAD, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  EXPECT_EQ(d.admission, Admission::kDenied);
}

TEST_F(ResourceFixture, UntrustedConsumerDenied) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  const ConsumerToken token = register_consumer(auth, "guest", 100, TrustLevel::kUntrusted);
  const Decision d = rm.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  EXPECT_EQ(d.admission, Admission::kDenied);
}

TEST_F(ResourceFixture, TransmitOnlySensorDenied) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1, /*receive_capable=*/false));
  const ConsumerToken token = register_consumer(auth, "app");
  const Decision d = rm.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  EXPECT_EQ(d.admission, Admission::kDenied);
}

TEST_F(ResourceFixture, SingleDemandApproved) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken token = register_consumer(auth, "app");
  const Decision d = rm.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  EXPECT_EQ(d.admission, Admission::kApproved);
  EXPECT_EQ(d.effective_value, 500u);
  EXPECT_EQ(rm.believed_interval({1, 0}), 500u);
}

TEST_F(ResourceFixture, ConstraintClampModifies) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));  // floor 100ms
  const ConsumerToken token = register_consumer(auth, "app");
  const Decision d = rm.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 10);
  EXPECT_EQ(d.admission, Admission::kModified);
  EXPECT_EQ(d.effective_value, 100u);
}

TEST_F(ResourceFixture, MostDemandingWinsTakesFastestRate) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken slow = register_consumer(auth, "slow");
  const ConsumerToken fast = register_consumer(auth, "fast");

  EXPECT_EQ(rm.evaluate_now(slow, {1, 0}, UpdateAction::kSetIntervalMs, 5000).effective_value,
            5000u);
  // Faster demand wins...
  EXPECT_EQ(rm.evaluate_now(fast, {1, 0}, UpdateAction::kSetIntervalMs, 500).effective_value,
            500u);
  // ...and keeps winning when the slow consumer re-asks.
  const Decision d = rm.evaluate_now(slow, {1, 0}, UpdateAction::kSetIntervalMs, 5000);
  EXPECT_EQ(d.admission, Admission::kModified);
  EXPECT_EQ(d.effective_value, 500u);
}

TEST_F(ResourceFixture, PriorityWinsFollowsRank) {
  ResourceManager rm = make(ConflictPolicy::kPriorityWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken low = register_consumer(auth, "low", 10);
  const ConsumerToken high = register_consumer(auth, "high", 200);

  EXPECT_EQ(rm.evaluate_now(low, {1, 0}, UpdateAction::kSetIntervalMs, 500).effective_value,
            500u);
  EXPECT_EQ(rm.evaluate_now(high, {1, 0}, UpdateAction::kSetIntervalMs, 2000).effective_value,
            2000u);
  // Low priority cannot budge the high-priority setting.
  const Decision d = rm.evaluate_now(low, {1, 0}, UpdateAction::kSetIntervalMs, 100);
  EXPECT_EQ(d.admission, Admission::kModified);
  EXPECT_EQ(d.effective_value, 2000u);
}

TEST_F(ResourceFixture, MergeTakesMedian) {
  ResourceManager rm = make(ConflictPolicy::kMerge);
  rm.register_profile(profile_for(1));
  const ConsumerToken a = register_consumer(auth, "a");
  const ConsumerToken b = register_consumer(auth, "b");
  const ConsumerToken c = register_consumer(auth, "c");

  (void)rm.evaluate_now(a, {1, 0}, UpdateAction::kSetIntervalMs, 1000);
  (void)rm.evaluate_now(b, {1, 0}, UpdateAction::kSetIntervalMs, 4000);
  const Decision d = rm.evaluate_now(c, {1, 0}, UpdateAction::kSetIntervalMs, 2000);
  EXPECT_EQ(d.effective_value, 2000u);  // median of {1000, 2000, 4000}
}

TEST_F(ResourceFixture, RejectConflictsDeniesClashingDemand) {
  ResourceManager rm = make(ConflictPolicy::kRejectConflicts);
  rm.register_profile(profile_for(1));
  const ConsumerToken first = register_consumer(auth, "first");
  const ConsumerToken second = register_consumer(auth, "second");

  EXPECT_EQ(rm.evaluate_now(first, {1, 0}, UpdateAction::kSetIntervalMs, 1000).admission,
            Admission::kApproved);
  const Decision clash = rm.evaluate_now(second, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  EXPECT_EQ(clash.admission, Admission::kDenied);
  // Matching demand is fine.
  EXPECT_EQ(rm.evaluate_now(second, {1, 0}, UpdateAction::kSetIntervalMs, 1000).admission,
            Admission::kApproved);
}

TEST_F(ResourceFixture, TrustedOverridesRejectConflicts) {
  // Paper §9: "support for trusted applications to ... override sensor
  // management policies".
  ResourceManager rm = make(ConflictPolicy::kRejectConflicts);
  rm.register_profile(profile_for(1));
  const ConsumerToken plain = register_consumer(auth, "plain");
  const ConsumerToken trusted = register_consumer(auth, "ops", 100, TrustLevel::kTrusted);

  (void)rm.evaluate_now(plain, {1, 0}, UpdateAction::kSetIntervalMs, 1000);
  const Decision d = rm.evaluate_now(trusted, {1, 0}, UpdateAction::kSetIntervalMs, 200);
  EXPECT_NE(d.admission, Admission::kDenied);
  EXPECT_EQ(d.effective_value, 200u);
  EXPECT_EQ(rm.stats().trusted_overrides, 1u);
}

TEST_F(ResourceFixture, DisableDeniedWhileOthersDepend) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken a = register_consumer(auth, "a");
  const ConsumerToken b = register_consumer(auth, "b");

  (void)rm.evaluate_now(a, {1, 0}, UpdateAction::kSetIntervalMs, 1000);
  const Decision d = rm.evaluate_now(b, {1, 0}, UpdateAction::kDisableStream, 0);
  EXPECT_EQ(d.admission, Admission::kDenied);
}

TEST_F(ResourceFixture, DisableAllowedWithoutCompetitors) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken a = register_consumer(auth, "a");
  (void)rm.evaluate_now(a, {1, 0}, UpdateAction::kSetIntervalMs, 1000);
  // Own demand does not block own disable.
  EXPECT_EQ(rm.evaluate_now(a, {1, 0}, UpdateAction::kDisableStream, 0).admission,
            Admission::kApproved);
}

TEST_F(ResourceFixture, TrustedMayDisableOverCompetitors) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken a = register_consumer(auth, "a");
  const ConsumerToken ops = register_consumer(auth, "ops", 100, TrustLevel::kTrusted);
  (void)rm.evaluate_now(a, {1, 0}, UpdateAction::kSetIntervalMs, 1000);
  EXPECT_EQ(rm.evaluate_now(ops, {1, 0}, UpdateAction::kDisableStream, 0).admission,
            Admission::kApproved);
}

TEST_F(ResourceFixture, PayloadHintClamped) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));  // max_payload 64
  const ConsumerToken token = register_consumer(auth, "app");
  const Decision d = rm.evaluate_now(token, {1, 0}, UpdateAction::kSetPayloadHint, 512);
  EXPECT_EQ(d.admission, Admission::kModified);
  EXPECT_EQ(d.effective_value, 64u);
}

TEST_F(ResourceFixture, UnknownSensorApprovedWithoutKnowledge) {
  // The approximate overview may simply not know a sensor yet.
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  const ConsumerToken token = register_consumer(auth, "app");
  const Decision d = rm.evaluate_now(token, {42, 0}, UpdateAction::kSetIntervalMs, 777);
  EXPECT_EQ(d.admission, Admission::kApproved);
  EXPECT_EQ(d.effective_value, 777u);
}

TEST_F(ResourceFixture, AsyncEvaluationTakesDeliberationTime) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken token = register_consumer(auth, "app");

  std::optional<util::SimTime> decided_at;
  rm.evaluate(token, {1, 0}, UpdateAction::kSetIntervalMs, 500,
              [&](Decision) { decided_at = scheduler.now(); });
  scheduler.run();
  ASSERT_TRUE(decided_at.has_value());
  EXPECT_EQ(decided_at->ns, Duration::millis(5).ns);
}

TEST_F(ResourceFixture, PrearmSkipsDeliberation) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken token = register_consumer(auth, "app");

  rm.prearm(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  std::optional<util::SimTime> decided_at;
  std::optional<Decision> decision;
  rm.evaluate(token, {1, 0}, UpdateAction::kSetIntervalMs, 500, [&](Decision d) {
    decided_at = scheduler.now();
    decision = d;
  });
  // Pre-armed decisions resolve synchronously, before any event runs.
  ASSERT_TRUE(decided_at.has_value());
  EXPECT_EQ(decided_at->ns, 0);
  EXPECT_EQ(decision->admission, Admission::kApproved);
  EXPECT_EQ(rm.stats().prearm_hits, 1u);
}

TEST_F(ResourceFixture, StalePrearmFallsBackToDeliberation) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken token = register_consumer(auth, "app");

  rm.prearm(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  // Predictions age out: 60s later the pre-arm must not short-circuit.
  scheduler.run_until(util::SimTime{} + Duration::seconds(120));

  std::optional<util::SimTime> decided_at;
  rm.evaluate(token, {1, 0}, UpdateAction::kSetIntervalMs, 500,
              [&](Decision) { decided_at = scheduler.now(); });
  scheduler.run();
  ASSERT_TRUE(decided_at.has_value());
  EXPECT_EQ((*decided_at - util::SimTime{} - Duration::seconds(120)).ns,
            Duration::millis(5).ns);  // full deliberation happened
  EXPECT_EQ(rm.stats().prearm_hits, 0u);
}

TEST_F(ResourceFixture, PrearmConsumedOnce) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  const ConsumerToken token = register_consumer(auth, "app");
  rm.prearm(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  rm.evaluate(token, {1, 0}, UpdateAction::kSetIntervalMs, 500, [](Decision) {});
  rm.evaluate(token, {1, 0}, UpdateAction::kSetIntervalMs, 500, [](Decision) {});
  scheduler.run();
  EXPECT_EQ(rm.stats().prearm_hits, 1u);
  EXPECT_EQ(rm.stats().evaluated, 2u);
}

TEST_F(ResourceFixture, PolicyChangeAtRuntime) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.set_policy(ConflictPolicy::kPriorityWins);
  EXPECT_EQ(rm.policy(), ConflictPolicy::kPriorityWins);
  EXPECT_EQ(rm.stats().policy_changes, 1u);
  rm.set_policy(ConflictPolicy::kPriorityWins);  // no-op
  EXPECT_EQ(rm.stats().policy_changes, 1u);
}

TEST_F(ResourceFixture, EvaluateViaRpc) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken token = register_consumer(auth, "app");

  net::RpcNode caller(bus, "caller");
  std::optional<Admission> admission;
  util::ByteWriter w(17);
  w.u64(token);
  w.u32(StreamId{1, 0}.packed());
  w.u8(static_cast<std::uint8_t>(UpdateAction::kSetIntervalMs));
  w.u32(500);
  caller.call(rm.address(), ResourceManager::kEvaluate, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                util::ByteReader r(result.value());
                admission = static_cast<Admission>(r.u8());
                EXPECT_EQ(r.u32(), 500u);
              });
  scheduler.run();
  EXPECT_EQ(admission, Admission::kApproved);
}

TEST_F(ResourceFixture, StatsBreakdown) {
  ResourceManager rm = make(ConflictPolicy::kRejectConflicts);
  rm.register_profile(profile_for(1));
  const ConsumerToken a = register_consumer(auth, "a");
  const ConsumerToken b = register_consumer(auth, "b");
  rm.evaluate(a, {1, 0}, UpdateAction::kSetIntervalMs, 1000, [](Decision) {});
  scheduler.run();
  rm.evaluate(b, {1, 0}, UpdateAction::kSetIntervalMs, 250, [](Decision) {});
  scheduler.run();
  EXPECT_EQ(rm.stats().evaluated, 2u);
  EXPECT_EQ(rm.stats().approved, 1u);
  EXPECT_EQ(rm.stats().denied, 1u);
}

TEST_F(ResourceFixture, WithdrawConsumerRemovesItsDemands) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  rm.register_profile(profile_for(1));
  const ConsumerToken fast = register_consumer(auth, "fast");
  const ConsumerToken slow = register_consumer(auth, "slow");

  (void)rm.evaluate_now(fast, {1, 0}, UpdateAction::kSetIntervalMs, 200);
  (void)rm.evaluate_now(slow, {1, 0}, UpdateAction::kSetIntervalMs, 5000);
  EXPECT_EQ(rm.believed_interval({1, 0}), 200u);  // fast demand rules

  // The fast consumer departs; mediation must stop honouring it.
  EXPECT_EQ(rm.withdraw_consumer(fast), 1u);
  const Decision d = rm.evaluate_now(slow, {1, 0}, UpdateAction::kSetIntervalMs, 5000);
  EXPECT_EQ(d.effective_value, 5000u);
}

TEST_F(ResourceFixture, WithdrawDropsPrearms) {
  ResourceManager rm = make(ConflictPolicy::kMostDemandingWins);
  const ConsumerToken token = register_consumer(auth, "app");
  rm.prearm(token, {1, 0}, UpdateAction::kSetIntervalMs, 500);
  rm.withdraw_consumer(token);
  rm.evaluate(token, {1, 0}, UpdateAction::kSetIntervalMs, 500, [](Decision) {});
  scheduler.run();
  EXPECT_EQ(rm.stats().prearm_hits, 0u);
}

TEST_F(ResourceFixture, PolicyNamesComplete) {
  EXPECT_EQ(to_string(ConflictPolicy::kMostDemandingWins), "most-demanding-wins");
  EXPECT_EQ(to_string(ConflictPolicy::kPriorityWins), "priority-wins");
  EXPECT_EQ(to_string(ConflictPolicy::kMerge), "merge");
  EXPECT_EQ(to_string(ConflictPolicy::kRejectConflicts), "reject-conflicts");
}

}  // namespace
}  // namespace garnet::core
