// Consumer-library behaviour against a full Runtime instance.
#include "core/consumer.hpp"

#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

Runtime::Config quiet_config() {
  garnet::Runtime::Config config;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

using garnet::Runtime;

struct ConsumerFixture : ::testing::Test {
  Runtime runtime{quiet_config()};

  ConsumerFixture() {
    runtime.deploy_receivers(4, 400);
    runtime.deploy_transmitters(4, 500);
  }

  wireless::SensorNode& deploy_static_sensor(SensorId id, std::uint32_t interval_ms = 100) {
    wireless::SensorNode::Config config;
    config.id = id;
    config.capabilities.receive_capable = true;
    wireless::StreamSpec spec;
    spec.interval_ms = interval_ms;
    spec.constraints = {.min_interval_ms = 20, .max_interval_ms = 60000, .max_payload = 128};
    config.streams.push_back(spec);
    return runtime.deploy_sensor(
        std::move(config),
        std::make_unique<sim::StaticMobility>(runtime.field().area().center()));
  }
};

TEST_F(ConsumerFixture, ProvisionInstallsIdentity) {
  Consumer consumer(runtime.bus(), "consumer.app");
  const ConsumerIdentity identity = runtime.provision(consumer, "app");
  EXPECT_EQ(consumer.identity().token, identity.token);
  EXPECT_EQ(identity.address, consumer.address());
  EXPECT_TRUE(runtime.auth().verify(identity.token).has_value());
}

TEST_F(ConsumerFixture, SubscribeAndReceive) {
  auto& sensor = deploy_static_sensor(1);
  Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");

  std::vector<Delivery> got;
  consumer.set_data_handler([&](const Delivery& d) { got.push_back(d); });
  bool subscribed = false;
  consumer.subscribe(StreamPattern::all_of(1), [&](auto result) {
    ASSERT_TRUE(result.ok());
    subscribed = true;
  });
  runtime.run_for(Duration::millis(10));
  ASSERT_TRUE(subscribed);

  sensor.start();
  runtime.run_for(Duration::seconds(2));
  EXPECT_GT(got.size(), 10u);
  EXPECT_EQ(consumer.received(), got.size());
  EXPECT_EQ(got[0].message.stream_id.sensor, 1u);
  EXPECT_GT(consumer.delivery_latency().count(), 0u);
}

TEST_F(ConsumerFixture, UnsubscribeStopsDeliveries) {
  auto& sensor = deploy_static_sensor(1);
  sensor.start();
  Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");

  std::optional<SubscriptionId> sub;
  consumer.subscribe(StreamPattern::all_of(1), [&](auto result) { sub = result.value(); });
  runtime.run_for(Duration::seconds(1));
  ASSERT_TRUE(sub.has_value());
  const std::uint64_t before = consumer.received();
  EXPECT_GT(before, 0u);

  consumer.unsubscribe(*sub);
  runtime.run_for(Duration::millis(50));  // let the unsubscribe land
  const std::uint64_t at_unsub = consumer.received();
  runtime.run_for(Duration::seconds(1));
  EXPECT_EQ(consumer.received(), at_unsub);
}

TEST_F(ConsumerFixture, RequestUpdateReachesSensor) {
  auto& sensor = deploy_static_sensor(1, 1000);
  sensor.start();
  Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");

  std::optional<Admission> admission;
  consumer.request_update({1, 0}, UpdateAction::kSetIntervalMs, 200,
                          [&](std::uint32_t request_id, Admission a, std::uint32_t effective) {
                            EXPECT_NE(request_id, 0u);
                            EXPECT_EQ(effective, 200u);
                            admission = a;
                          });
  runtime.run_for(Duration::seconds(1));
  EXPECT_EQ(admission, Admission::kApproved);
  EXPECT_EQ(sensor.stream(0)->interval_ms, 200u);
  EXPECT_EQ(sensor.updates_applied(), 1u);
}

TEST_F(ConsumerFixture, AckFlowsBackThroughDataPath) {
  auto& sensor = deploy_static_sensor(1, 100);
  sensor.start();
  Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(StreamPattern::all_of(1));

  consumer.request_update({1, 0}, UpdateAction::kSetMode, 7, {});
  runtime.run_for(Duration::seconds(2));

  // The sensor embedded the ack in a data message; dispatch observed it;
  // actuation matched it.
  EXPECT_EQ(runtime.actuation().stats().acked, 1u);
  EXPECT_EQ(runtime.actuation().pending_count(), 0u);
  EXPECT_GT(runtime.dispatch().stats().acks_observed, 0u);
}

TEST_F(ConsumerFixture, PublishDerivedStream) {
  Consumer producer(runtime.bus(), "consumer.producer");
  Consumer subscriber(runtime.bus(), "consumer.subscriber");
  runtime.provision(producer, "producer");
  runtime.provision(subscriber, "subscriber");

  const StreamId derived = runtime.create_derived_stream("averages", "derived-avg");
  std::vector<Delivery> got;
  subscriber.set_data_handler([&](const Delivery& d) { got.push_back(d); });
  subscriber.subscribe(StreamPattern::exact(derived));
  runtime.run_for(Duration::millis(10));

  producer.publish_derived(derived, util::to_bytes("avg=3.5"),
                           static_cast<std::uint8_t>(HeaderFlag::kFused));
  producer.publish_derived(derived, util::to_bytes("avg=3.6"));
  runtime.run_for(Duration::millis(50));

  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].message.header.has(HeaderFlag::kDerived));
  EXPECT_TRUE(got[0].message.header.has(HeaderFlag::kFused));
  EXPECT_FALSE(got[1].message.header.has(HeaderFlag::kFused));
  EXPECT_EQ(got[0].message.sequence, 0u);
  EXPECT_EQ(got[1].message.sequence, 1u);
}

TEST_F(ConsumerFixture, ReportStateReachesCoordinator) {
  Consumer consumer(runtime.bus(), "consumer.app");
  const ConsumerIdentity identity = runtime.provision(consumer, "app");
  consumer.report_state(42);
  runtime.run_for(Duration::millis(10));
  ASSERT_EQ(runtime.coordinator().view().size(), 1u);
  EXPECT_EQ(runtime.coordinator().view().at(identity.id).state, 42u);
}

TEST_F(ConsumerFixture, LocationHintReachesService) {
  Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.send_location_hint({5, 123.0, 45.0, 20.0});
  runtime.run_for(Duration::millis(10));
  const auto estimate = runtime.location().estimate(5);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(estimate->position.x, 123.0, 1e-9);
}

TEST_F(ConsumerFixture, UnprovisionedConsumerCannotSubscribe) {
  Consumer consumer(runtime.bus(), "consumer.rogue");
  std::optional<bool> ok;
  consumer.subscribe(StreamPattern::everything(), [&](auto result) { ok = result.ok(); });
  runtime.run_for(Duration::millis(100));
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

}  // namespace
}  // namespace garnet::core
