// Per-subscription quality of service (paper §1: "mechanisms to support
// quality of service"): rate caps and staleness bounds applied by the
// Dispatching Service, per subscription, invisible to other consumers.
#include <gtest/gtest.h>

#include "core/dispatch.hpp"
#include "sim/scheduler.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

struct QosFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  StreamCatalog catalog;
  DispatchingService dispatch{bus, auth, catalog};

  struct Sink {
    net::Address address;
    std::uint64_t received = 0;
    Sink(net::MessageBus& bus, const std::string& name) {
      address = bus.add_endpoint(name, [this](net::Envelope e) {
        if (e.type == kDataDelivery) ++received;
      });
    }
  };

  SequenceNo next_seq = 0;
  void publish_at(SimTime when, StreamId id = {1, 0}) {
    scheduler.schedule_at(when, [this, id] {
      DataMessage msg;
      msg.stream_id = id;
      msg.sequence = next_seq++;
      dispatch.on_filtered(msg, scheduler.now());
    });
  }
};

TEST_F(QosFixture, RateCapSuppressesExcessDeliveries) {
  Sink fast(bus, "fast");
  Sink capped(bus, "capped");
  dispatch.subscribe(fast.address, StreamPattern::exact({1, 0}));
  dispatch.subscribe(capped.address, StreamPattern::exact({1, 0}),
                     {.min_interval_ms = 1000, .max_age_ms = 0});

  // 100 messages at 100ms spacing = 10 virtual seconds.
  for (int i = 0; i < 100; ++i) publish_at(SimTime{} + Duration::millis(100 * i));
  scheduler.run();

  EXPECT_EQ(fast.received, 100u);
  // Capped at 1Hz over 10s: ~10 deliveries.
  EXPECT_GE(capped.received, 9u);
  EXPECT_LE(capped.received, 11u);
  EXPECT_GT(dispatch.subscriptions().qos_stats().suppressed_rate, 80u);
}

TEST_F(QosFixture, StalenessBoundDropsOldMessages) {
  Sink fresh_only(bus, "fresh");
  dispatch.subscribe(fresh_only.address, StreamPattern::exact({1, 0}),
                     {.min_interval_ms = 0, .max_age_ms = 50});

  // A fresh message (age 0) and a stale one (heard 200ms ago).
  DataMessage msg;
  msg.stream_id = {1, 0};
  msg.sequence = 0;
  dispatch.on_filtered(msg, scheduler.now());
  scheduler.run_for(Duration::millis(200));
  msg.sequence = 1;
  dispatch.on_filtered(msg, scheduler.now() - Duration::millis(200));
  scheduler.run();

  EXPECT_EQ(fresh_only.received, 1u);
  EXPECT_EQ(dispatch.subscriptions().qos_stats().suppressed_stale, 1u);
}

TEST_F(QosFixture, QosIsPerSubscriptionNotPerStream) {
  Sink a(bus, "a");
  Sink b(bus, "b");
  dispatch.subscribe(a.address, StreamPattern::exact({1, 0}),
                     {.min_interval_ms = 1000, .max_age_ms = 0});
  dispatch.subscribe(b.address, StreamPattern::exact({1, 0}),
                     {.min_interval_ms = 300, .max_age_ms = 0});

  for (int i = 0; i < 30; ++i) publish_at(SimTime{} + Duration::millis(100 * i));
  scheduler.run();

  // 3 virtual seconds of traffic: ~3 for the 1Hz cap, ~10 for 300ms cap.
  EXPECT_LT(a.received, b.received);
  EXPECT_GE(a.received, 2u);
  EXPECT_GE(b.received, 8u);
}

TEST_F(QosFixture, SuppressedDeliveryIsNotOrphaned) {
  Sink orphanage(bus, "orphanage");
  Sink capped(bus, "capped");
  dispatch.set_orphan_sink(orphanage.address);
  dispatch.subscribe(capped.address, StreamPattern::exact({1, 0}),
                     {.min_interval_ms = 10000, .max_age_ms = 0});

  // Burst of 5 messages: first delivered, rest rate-suppressed — but the
  // stream is claimed, so nothing may reach the Orphanage.
  for (int i = 0; i < 5; ++i) publish_at(SimTime{} + Duration::millis(10 * i));
  scheduler.run();

  EXPECT_EQ(capped.received, 1u);
  EXPECT_EQ(orphanage.received, 0u);
  EXPECT_EQ(dispatch.stats().orphaned, 0u);
}

TEST_F(QosFixture, ZeroOptionsDeliverEverything) {
  Sink all(bus, "all");
  dispatch.subscribe(all.address, StreamPattern::exact({1, 0}), {});
  for (int i = 0; i < 20; ++i) publish_at(SimTime{} + Duration::millis(i));
  scheduler.run();
  EXPECT_EQ(all.received, 20u);
  EXPECT_EQ(dispatch.subscriptions().qos_stats().suppressed_rate, 0u);
}

TEST_F(QosFixture, RateCapCountsPerSubscriptionClock) {
  // Two streams, one capped subscription per stream: caps do not couple.
  Sink s(bus, "s");
  dispatch.subscribe(s.address, StreamPattern::exact({1, 0}),
                     {.min_interval_ms = 1000, .max_age_ms = 0});
  dispatch.subscribe(s.address, StreamPattern::exact({2, 0}),
                     {.min_interval_ms = 1000, .max_age_ms = 0});

  publish_at(SimTime{} + Duration::millis(0), {1, 0});
  publish_at(SimTime{} + Duration::millis(10), {2, 0});  // own clock: delivered
  scheduler.run();
  EXPECT_EQ(s.received, 2u);
}

TEST_F(QosFixture, SubscribeWithQosViaRpc) {
  Sink sink(bus, "consumer-endpoint");
  const auto identity = auth.register_consumer("c", sink.address);
  ASSERT_TRUE(identity.ok());

  net::RpcNode caller(bus, "caller");
  util::ByteWriter w(24);
  w.u64(identity.value().token);
  w.u64(StreamPattern::exact({1, 0}).packed());
  w.u32(1000);  // min interval
  w.u32(0);     // no staleness bound
  bool done = false;
  caller.call(dispatch.address(), DispatchingService::kSubscribe, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                done = true;
              });
  scheduler.run();
  ASSERT_TRUE(done);

  for (int i = 0; i < 20; ++i) publish_at(scheduler.now() + Duration::millis(100 * i));
  scheduler.run();
  EXPECT_LE(sink.received, 3u);  // ~2s of traffic at 1Hz cap
  EXPECT_GE(sink.received, 1u);
}

}  // namespace
}  // namespace garnet::core
