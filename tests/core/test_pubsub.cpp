#include "core/pubsub.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

TEST(StreamPattern, ExactMatchesOnlyItself) {
  const auto p = StreamPattern::exact({5, 2});
  EXPECT_TRUE(p.matches({5, 2}));
  EXPECT_FALSE(p.matches({5, 3}));
  EXPECT_FALSE(p.matches({6, 2}));
  EXPECT_TRUE(p.is_exact());
}

TEST(StreamPattern, SensorWildcardMatchesAllStreams) {
  const auto p = StreamPattern::all_of(5);
  EXPECT_TRUE(p.matches({5, 0}));
  EXPECT_TRUE(p.matches({5, 255}));
  EXPECT_FALSE(p.matches({6, 0}));
  EXPECT_FALSE(p.is_exact());
}

TEST(StreamPattern, EverythingMatchesEverything) {
  const auto p = StreamPattern::everything();
  EXPECT_TRUE(p.matches({0, 0}));
  EXPECT_TRUE(p.matches({kMaxSensorId, 255}));
}

TEST(StreamPattern, PackedRoundTrip) {
  for (const auto p : {StreamPattern::exact({123, 45}), StreamPattern::all_of(99),
                       StreamPattern::everything(), StreamPattern{std::nullopt, 7}}) {
    const auto back = StreamPattern::from_packed(p.packed());
    EXPECT_EQ(back.sensor, p.sensor);
    EXPECT_EQ(back.stream, p.stream);
  }
}

struct TableFixture : ::testing::Test {
  SubscriptionTable table;
  std::vector<net::Address> out;

  std::vector<net::Address> collect(StreamId id) {
    out.clear();
    table.collect(id, out);
    return out;
  }
};

TEST_F(TableFixture, ExactSubscriptionRouting) {
  table.add(net::Address{10}, StreamPattern::exact({1, 0}));
  table.add(net::Address{20}, StreamPattern::exact({2, 0}));
  EXPECT_EQ(collect({1, 0}), (std::vector<net::Address>{{10}}));
  EXPECT_EQ(collect({2, 0}), (std::vector<net::Address>{{20}}));
  EXPECT_TRUE(collect({3, 0}).empty());
}

TEST_F(TableFixture, WildcardRouting) {
  table.add(net::Address{10}, StreamPattern::all_of(1));
  EXPECT_EQ(collect({1, 7}).size(), 1u);
  EXPECT_TRUE(collect({2, 7}).empty());
}

TEST_F(TableFixture, ExactAndWildcardDeduplicated) {
  table.add(net::Address{10}, StreamPattern::exact({1, 0}));
  table.add(net::Address{10}, StreamPattern::all_of(1));
  EXPECT_EQ(collect({1, 0}).size(), 1u);  // one copy despite two matches
}

TEST_F(TableFixture, MultipleConsumersFanOut) {
  for (std::uint32_t a = 1; a <= 5; ++a) {
    table.add(net::Address{a}, StreamPattern::exact({1, 0}));
  }
  EXPECT_EQ(collect({1, 0}).size(), 5u);
}

TEST_F(TableFixture, RemoveBySubscriptionId) {
  const SubscriptionId id = table.add(net::Address{10}, StreamPattern::exact({1, 0}));
  EXPECT_TRUE(table.remove(id));
  EXPECT_FALSE(table.remove(id));  // idempotent failure
  EXPECT_TRUE(collect({1, 0}).empty());
  EXPECT_EQ(table.size(), 0u);
}

TEST_F(TableFixture, RemoveWildcardById) {
  const SubscriptionId id = table.add(net::Address{10}, StreamPattern::everything());
  EXPECT_TRUE(table.remove(id));
  EXPECT_TRUE(collect({1, 0}).empty());
}

TEST_F(TableFixture, RemoveConsumerDropsAllItsSubscriptions) {
  table.add(net::Address{10}, StreamPattern::exact({1, 0}));
  table.add(net::Address{10}, StreamPattern::all_of(2));
  table.add(net::Address{20}, StreamPattern::exact({1, 0}));
  EXPECT_EQ(table.remove_consumer(net::Address{10}), 2u);
  EXPECT_EQ(collect({1, 0}), (std::vector<net::Address>{{20}}));
  EXPECT_TRUE(collect({2, 5}).empty());
}

TEST_F(TableFixture, AnyoneWants) {
  EXPECT_FALSE(table.anyone_wants({1, 0}));
  table.add(net::Address{10}, StreamPattern::all_of(1));
  EXPECT_TRUE(table.anyone_wants({1, 9}));
  EXPECT_FALSE(table.anyone_wants({2, 0}));
}

TEST_F(TableFixture, SizeTracksAddsAndRemoves) {
  const auto a = table.add(net::Address{1}, StreamPattern::exact({1, 0}));
  table.add(net::Address{2}, StreamPattern::everything());
  EXPECT_EQ(table.size(), 2u);
  table.remove(a);
  EXPECT_EQ(table.size(), 1u);
}

TEST_F(TableFixture, CollectAppendsWithoutClobbering) {
  table.add(net::Address{10}, StreamPattern::exact({1, 0}));
  out.push_back(net::Address{99});  // pre-existing content preserved
  table.collect({1, 0}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], net::Address{99});
}

}  // namespace
}  // namespace garnet::core
