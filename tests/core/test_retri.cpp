#include "core/retri.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

TEST(Retri, IdsFitWidth) {
  RetriAllocator alloc(8, util::Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(alloc.begin(), 256u);
  }
}

TEST(Retri, EndReleasesId) {
  RetriAllocator alloc(16, util::Rng(2));
  const std::uint32_t id = alloc.begin();
  EXPECT_EQ(alloc.active(), 1u);
  alloc.end(id);
  EXPECT_EQ(alloc.active(), 0u);
}

TEST(Retri, EndUnknownIdHarmless) {
  RetriAllocator alloc(16, util::Rng(2));
  alloc.end(12345);
  EXPECT_EQ(alloc.active(), 0u);
}

TEST(Retri, SmallSpaceCollides) {
  // 4-bit ids, 64 concurrent transactions: collisions are certain.
  RetriAllocator alloc(4, util::Rng(3));
  for (int i = 0; i < 64; ++i) (void)alloc.begin();
  EXPECT_GT(alloc.stats().collisions, 0u);
  EXPECT_EQ(alloc.stats().begun, 64u);
}

TEST(Retri, LargeSpaceRarelyCollides) {
  RetriAllocator alloc(32, util::Rng(4));
  for (int i = 0; i < 1000; ++i) (void)alloc.begin();
  EXPECT_EQ(alloc.stats().collisions, 0u);  // 1000 of 4 billion
}

TEST(Retri, CollisionRateTracksBirthdayBound) {
  // With k-bit ids and n active transactions, a new begin() collides with
  // probability ~ 1 - (1 - 2^-k)^n. Hold 32 transactions open in an
  // 8-bit space and measure the empirical rate over many trials.
  util::Rng seeder(5);
  int collisions = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    RetriAllocator alloc(8, seeder.fork());
    for (int i = 0; i < 32; ++i) (void)alloc.begin();
    const auto before = alloc.stats().collisions;
    (void)alloc.begin();
    collisions += alloc.stats().collisions > before ? 1 : 0;
  }
  const double empirical = static_cast<double>(collisions) / trials;
  // Active set is ~32 (minus internal collisions); expected ~ 0.118.
  const double expected = RetriAllocator::expected_collision_probability(8, 32);
  EXPECT_NEAR(empirical, expected, 0.03);
}

TEST(Retri, AnalyticProbabilityMonotone) {
  EXPECT_LT(RetriAllocator::expected_collision_probability(16, 10),
            RetriAllocator::expected_collision_probability(8, 10));
  EXPECT_LT(RetriAllocator::expected_collision_probability(8, 10),
            RetriAllocator::expected_collision_probability(8, 100));
  EXPECT_EQ(RetriAllocator::expected_collision_probability(8, 0), 0.0);
}

TEST(Retri, DeterministicForSeed) {
  RetriAllocator a(12, util::Rng(9));
  RetriAllocator b(12, util::Rng(9));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.begin(), b.begin());
}

}  // namespace
}  // namespace garnet::core
