// Fixed-network payload codecs (docs/PROTOCOL.md §3).
#include "core/wire_types.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

TEST(DeliveryCodec, RoundTrip) {
  Delivery delivery;
  delivery.message.stream_id = {42, 3};
  delivery.message.sequence = 999;
  delivery.message.payload = util::to_bytes("payload");
  delivery.first_heard = SimTime{} + Duration::millis(1234);

  const auto decoded = decode_delivery(encode(delivery));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().first_heard, delivery.first_heard);
  EXPECT_EQ(decoded.value().message.stream_id, delivery.message.stream_id);
  EXPECT_EQ(decoded.value().message.payload, delivery.message.payload);
}

TEST(DeliveryCodec, PreservesAckExtension) {
  Delivery delivery;
  delivery.message.stream_id = {1, 0};
  delivery.message.header.set(HeaderFlag::kAckPresent);
  delivery.message.ack_request_id = 777;
  const auto decoded = decode_delivery(encode(delivery));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().message.ack_request_id, 777u);
}

TEST(DeliveryCodec, TruncationFails) {
  Delivery delivery;
  delivery.message.stream_id = {1, 0};
  const util::Bytes wire = encode(delivery);
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    EXPECT_FALSE(decode_delivery(util::BytesView(wire).first(keep)).ok()) << keep;
  }
}

TEST(DeliveryCodec, InnerCorruptionCaughtByMessageChecksum) {
  Delivery delivery;
  delivery.message.stream_id = {1, 0};
  delivery.message.payload = util::to_bytes("abc");
  util::Bytes wire = encode(delivery);
  wire[12] ^= std::byte{0x04};  // inside the embedded message
  EXPECT_FALSE(decode_delivery(wire).ok());
}

TEST(StateChangeCodec, RoundTrip) {
  const StateChange change{0xDEADBEEFCAFEF00Dull, 42};
  const auto decoded = decode_state_change(encode(change));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().consumer_token, change.consumer_token);
  EXPECT_EQ(decoded.value().state, change.state);
}

TEST(StateChangeCodec, TruncationFails) {
  const util::Bytes wire = encode(StateChange{1, 2});
  EXPECT_FALSE(decode_state_change(util::BytesView(wire).first(wire.size() - 1)).ok());
  EXPECT_FALSE(decode_state_change({}).ok());
}

TEST(LocationHintCodec, RoundTrip) {
  const LocationHint hint{123456, -12.5, 9000.25, 33.0};
  const auto decoded = decode_location_hint(encode(hint));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sensor, hint.sensor);
  EXPECT_DOUBLE_EQ(decoded.value().x, hint.x);
  EXPECT_DOUBLE_EQ(decoded.value().y, hint.y);
  EXPECT_DOUBLE_EQ(decoded.value().radius_m, hint.radius_m);
}

TEST(LocationHintCodec, MaxSensorId) {
  const LocationHint hint{kMaxSensorId, 0, 0, 1};
  const auto decoded = decode_location_hint(encode(hint));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sensor, kMaxSensorId);
}

TEST(MessageTypes, DistinctTags) {
  EXPECT_NE(kDataDelivery, kStateChange);
  EXPECT_NE(kStateChange, kLocationHint);
  EXPECT_NE(kLocationHint, kDerivedPublish);
  EXPECT_GE(static_cast<std::uint16_t>(kDataDelivery),
            static_cast<std::uint16_t>(net::MessageType::kAppBase));
}

}  // namespace
}  // namespace garnet::core
