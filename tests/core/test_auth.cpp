#include "core/auth.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

TEST(Auth, RegisterIssuesVerifiableToken) {
  AuthService auth({});
  const auto identity = auth.register_consumer("flood-watch", net::Address{5});
  ASSERT_TRUE(identity.ok());
  EXPECT_NE(identity.value().token, 0u);

  const auto verified = auth.verify(identity.value().token);
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(verified->name, "flood-watch");
  EXPECT_EQ(verified->address, net::Address{5});
}

TEST(Auth, DuplicateNameRejected) {
  AuthService auth({});
  ASSERT_TRUE(auth.register_consumer("app", net::Address{1}).ok());
  const auto second = auth.register_consumer("app", net::Address{2});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error(), AuthError::kNameTaken);
}

TEST(Auth, UnknownTokenFailsVerification) {
  AuthService auth({});
  EXPECT_FALSE(auth.verify(0xDEAD).has_value());
}

TEST(Auth, DefaultTrustApplied) {
  AuthService auth({.secret_seed = 1, .default_trust = TrustLevel::kUntrusted});
  const auto identity = auth.register_consumer("guest", net::Address{1});
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value().trust, TrustLevel::kUntrusted);
}

TEST(Auth, TrustGrantOverridesDefault) {
  AuthService auth({});
  auth.grant_trust("ops-console", TrustLevel::kTrusted);
  const auto identity = auth.register_consumer("ops-console", net::Address{1});
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value().trust, TrustLevel::kTrusted);
}

TEST(Auth, TokensDifferAcrossConsumers) {
  AuthService auth({});
  const auto a = auth.register_consumer("a", net::Address{1});
  const auto b = auth.register_consumer("b", net::Address{2});
  EXPECT_NE(a.value().token, b.value().token);
}

TEST(Auth, TokensDifferAcrossSecrets) {
  AuthService auth1({.secret_seed = 1, .default_trust = TrustLevel::kStandard});
  AuthService auth2({.secret_seed = 2, .default_trust = TrustLevel::kStandard});
  const auto t1 = auth1.register_consumer("same-name", net::Address{1});
  const auto t2 = auth2.register_consumer("same-name", net::Address{1});
  EXPECT_NE(t1.value().token, t2.value().token);
}

TEST(Auth, RevokeInvalidatesToken) {
  AuthService auth({});
  const auto identity = auth.register_consumer("app", net::Address{1});
  ASSERT_TRUE(auth.revoke(identity.value().token));
  EXPECT_FALSE(auth.verify(identity.value().token).has_value());
  EXPECT_FALSE(auth.revoke(identity.value().token));
}

TEST(Auth, NameReusableAfterRevocation) {
  AuthService auth({});
  const auto first = auth.register_consumer("app", net::Address{1});
  auth.revoke(first.value().token);
  const auto second = auth.register_consumer("app", net::Address{2});
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().id, first.value().id);
}

TEST(Auth, PriorityRecorded) {
  AuthService auth({});
  const auto identity = auth.register_consumer("urgent", net::Address{1}, 250);
  EXPECT_EQ(identity.value().priority, 250);
}

TEST(Auth, ConsumerCount) {
  AuthService auth({});
  EXPECT_EQ(auth.consumer_count(), 0u);
  ASSERT_TRUE(auth.register_consumer("a", net::Address{1}).ok());
  ASSERT_TRUE(auth.register_consumer("b", net::Address{2}).ok());
  EXPECT_EQ(auth.consumer_count(), 2u);
}

TEST(Auth, TrustLevelToString) {
  EXPECT_EQ(to_string(TrustLevel::kUntrusted), "untrusted");
  EXPECT_EQ(to_string(TrustLevel::kStandard), "standard");
  EXPECT_EQ(to_string(TrustLevel::kTrusted), "trusted");
}

}  // namespace
}  // namespace garnet::core
