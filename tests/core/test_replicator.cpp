// Message Replicator selection logic: targeted transmitter subsets from
// location estimates, flood fallback, and degraded-estimate handling.
#include "core/replicator.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace garnet::core {
namespace {

using util::Duration;

struct ReplicatorFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  LocationService location{bus, auth, {}};
  obs::MetricsRegistry registry;

  wireless::RadioMedium::Config perfect_radio() {
    wireless::RadioMedium::Config config;
    config.base_loss = 0.0;
    config.edge_loss = 0.0;
    return config;
  }
  wireless::RadioMedium medium{scheduler, perfect_radio(), util::Rng(1)};
  MessageReplicator replicator{medium, location, {}};

  std::uint64_t counter(const char* name) { return registry.snapshot().counter(name); }

  ReplicatorFixture() {
    replicator.set_metrics(registry);
    // 4 transmitters across a 1km strip, 150m range each.
    for (wireless::TransmitterId id = 1; id <= 4; ++id) {
      medium.add_transmitter({id, {250.0 * static_cast<double>(id) - 125.0, 0}, 150});
    }
    // Matching receivers so the location service can infer.
    std::vector<wireless::Receiver> receivers;
    for (wireless::ReceiverId id = 1; id <= 4; ++id) {
      receivers.push_back({id, {250.0 * static_cast<double>(id) - 125.0, 0}, 150});
    }
    location.set_receiver_layout(receivers);
  }

  void observe(SensorId sensor, wireless::ReceiverId receiver, double rssi = -40.0) {
    for (int i = 0; i < 3; ++i) {  // 3 distinct copies max confidence
      location.observe(ReceptionEvent{sensor, receiver, rssi, scheduler.now()});
    }
  }
};

TEST_F(ReplicatorFixture, FloodsWithoutEstimate) {
  const auto report = replicator.send(7, util::Bytes(8));
  EXPECT_FALSE(report.targeted);
  EXPECT_EQ(report.transmitters_used, 4u);
  EXPECT_EQ(counter("garnet.replicator.flooded_sends"), 1u);
}

TEST_F(ReplicatorFixture, TargetsSubsetWithEstimate) {
  observe(7, 1);
  observe(7, 1);  // heard only by receiver 1 at x=125
  const auto report = replicator.send(7, util::Bytes(8));
  EXPECT_TRUE(report.targeted);
  EXPECT_LT(report.transmitters_used, 4u);
  EXPECT_GE(report.transmitters_used, 1u);
  EXPECT_EQ(counter("garnet.replicator.targeted_sends"), 1u);
}

TEST_F(ReplicatorFixture, LowConfidenceEstimateTreatedAsAbsent) {
  // A single stale-ish observation below the confidence threshold.
  MessageReplicator picky(medium, location,
                          {.min_confidence = 0.9, .margin_m = 25.0});
  location.observe(ReceptionEvent{7, 1, -40.0, scheduler.now()});  // conf 1/3
  const auto report = picky.send(7, util::Bytes(8));
  EXPECT_FALSE(report.targeted);
  EXPECT_EQ(report.transmitters_used, 4u);
}

TEST_F(ReplicatorFixture, EmptySelectionDegradesToFlood) {
  // Estimate far outside every transmitter's reach: replicator must
  // flood rather than silently send nothing.
  location.hint({7, 5000.0, 5000.0, 10.0}, scheduler.now());
  const auto report = replicator.send(7, util::Bytes(8));
  EXPECT_FALSE(report.targeted);
  EXPECT_EQ(report.transmitters_used, 4u);
  EXPECT_EQ(counter("garnet.replicator.flooded_sends"), 1u);
}

TEST_F(ReplicatorFixture, WideUncertaintySelectsMoreTransmitters) {
  location.hint({7, 500.0, 0.0, 30.0}, scheduler.now());
  const auto tight = replicator.send(7, util::Bytes(8));

  location.hint({8, 500.0, 0.0, 400.0}, scheduler.now());
  const auto wide = replicator.send(8, util::Bytes(8));

  EXPECT_TRUE(tight.targeted);
  EXPECT_TRUE(wide.targeted);
  EXPECT_GT(wide.transmitters_used, tight.transmitters_used);
}

TEST_F(ReplicatorFixture, StatsAccumulateAcrossSends) {
  observe(7, 2);
  (void)replicator.send(7, util::Bytes(8));
  (void)replicator.send(9, util::Bytes(8));  // unknown: flood
  EXPECT_EQ(counter("garnet.replicator.sends"), 2u);
  EXPECT_EQ(counter("garnet.replicator.targeted_sends"), 1u);
  EXPECT_EQ(counter("garnet.replicator.flooded_sends"), 1u);
  EXPECT_GT(counter("garnet.replicator.transmitter_activations"), 4u);
}

TEST_F(ReplicatorFixture, CopiesScheduledCountsEndpoints) {
  medium.add_downlink_endpoint({7, [] { return sim::Vec2{125, 0}; },
                                [](util::BytesView) {}});
  observe(7, 1);
  const auto report = replicator.send(7, util::Bytes(8));
  EXPECT_GE(report.copies_scheduled, 1u);
  EXPECT_EQ(counter("garnet.replicator.copies_scheduled"), report.copies_scheduled);
}

}  // namespace
}  // namespace garnet::core
