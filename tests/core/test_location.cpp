#include "core/location.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

struct LocationFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  LocationService location{bus, auth, {}};

  LocationFixture() {
    std::vector<wireless::Receiver> receivers = {
        {1, {0, 0}, 100},
        {2, {200, 0}, 100},
        {3, {0, 200}, 100},
        {4, {200, 200}, 100},
    };
    location.set_receiver_layout(receivers);
  }

  void observe(SensorId sensor, wireless::ReceiverId receiver, double rssi) {
    location.observe(ReceptionEvent{sensor, receiver, rssi, scheduler.now()});
  }
};

TEST_F(LocationFixture, NoEvidenceNoEstimate) {
  EXPECT_FALSE(location.estimate(1).has_value());
}

TEST_F(LocationFixture, SingleReceiverEstimateCentersOnIt) {
  observe(1, 2, -40.0);
  const auto est = location.estimate(1);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->position.x, 200.0, 1e-6);
  EXPECT_NEAR(est->position.y, 0.0, 1e-6);
  EXPECT_GE(est->radius_m, LocationService::Config{}.base_radius_m);
  EXPECT_EQ(est->source, LocationEstimate::Source::kInferred);
}

TEST_F(LocationFixture, MultipleReceiversTriangulate) {
  // Equal strength at receivers 1 and 2 places the sensor between them.
  observe(1, 1, -40.0);
  observe(1, 2, -40.0);
  const auto est = location.estimate(1);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->position.x, 100.0, 1.0);
  EXPECT_NEAR(est->position.y, 0.0, 1.0);
}

TEST_F(LocationFixture, StrongerSignalPullsCentroid) {
  observe(1, 1, -30.0);  // 10 dB stronger => 10x weight
  observe(1, 2, -40.0);
  const auto est = location.estimate(1);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->position.x, 50.0);  // pulled toward receiver 1 at x=0
}

TEST_F(LocationFixture, ConfidenceGrowsWithReceivers) {
  observe(1, 1, -40.0);
  const double c1 = location.estimate(1)->confidence;
  observe(1, 2, -40.0);
  const double c2 = location.estimate(1)->confidence;
  observe(1, 3, -40.0);
  const double c3 = location.estimate(1)->confidence;
  EXPECT_LT(c1, c2);
  EXPECT_LT(c2, c3);
  EXPECT_DOUBLE_EQ(c3, 1.0);  // full_confidence_receivers = 3
}

TEST_F(LocationFixture, ObservationsAgeOut) {
  observe(1, 1, -40.0);
  ASSERT_TRUE(location.estimate(1).has_value());
  scheduler.run_until(SimTime{} + Duration::seconds(60));  // window is 15s
  EXPECT_FALSE(location.estimate(1).has_value());
}

TEST_F(LocationFixture, UnknownReceiverIgnored) {
  observe(1, 99, -40.0);
  EXPECT_FALSE(location.estimate(1).has_value());
  EXPECT_EQ(location.stats().observations, 0u);
}

TEST_F(LocationFixture, HintProvidesEstimateWithoutObservations) {
  location.hint({1, 42.0, 17.0, 30.0}, scheduler.now());
  const auto est = location.estimate(1);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->source, LocationEstimate::Source::kHint);
  EXPECT_NEAR(est->position.x, 42.0, 1e-9);
  EXPECT_NEAR(est->radius_m, 30.0, 1e-9);
}

TEST_F(LocationFixture, HintExpiresAfterTtl) {
  location.hint({1, 42.0, 17.0, 30.0}, scheduler.now());
  scheduler.run_until(SimTime{} + Duration::seconds(120));  // ttl is 60s
  EXPECT_FALSE(location.estimate(1).has_value());
}

TEST_F(LocationFixture, HintAndInferenceFuse) {
  observe(1, 1, -40.0);
  observe(1, 2, -40.0);
  observe(1, 3, -40.0);
  location.hint({1, 100.0, 0.0, 20.0}, scheduler.now());
  const auto est = location.estimate(1);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->source, LocationEstimate::Source::kFused);
  // Fused radius takes the tighter of the two.
  EXPECT_LE(est->radius_m, 20.0);
}

TEST_F(LocationFixture, SensorsTrackedIndependently) {
  observe(1, 1, -40.0);
  observe(2, 4, -40.0);
  const auto est1 = location.estimate(1);
  const auto est2 = location.estimate(2);
  ASSERT_TRUE(est1 && est2);
  EXPECT_NEAR(est1->position.x, 0.0, 1e-6);
  EXPECT_NEAR(est2->position.x, 200.0, 1e-6);
}

TEST_F(LocationFixture, AuthenticatedHintEnvelopeAccepted) {
  const auto identity = auth.register_consumer("hinter", net::Address{50});
  ASSERT_TRUE(identity.ok());

  util::ByteWriter w;
  w.u64(identity.value().token);
  w.raw(encode(LocationHint{3, 9.0, 9.0, 25.0}));
  bus.post(net::Address{50}, location.address(), kLocationHint, std::move(w).take());
  scheduler.run();

  EXPECT_TRUE(location.estimate(3).has_value());
  EXPECT_EQ(location.stats().hints, 1u);
}

TEST_F(LocationFixture, UnauthenticatedHintRejected) {
  util::ByteWriter w;
  w.u64(0xF00D);  // forged token
  w.raw(encode(LocationHint{3, 9.0, 9.0, 25.0}));
  bus.post(net::Address{50}, location.address(), kLocationHint, std::move(w).take());
  scheduler.run();

  EXPECT_FALSE(location.estimate(3).has_value());
  EXPECT_EQ(location.stats().hints_rejected, 1u);
}

TEST_F(LocationFixture, QueryViaRpc) {
  observe(1, 1, -40.0);
  net::RpcNode caller(bus, "replicator-stub");
  std::optional<double> x;
  util::ByteWriter w(3);
  w.u24(1);
  caller.call(location.address(), LocationService::kQuery, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                util::ByteReader r(result.value());
                if (r.u8() == 1) {
                  x = r.f64();
                }
              });
  scheduler.run();
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 0.0, 1e-6);
}

TEST_F(LocationFixture, UpdateSinkFires) {
  std::size_t updates = 0;
  location.set_update_sink([&](SensorId sensor, const LocationEstimate&) {
    EXPECT_EQ(sensor, 1u);
    ++updates;
  });
  observe(1, 1, -40.0);
  observe(1, 2, -40.0);
  EXPECT_EQ(updates, 2u);
}

}  // namespace
}  // namespace garnet::core
