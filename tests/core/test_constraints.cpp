// The §8 constraint-codification language: parsing, evaluation, and its
// enforcement path through the Resource Manager.
#include "core/constraints.hpp"

#include <gtest/gtest.h>

#include "core/resource.hpp"

namespace garnet::core {
namespace {

ConstraintSet parse_ok(std::string_view text) {
  auto result = ConstraintSet::parse(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return result.ok() ? std::move(result).value() : ConstraintSet{};
}

TEST(ConstraintParse, EmptyAllowsEverything) {
  const ConstraintSet set = parse_ok("");
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.allows(ConstraintField::kIntervalMs, 0));
  EXPECT_TRUE(set.allows(ConstraintField::kMode, 0xFFFFFFFF));
}

TEST(ConstraintParse, SingleRangeClause) {
  const ConstraintSet set = parse_ok("interval_ms >= 100");
  EXPECT_TRUE(set.allows(ConstraintField::kIntervalMs, 100));
  EXPECT_TRUE(set.allows(ConstraintField::kIntervalMs, 5000));
  EXPECT_FALSE(set.allows(ConstraintField::kIntervalMs, 99));
  // Other fields untouched.
  EXPECT_TRUE(set.allows(ConstraintField::kMode, 0));
}

TEST(ConstraintParse, ConjunctionOfClauses) {
  const ConstraintSet set =
      parse_ok("interval_ms >= 100; interval_ms <= 60000; payload_bytes <= 64");
  EXPECT_EQ(set.clause_count(), 3u);
  EXPECT_TRUE(set.allows(ConstraintField::kIntervalMs, 100));
  EXPECT_FALSE(set.allows(ConstraintField::kIntervalMs, 60001));
  EXPECT_FALSE(set.allows(ConstraintField::kPayloadBytes, 65));
}

TEST(ConstraintParse, AllOperators) {
  EXPECT_FALSE(parse_ok("mode < 3").allows(ConstraintField::kMode, 3));
  EXPECT_TRUE(parse_ok("mode < 3").allows(ConstraintField::kMode, 2));
  EXPECT_FALSE(parse_ok("mode > 3").allows(ConstraintField::kMode, 3));
  EXPECT_TRUE(parse_ok("mode > 3").allows(ConstraintField::kMode, 4));
  EXPECT_TRUE(parse_ok("mode == 3").allows(ConstraintField::kMode, 3));
  EXPECT_FALSE(parse_ok("mode == 3").allows(ConstraintField::kMode, 4));
  EXPECT_FALSE(parse_ok("mode != 3").allows(ConstraintField::kMode, 3));
  EXPECT_TRUE(parse_ok("mode != 3").allows(ConstraintField::kMode, 4));
}

TEST(ConstraintParse, Membership) {
  const ConstraintSet set = parse_ok("mode in {0, 1, 4}");
  EXPECT_TRUE(set.allows(ConstraintField::kMode, 0));
  EXPECT_TRUE(set.allows(ConstraintField::kMode, 4));
  EXPECT_FALSE(set.allows(ConstraintField::kMode, 2));
  EXPECT_FALSE(set.allows(ConstraintField::kMode, 5));
}

TEST(ConstraintParse, DurationSuffixes) {
  const ConstraintSet set = parse_ok("interval_ms >= 2s; interval_ms <= 5min");
  const auto bounds = set.bounds(ConstraintField::kIntervalMs);
  EXPECT_EQ(bounds.lo, 2000u);
  EXPECT_EQ(bounds.hi, 300000u);
}

TEST(ConstraintParse, ExplicitMsSuffix) {
  const ConstraintSet set = parse_ok("interval_ms >= 250ms");
  EXPECT_EQ(set.bounds(ConstraintField::kIntervalMs).lo, 250u);
}

TEST(ConstraintParse, CommentsAndWhitespace) {
  const ConstraintSet set = parse_ok(
      "  # power budget for winter deployment\n"
      "  interval_ms >= 10s;   # at most 0.1 Hz\n"
      "  mode in {0, 2};       # standby or low-power burst\n");
  EXPECT_EQ(set.clause_count(), 2u);
  EXPECT_FALSE(set.allows(ConstraintField::kIntervalMs, 5000));
  EXPECT_TRUE(set.allows(ConstraintField::kMode, 2));
}

TEST(ConstraintParse, TrailingSemicolonAccepted) {
  EXPECT_EQ(parse_ok("mode == 1;").clause_count(), 1u);
}

TEST(ConstraintParse, ErrorsCarryOffsets) {
  const auto bad_field = ConstraintSet::parse("speed > 3");
  ASSERT_FALSE(bad_field.ok());
  EXPECT_EQ(bad_field.error().offset, 0u);

  const auto bad_op = ConstraintSet::parse("mode ~ 3");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_EQ(bad_op.error().offset, 5u);

  const auto bad_number = ConstraintSet::parse("mode == x");
  ASSERT_FALSE(bad_number.ok());
  EXPECT_EQ(bad_number.error().offset, 8u);

  const auto missing_semi = ConstraintSet::parse("mode == 1 mode == 2");
  ASSERT_FALSE(missing_semi.ok());

  const auto bad_set = ConstraintSet::parse("mode in {1, }");
  ASSERT_FALSE(bad_set.ok());

  const auto overflow = ConstraintSet::parse("interval_ms <= 99999999999");
  ASSERT_FALSE(overflow.ok());
}

TEST(ConstraintParse, MembershipDeduplicatesAndSorts) {
  const ConstraintSet set = parse_ok("mode in {4, 1, 4, 0}");
  EXPECT_EQ(set.to_string(), "mode in {0, 1, 4}");
}

TEST(ConstraintClamp, RangeEnvelope) {
  const ConstraintSet set = parse_ok("interval_ms >= 100; interval_ms <= 60000");
  EXPECT_EQ(set.clamp(ConstraintField::kIntervalMs, 5), 100u);
  EXPECT_EQ(set.clamp(ConstraintField::kIntervalMs, 100000), 60000u);
  EXPECT_EQ(set.clamp(ConstraintField::kIntervalMs, 500), 500u);
}

TEST(ConstraintClamp, StrictOperatorsTightenEnvelope) {
  const ConstraintSet set = parse_ok("mode > 2; mode < 10");
  EXPECT_EQ(set.clamp(ConstraintField::kMode, 0), 3u);
  EXPECT_EQ(set.clamp(ConstraintField::kMode, 99), 9u);
}

TEST(ConstraintClamp, EqualityPins) {
  const ConstraintSet set = parse_ok("payload_bytes == 32");
  EXPECT_EQ(set.clamp(ConstraintField::kPayloadBytes, 7), 32u);
  EXPECT_EQ(set.clamp(ConstraintField::kPayloadBytes, 500), 32u);
}

TEST(ConstraintClamp, ContradictionLeavesValue) {
  const ConstraintSet set = parse_ok("mode > 10; mode < 5");
  EXPECT_EQ(set.clamp(ConstraintField::kMode, 7), 7u);  // unsatisfiable: no-op
  EXPECT_FALSE(set.allows(ConstraintField::kMode, 7));
}

TEST(ConstraintRender, CanonicalRoundTrip) {
  const ConstraintSet set = parse_ok("interval_ms >= 1s; mode in {1,2}");
  const ConstraintSet reparsed = parse_ok(set.to_string());
  EXPECT_EQ(reparsed.to_string(), set.to_string());
}

// --- Resource Manager enforcement ------------------------------------------

struct CodifiedFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  ResourceManager resource{bus, auth, {}};
  ConsumerToken token = auth.register_consumer("app", net::Address{1}).value().token;
};

TEST_F(CodifiedFixture, CodifyRejectsBadText) {
  const auto status = resource.codify(1, 0, "interval >= wat");
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(status.error().message.empty());
}

TEST_F(CodifiedFixture, IntervalEnvelopeEnforced) {
  ASSERT_TRUE(resource.codify(1, 0, "interval_ms >= 1s; interval_ms <= 1min").ok());
  const Decision too_fast = resource.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 50);
  EXPECT_EQ(too_fast.admission, Admission::kModified);
  EXPECT_EQ(too_fast.effective_value, 1000u);
  const Decision ok = resource.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 5000);
  EXPECT_EQ(ok.admission, Admission::kApproved);
}

TEST_F(CodifiedFixture, ExclusionVetoesInsideEnvelope) {
  ASSERT_TRUE(resource.codify(1, 0, "interval_ms >= 100; interval_ms != 1000").ok());
  const Decision vetoed = resource.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 1000);
  EXPECT_EQ(vetoed.admission, Admission::kDenied);
  EXPECT_EQ(resource.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 1500).admission,
            Admission::kApproved);
}

TEST_F(CodifiedFixture, ModeWhitelistEnforced) {
  ASSERT_TRUE(resource.codify(1, 0, "mode in {0, 1, 4}").ok());
  EXPECT_EQ(resource.evaluate_now(token, {1, 0}, UpdateAction::kSetMode, 4).admission,
            Admission::kApproved);
  EXPECT_EQ(resource.evaluate_now(token, {1, 0}, UpdateAction::kSetMode, 3).admission,
            Admission::kDenied);
}

TEST_F(CodifiedFixture, PayloadClampedByCodifiedLimit) {
  ASSERT_TRUE(resource.codify(1, 0, "payload_bytes <= 48").ok());
  const Decision d = resource.evaluate_now(token, {1, 0}, UpdateAction::kSetPayloadHint, 200);
  EXPECT_EQ(d.admission, Admission::kModified);
  EXPECT_EQ(d.effective_value, 48u);
}

TEST_F(CodifiedFixture, CodifiedComposesWithStructuralConstraints) {
  SensorProfile profile;
  profile.id = 1;
  profile.constraints[0] = {.min_interval_ms = 50, .max_interval_ms = 120000, .max_payload = 64};
  resource.register_profile(std::move(profile));
  // Codified floor is stricter than the hardware floor.
  ASSERT_TRUE(resource.codify(1, 0, "interval_ms >= 500").ok());

  const Decision d = resource.evaluate_now(token, {1, 0}, UpdateAction::kSetIntervalMs, 60);
  EXPECT_EQ(d.admission, Admission::kModified);
  EXPECT_EQ(d.effective_value, 500u);  // hardware would allow 60; policy says 500
}

TEST_F(CodifiedFixture, OtherStreamsUnaffected) {
  ASSERT_TRUE(resource.codify(1, 0, "mode in {0}").ok());
  EXPECT_EQ(resource.evaluate_now(token, {1, 1}, UpdateAction::kSetMode, 9).admission,
            Admission::kApproved);
}

}  // namespace
}  // namespace garnet::core
