// StreamTable: the flat stream-state container every hot-path service
// keys its state on. Covers the map contract (upsert/find/mutate/erase,
// reference stability across growth, tombstone reuse), the determinism
// contract (for_each_sorted ascending and complete), and the
// incremental-checkpoint surface (dirty/removal journals, clear_dirty
// rebasing) — plus the strong-key types that keep a SensorId from being
// passed where a StreamKey belongs.
#include "core/stream_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace garnet::core {
namespace {

TEST(StreamKey, PackedFormMatchesFigure2Layout) {
  const StreamKey key(/*sensor=*/0x00ABCDEF, /*tag=*/0x42);
  EXPECT_EQ(key.pack(), 0xABCDEF42u);
  EXPECT_EQ(key.sensor(), 0x00ABCDEFu);
  EXPECT_EQ(key.tag(), 0x42u);
  EXPECT_EQ(key.id().packed(), 0xABCDEF42u);
  EXPECT_EQ(StreamKey::from_packed(0xABCDEF42u), key);
  EXPECT_EQ(StreamKey(key.id()), key);
}

TEST(StreamKey, OrderingFollowsPackedValue) {
  EXPECT_LT(StreamKey(1, 0), StreamKey(1, 1));
  EXPECT_LT(StreamKey(1, 255), StreamKey(2, 0));
  EXPECT_EQ(std::hash<StreamKey>{}(StreamKey(7, 3)),
            std::hash<std::uint32_t>{}(StreamKey(7, 3).pack()));
}

TEST(SensorAndConsumerKeys, RoundTripTheirIdentity) {
  EXPECT_EQ(SensorKey(0x123456u).sensor(), 0x123456u);
  EXPECT_EQ(SensorKey::from_packed(9).pack(), 9u);
  EXPECT_EQ(ConsumerKey(77u).pack(), 77u);
  EXPECT_EQ(ConsumerKey::from_packed(77u), ConsumerKey(77u));
  EXPECT_LT(SensorKey(1), SensorKey(2));
}

TEST(StreamTable, UpsertFindEraseContract) {
  StreamTable<std::uint64_t> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(StreamKey(1, 0)), nullptr);
  EXPECT_FALSE(table.erase(StreamKey(1, 0)));

  table.upsert(StreamKey(1, 0)) = 10;
  table.upsert(StreamKey(2, 0)) = 20;
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.find(StreamKey(1, 0)), nullptr);
  EXPECT_EQ(*table.find(StreamKey(1, 0)), 10u);
  EXPECT_TRUE(table.contains(StreamKey(2, 0)));

  table.upsert(StreamKey(1, 0)) = 11;  // upsert of existing key overwrites
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(*table.find(StreamKey(1, 0)), 11u);

  EXPECT_TRUE(table.erase(StreamKey(1, 0)));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(StreamKey(1, 0)), nullptr);
  EXPECT_FALSE(table.contains(StreamKey(1, 0)));
  EXPECT_TRUE(table.contains(StreamKey(2, 0)));  // probe chain survives the tombstone
}

TEST(StreamTable, TryEmplaceReportsInsertionAndMutateMissesCleanly) {
  StreamTable<std::uint64_t> table;
  auto [first, inserted] = table.try_emplace(StreamKey(3, 1));
  EXPECT_TRUE(inserted);
  *first = 7;
  auto [again, inserted_again] = table.try_emplace(StreamKey(3, 1));
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 7u);

  EXPECT_EQ(table.mutate(StreamKey(9, 9)), nullptr);
  std::uint64_t* live = table.mutate(StreamKey(3, 1));
  ASSERT_NE(live, nullptr);
  *live = 8;
  EXPECT_EQ(*table.find(StreamKey(3, 1)), 8u);
}

TEST(StreamTable, ReferencesStayStableAcrossGrowth) {
  StreamTable<std::uint64_t> table;
  std::uint64_t& early = table.upsert(StreamKey(0, 1));
  early = 0xBEEF;
  const std::uint64_t* early_ptr = &early;
  // Force several rehashes and fresh arena chunks.
  for (std::uint32_t sensor = 1; sensor <= 5000; ++sensor) {
    table.upsert(StreamKey(sensor, 0)) = sensor;
  }
  EXPECT_EQ(&table.upsert(StreamKey(0, 1)), early_ptr);
  EXPECT_EQ(early, 0xBEEFu);
  EXPECT_EQ(*table.find(StreamKey(4999, 0)), 4999u);
}

TEST(StreamTable, SurvivesRehashWithEveryEntryIntact) {
  StreamTable<std::uint64_t> table;
  for (std::uint32_t sensor = 0; sensor < 2000; ++sensor) {
    table.upsert(StreamKey(sensor, static_cast<std::uint8_t>(sensor & 3))) = sensor * 3;
  }
  EXPECT_EQ(table.size(), 2000u);
  for (std::uint32_t sensor = 0; sensor < 2000; ++sensor) {
    const std::uint64_t* value =
        table.find(StreamKey(sensor, static_cast<std::uint8_t>(sensor & 3)));
    ASSERT_NE(value, nullptr) << "lost sensor " << sensor;
    EXPECT_EQ(*value, sensor * 3);
  }
}

TEST(StreamTable, SortedIterationIsAscendingAndComplete) {
  StreamTable<std::uint64_t> table;
  // Insert in an order the arena will not match.
  for (const std::uint32_t sensor : {9u, 2u, 7u, 1u, 8u, 3u}) {
    table.upsert(StreamKey(sensor, 0)) = sensor;
  }
  table.erase(StreamKey(7, 0));

  std::vector<std::uint32_t> seen;
  table.for_each_sorted(
      [&](StreamKey key, const std::uint64_t& value) {
        EXPECT_EQ(value, key.sensor());
        seen.push_back(key.pack());
      });
  const std::vector<std::uint32_t> expected = {1u << 8, 2u << 8, 3u << 8, 8u << 8, 9u << 8};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(table.sorted_keys(), expected);
}

TEST(StreamTable, MutableSortedIterationEditsInPlace) {
  StreamTable<std::uint64_t> table;
  for (const std::uint32_t sensor : {4u, 1u, 3u}) table.upsert(StreamKey(sensor, 0)) = 0;
  std::uint64_t rank = 0;
  table.for_each_sorted([&](StreamKey, std::uint64_t& value) { value = ++rank; });
  EXPECT_EQ(*table.find(StreamKey(1, 0)), 1u);
  EXPECT_EQ(*table.find(StreamKey(3, 0)), 2u);
  EXPECT_EQ(*table.find(StreamKey(4, 0)), 3u);
}

TEST(StreamTable, ArenaIterationVisitsEveryLiveEntryOnce) {
  StreamTable<std::uint64_t> table;
  for (std::uint32_t sensor = 0; sensor < 100; ++sensor) table.upsert(StreamKey(sensor, 0));
  for (std::uint32_t sensor = 0; sensor < 100; sensor += 2) table.erase(StreamKey(sensor, 0));
  std::size_t visits = 0;
  table.for_each([&](StreamKey key, std::uint64_t&) {
    EXPECT_EQ(key.sensor() % 2, 1u);
    ++visits;
  });
  EXPECT_EQ(visits, 50u);
}

TEST(StreamTable, DirtyJournalTracksEveryMutationPath) {
  StreamTable<std::uint64_t> table;
  table.upsert(StreamKey(5, 0)) = 1;       // insert dirties
  table.try_emplace(StreamKey(3, 0));      // emplace dirties
  EXPECT_EQ(table.dirty_count(), 2u);
  EXPECT_EQ(table.dirty_keys(), (std::vector<std::uint32_t>{3u << 8, 5u << 8}));

  table.clear_dirty();
  EXPECT_EQ(table.dirty_count(), 0u);
  EXPECT_TRUE(table.dirty_keys().empty());

  (void)table.find(StreamKey(5, 0));  // reads stay clean
  EXPECT_EQ(table.dirty_count(), 0u);
  (void)table.mutate(StreamKey(5, 0));  // mutating lookup dirties
  EXPECT_EQ(table.dirty_keys(), (std::vector<std::uint32_t>{5u << 8}));

  table.mark_all_dirty();
  EXPECT_EQ(table.dirty_count(), 2u);
}

TEST(StreamTable, RemovalJournalRecordsSortsAndDedupes) {
  StreamTable<std::uint64_t> table;
  for (const std::uint32_t sensor : {1u, 2u, 3u}) table.upsert(StreamKey(sensor, 0));
  table.clear_dirty();

  table.erase(StreamKey(3, 0));
  table.erase(StreamKey(1, 0));
  table.upsert(StreamKey(3, 0)) = 9;  // erased then re-inserted
  table.erase(StreamKey(3, 0));       // ...and erased again

  EXPECT_EQ(table.removed_keys(), (std::vector<std::uint32_t>{1u << 8, 3u << 8}));
  table.clear_dirty();
  EXPECT_TRUE(table.removed_keys().empty());
}

TEST(StreamTable, ErasedSlotsAreReusedNotLeaked) {
  StreamTable<std::uint64_t> table;
  for (std::uint32_t sensor = 0; sensor < 1000; ++sensor) table.upsert(StreamKey(sensor, 0));
  const std::size_t grown = table.memory_bytes();
  // Churn: erase and re-insert the same population many times over. The
  // free list and tombstone reuse must keep both arena and index flat.
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t sensor = 0; sensor < 1000; ++sensor) table.erase(StreamKey(sensor, 0));
    table.clear_dirty();
    for (std::uint32_t sensor = 0; sensor < 1000; ++sensor) table.upsert(StreamKey(sensor, 0));
  }
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_LE(table.memory_bytes(), grown * 2);
}

TEST(StreamTable, ClearDropsEntriesAndJournals) {
  StreamTable<std::uint64_t> table;
  table.upsert(StreamKey(1, 0));
  table.erase(StreamKey(1, 0));
  table.upsert(StreamKey(2, 0));
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.dirty_keys().empty());
  EXPECT_TRUE(table.removed_keys().empty());
  EXPECT_EQ(table.find(StreamKey(2, 0)), nullptr);
  table.upsert(StreamKey(3, 0)) = 3;  // usable again after clear
  EXPECT_EQ(*table.find(StreamKey(3, 0)), 3u);
}

TEST(StreamTable, ReservePresizesWithoutChangingContents) {
  StreamTable<std::uint64_t> table;
  table.upsert(StreamKey(1, 0)) = 1;
  const std::size_t before = table.memory_bytes();
  table.reserve(100000);
  const std::size_t reserved = table.memory_bytes();
  EXPECT_GT(reserved, before);  // the index grew up front
  for (std::uint32_t sensor = 2; sensor <= 50000; ++sensor) {
    table.upsert(StreamKey(sensor, 0)) = sensor;
  }
  // Well under the reserved load factor: only arena chunks were added,
  // never a doubled slot array.
  EXPECT_LT(table.memory_bytes() - reserved, reserved);
  EXPECT_EQ(*table.find(StreamKey(1, 0)), 1u);
  EXPECT_EQ(table.size(), 50000u);
}

TEST(StreamTable, WorksWithAlternateKeyTypes) {
  StreamTable<std::uint64_t, SensorKey> tracks;
  tracks.upsert(SensorKey(7)) = 70;
  tracks.upsert(SensorKey(3)) = 30;
  EXPECT_EQ(tracks.sorted_keys(), (std::vector<std::uint32_t>{3, 7}));

  StreamTable<std::uint64_t, ConsumerKey> flows;
  flows.upsert(ConsumerKey(42)) = 1;
  EXPECT_TRUE(flows.contains(ConsumerKey(42)));
  EXPECT_FALSE(flows.contains(ConsumerKey(43)));
}

}  // namespace
}  // namespace garnet::core
