#include "core/stream_update.hpp"

#include <gtest/gtest.h>

#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace garnet::core {
namespace {

StreamUpdateRequest sample_request() {
  StreamUpdateRequest req;
  req.request_id = 777;
  req.target = {4321, 2};
  req.action = UpdateAction::kSetIntervalMs;
  req.value = 250;
  req.issued_at = util::SimTime{} + util::Duration::seconds(12);
  return req;
}

TEST(StreamUpdateCodec, RoundTrip) {
  const StreamUpdateRequest req = sample_request();
  const auto decoded = decode_update(encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, req.request_id);
  EXPECT_EQ(decoded.value().target, req.target);
  EXPECT_EQ(decoded.value().action, req.action);
  EXPECT_EQ(decoded.value().value, req.value);
  EXPECT_EQ(decoded.value().issued_at, req.issued_at);
}

TEST(StreamUpdateCodec, FixedWireSize) {
  EXPECT_EQ(encode(sample_request()).size(), StreamUpdateRequest::wire_size());
}

TEST(StreamUpdateCodec, AllActionsRoundTrip) {
  for (const auto action :
       {UpdateAction::kSetIntervalMs, UpdateAction::kEnableStream, UpdateAction::kDisableStream,
        UpdateAction::kSetMode, UpdateAction::kSetPayloadHint}) {
    StreamUpdateRequest req = sample_request();
    req.action = action;
    const auto decoded = decode_update(encode(req));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().action, action);
  }
}

TEST(StreamUpdateCodec, ChecksumDetectsCorruption) {
  const util::Bytes wire = encode(sample_request());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    util::Bytes corrupt = wire;
    corrupt[i] ^= std::byte{0x10};
    EXPECT_FALSE(decode_update(corrupt).ok()) << "flip at byte " << i;
  }
}

TEST(StreamUpdateCodec, WrongSizeRejected) {
  util::Bytes wire = encode(sample_request());
  wire.pop_back();
  EXPECT_FALSE(decode_update(wire).ok());
  wire.push_back(std::byte{});
  wire.push_back(std::byte{});
  EXPECT_FALSE(decode_update(wire).ok());
}

TEST(StreamUpdateCodec, InvalidActionRejected) {
  StreamUpdateRequest req = sample_request();
  util::Bytes wire = encode(req);
  // Action byte sits after version(1) + req id(4) + stream(4) = offset 9.
  wire[9] = std::byte{99};
  // Fix the checksum so only the action is invalid.
  const util::BytesView body = util::BytesView(wire).first(wire.size() - 4);
  const std::uint32_t crc = util::crc32c(body);
  wire[wire.size() - 4] = static_cast<std::byte>(crc >> 24);
  wire[wire.size() - 3] = static_cast<std::byte>(crc >> 16);
  wire[wire.size() - 2] = static_cast<std::byte>(crc >> 8);
  wire[wire.size() - 1] = static_cast<std::byte>(crc);
  const auto decoded = decode_update(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), util::DecodeError::kMalformed);
}

TEST(StreamUpdateCodec, ToStringCoversAllActions) {
  EXPECT_EQ(to_string(UpdateAction::kSetIntervalMs), "set-interval-ms");
  EXPECT_EQ(to_string(UpdateAction::kEnableStream), "enable-stream");
  EXPECT_EQ(to_string(UpdateAction::kDisableStream), "disable-stream");
  EXPECT_EQ(to_string(UpdateAction::kSetMode), "set-mode");
  EXPECT_EQ(to_string(UpdateAction::kSetPayloadHint), "set-payload-hint");
}

class UpdateRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpdateRoundTripProperty, RandomRequestsRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    StreamUpdateRequest req;
    req.request_id = static_cast<std::uint32_t>(rng.next());
    req.target.sensor = static_cast<SensorId>(rng.below(kMaxSensorId + 1));
    req.target.stream = static_cast<InternalStreamId>(rng.below(256));
    req.action = static_cast<UpdateAction>(1 + rng.below(5));
    req.value = static_cast<std::uint32_t>(rng.next());
    req.issued_at.ns = static_cast<std::int64_t>(rng.below(1ull << 62));
    const auto decoded = decode_update(encode(req));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().request_id, req.request_id);
    EXPECT_EQ(decoded.value().target, req.target);
    EXPECT_EQ(decoded.value().value, req.value);
    EXPECT_EQ(decoded.value().issued_at, req.issued_at);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateRoundTripProperty, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace garnet::core
