// Super Coordinator: global consumer view, transition learning, and the
// predictive pre-arm path (paper §6, experiment E5's correctness side).
#include "core/coordinator.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

using util::Duration;

constexpr std::uint32_t kCalm = 1;
constexpr std::uint32_t kRising = 2;
constexpr std::uint32_t kFlood = 3;

struct CoordinatorFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  ResourceManager resource{bus, auth,
                           {.policy = ConflictPolicy::kMostDemandingWins,
                            .evaluation_delay = Duration::millis(5),
                            .allow_trusted_override = true,
                            .demand_ttl = Duration::seconds(300)}};
  SuperCoordinator coordinator{bus, auth, resource, {}};

  ConsumerIdentity register_consumer(const std::string& name,
                                     TrustLevel trust = TrustLevel::kStandard) {
    auth.grant_trust(name, trust);
    return auth.register_consumer(name, net::Address{1}).value();
  }

  /// Drives the consumer through the calm -> rising -> flood cycle once.
  void one_cycle(ConsumerToken token) {
    coordinator.report_state(token, kCalm);
    coordinator.report_state(token, kRising);
    coordinator.report_state(token, kFlood);
  }
};

TEST_F(CoordinatorFixture, BuildsGlobalView) {
  const auto a = register_consumer("a");
  const auto b = register_consumer("b");
  coordinator.report_state(a.token, kCalm);
  coordinator.report_state(b.token, kRising);

  const GlobalView& view = coordinator.view();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.at(a.id).state, kCalm);
  EXPECT_EQ(view.at(b.id).state, kRising);
  EXPECT_EQ(view.at(a.id).name, "a");
}

TEST_F(CoordinatorFixture, RejectsUnknownToken) {
  coordinator.report_state(0xBAD, kCalm);
  EXPECT_TRUE(coordinator.view().empty());
  EXPECT_EQ(coordinator.stats().rejected_reports, 1u);
}

TEST_F(CoordinatorFixture, RejectsUntrustedConsumers) {
  const auto guest = register_consumer("guest", TrustLevel::kUntrusted);
  coordinator.report_state(guest.token, kCalm);
  EXPECT_TRUE(coordinator.view().empty());
  EXPECT_EQ(coordinator.stats().rejected_reports, 1u);
}

TEST_F(CoordinatorFixture, LearnsTransitionCounts) {
  const auto app = register_consumer("app");
  one_cycle(app.token);
  one_cycle(app.token);

  const auto counts = coordinator.transition_counts(app.id);
  EXPECT_EQ(counts.at({kCalm, kRising}), 2u);
  EXPECT_EQ(counts.at({kRising, kFlood}), 2u);
  EXPECT_EQ(counts.at({kFlood, kCalm}), 1u);  // wrap between cycles
}

TEST_F(CoordinatorFixture, SameStateReportIsNotATransition) {
  const auto app = register_consumer("app");
  coordinator.report_state(app.token, kCalm);
  coordinator.report_state(app.token, kCalm);
  coordinator.report_state(app.token, kCalm);
  EXPECT_TRUE(coordinator.transition_counts(app.id).empty());
  EXPECT_EQ(coordinator.view().at(app.id).changes, 3u);
}

TEST_F(CoordinatorFixture, PrearmsAfterLearnedPattern) {
  const auto app = register_consumer("app");
  coordinator.add_rule({"app", kFlood, {7, 0}, UpdateAction::kSetIntervalMs, 100});

  // Train: three full cycles teach rising -> flood.
  for (int i = 0; i < 3; ++i) one_cycle(app.token);
  EXPECT_EQ(coordinator.stats().prearms_issued, 0u);  // below min_observations until now

  // Entering "rising" a fourth time predicts "flood" (3 observations,
  // probability 1.0) and pre-arms the resource manager.
  coordinator.report_state(app.token, kCalm);
  coordinator.report_state(app.token, kRising);
  EXPECT_GE(coordinator.stats().prearms_issued, 1u);

  // The consumer's imminent request is served without deliberation.
  std::optional<util::SimTime> decided_at;
  resource.evaluate(app.token, {7, 0}, UpdateAction::kSetIntervalMs, 100,
                    [&](Decision) { decided_at = scheduler.now(); });
  ASSERT_TRUE(decided_at.has_value());
  EXPECT_EQ(decided_at->ns, scheduler.now().ns);  // no 5ms delay
  EXPECT_EQ(resource.stats().prearm_hits, 1u);
}

TEST_F(CoordinatorFixture, NoPrearmBelowMinObservations) {
  const auto app = register_consumer("app");
  coordinator.add_rule({"app", kFlood, {7, 0}, UpdateAction::kSetIntervalMs, 100});
  one_cycle(app.token);
  coordinator.report_state(app.token, kCalm);
  coordinator.report_state(app.token, kRising);  // only 1 observation of rising->flood
  EXPECT_EQ(coordinator.stats().prearms_issued, 0u);
}

TEST_F(CoordinatorFixture, NoPrearmBelowMinProbability) {
  // A coordinator with a strict probability threshold, on its own stack
  // (endpoint names are unique per bus).
  sim::Scheduler scheduler2;
  net::MessageBus bus2{scheduler2, {}};
  AuthService auth2{{}};
  ResourceManager resource2{bus2, auth2, {}};
  SuperCoordinator picky(bus2, auth2, resource2,
                         {.min_observations = 2, .min_probability = 0.9,
                          .min_trust = TrustLevel::kStandard});
  const auto app = auth2.register_consumer("app", net::Address{1}).value();
  picky.add_rule({"app", kFlood, {7, 0}, UpdateAction::kSetIntervalMs, 100});

  // rising -> flood half the time, rising -> calm the other half.
  for (int i = 0; i < 4; ++i) {
    picky.report_state(app.token, kRising);
    picky.report_state(app.token, i % 2 == 0 ? kFlood : kCalm);
  }
  picky.report_state(app.token, kRising);
  EXPECT_EQ(picky.stats().prearms_issued, 0u);  // p = 0.5 < 0.9
}

TEST_F(CoordinatorFixture, RuleScopedToConsumerName) {
  const auto app = register_consumer("app");
  const auto other = register_consumer("other");
  coordinator.add_rule({"other", kFlood, {7, 0}, UpdateAction::kSetIntervalMs, 100});
  for (int i = 0; i < 3; ++i) one_cycle(app.token);
  coordinator.report_state(app.token, kCalm);
  coordinator.report_state(app.token, kRising);
  EXPECT_EQ(coordinator.stats().prearms_issued, 0u);  // rule is for "other"
  (void)other;
}

TEST_F(CoordinatorFixture, WildcardRuleMatchesAnyConsumer) {
  const auto app = register_consumer("app");
  coordinator.add_rule({"", kFlood, {7, 0}, UpdateAction::kSetIntervalMs, 100});
  for (int i = 0; i < 3; ++i) one_cycle(app.token);
  coordinator.report_state(app.token, kCalm);
  coordinator.report_state(app.token, kRising);
  EXPECT_GE(coordinator.stats().prearms_issued, 1u);
}

TEST_F(CoordinatorFixture, PolicyHookSwitchesResourceStrategy) {
  // "the Super Coordinator may invoke policy changes in the strategy
  // used by the Resource Manager" (§4.2).
  const auto app = register_consumer("app");
  coordinator.set_policy_hook([](const GlobalView& view) -> std::optional<ConflictPolicy> {
    for (const auto& [id, consumer] : view) {
      if (consumer.state == kFlood) return ConflictPolicy::kPriorityWins;
    }
    return ConflictPolicy::kMostDemandingWins;
  });

  coordinator.report_state(app.token, kCalm);
  EXPECT_EQ(resource.policy(), ConflictPolicy::kMostDemandingWins);
  coordinator.report_state(app.token, kFlood);
  EXPECT_EQ(resource.policy(), ConflictPolicy::kPriorityWins);
  EXPECT_EQ(coordinator.stats().policy_changes, 1u);
  coordinator.report_state(app.token, kCalm);
  EXPECT_EQ(resource.policy(), ConflictPolicy::kMostDemandingWins);
}

TEST_F(CoordinatorFixture, StateChangeEnvelopePath) {
  const auto app = register_consumer("app");
  bus.post(net::Address{50}, coordinator.address(), kStateChange,
           encode(StateChange{app.token, kRising}));
  scheduler.run();
  ASSERT_EQ(coordinator.view().size(), 1u);
  EXPECT_EQ(coordinator.view().at(app.id).state, kRising);
}

TEST_F(CoordinatorFixture, MalformedStateChangeRejected) {
  bus.post(net::Address{50}, coordinator.address(), kStateChange, util::to_bytes("junk"));
  scheduler.run();
  EXPECT_EQ(coordinator.stats().rejected_reports, 1u);
}

}  // namespace
}  // namespace garnet::core
