// Figure-2 wire format verification, including the paper's exact
// capacity claims: 16.7M sensors, 256 internal streams per sensor, 64K
// sequence counts, payloads of 64K bytes (experiment E1's correctness
// side).
#include "core/message.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/crc32c.hpp"
#include "util/rng.hpp"
#include "util/shared_bytes.hpp"

namespace garnet::core {
namespace {

DataMessage sample_message() {
  DataMessage msg;
  msg.stream_id = {123456, 7};
  msg.sequence = 4242;
  msg.payload = util::to_bytes("reading: 21.5C");
  return msg;
}

TEST(StreamId, PackedRoundTrip) {
  const StreamId id{0xABCDEF, 0x42};
  EXPECT_EQ(StreamId::from_packed(id.packed()), id);
}

TEST(StreamId, CapacityClaims) {
  // "supports up to 16.7M sensors, 256 internal-streams/sensor".
  EXPECT_EQ(kMaxSensorId, 16'777'215u);
  EXPECT_EQ(static_cast<int>(std::numeric_limits<InternalStreamId>::max()), 255);
  EXPECT_EQ(static_cast<int>(std::numeric_limits<SequenceNo>::max()), 65'535);
  EXPECT_EQ(kMaxPayload, 65'535u);
}

TEST(StreamId, ToStringFormat) {
  EXPECT_EQ((StreamId{17, 3}).to_string(), "17#3");
}

TEST(MsgHeader, FlagOperations) {
  MsgHeader h;
  EXPECT_FALSE(h.has(HeaderFlag::kFused));
  h.set(HeaderFlag::kFused);
  h.set(HeaderFlag::kRelayed);
  EXPECT_TRUE(h.has(HeaderFlag::kFused));
  EXPECT_TRUE(h.has(HeaderFlag::kRelayed));
  h.clear(HeaderFlag::kFused);
  EXPECT_FALSE(h.has(HeaderFlag::kFused));
  EXPECT_TRUE(h.has(HeaderFlag::kRelayed));
}

TEST(MsgHeader, PackedVersionAndFlags) {
  MsgHeader h;
  h.set(HeaderFlag::kEncrypted);
  const MsgHeader back = MsgHeader::from_packed(h.packed());
  EXPECT_EQ(back.version, kFormatVersion);
  EXPECT_TRUE(back.has(HeaderFlag::kEncrypted));
}

TEST(MessageCodec, WireLayoutMatchesFigure2) {
  // Figure 2: 8-bit header | 32-bit StreamID | 16-bit sequence |
  // 16-bit payload size | payload. Header is 9 bytes = 72 bits.
  const DataMessage msg = sample_message();
  const util::Bytes wire = encode(msg);
  ASSERT_EQ(wire.size(), kFixedHeaderBytes + msg.payload.size() + kChecksumBytes);

  util::ByteReader r(wire);
  EXPECT_EQ(r.u8(), msg.header.packed());          // bits 0..7
  EXPECT_EQ(r.u24(), msg.stream_id.sensor);        // bits 8..31
  EXPECT_EQ(r.u8(), msg.stream_id.stream);         // bits 32..39
  EXPECT_EQ(r.u16(), msg.sequence);                // bits 40..55
  EXPECT_EQ(r.u16(), msg.payload.size());          // bits 56..71
}

TEST(MessageCodec, RoundTripBasic) {
  const DataMessage msg = sample_message();
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().stream_id, msg.stream_id);
  EXPECT_EQ(decoded.value().sequence, msg.sequence);
  EXPECT_EQ(decoded.value().payload, msg.payload);
  EXPECT_FALSE(decoded.value().ack_request_id.has_value());
}

TEST(MessageCodec, RoundTripWithAckExtension) {
  DataMessage msg = sample_message();
  msg.header.set(HeaderFlag::kAckPresent);
  msg.ack_request_id = 0xDEADBEEF;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().ack_request_id.has_value());
  EXPECT_EQ(*decoded.value().ack_request_id, 0xDEADBEEFu);
}

TEST(MessageCodec, EmptyPayload) {
  DataMessage msg = sample_message();
  msg.payload.clear();
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().payload.empty());
}

TEST(MessageCodec, MaxPayload) {
  DataMessage msg = sample_message();
  msg.payload.assign(kMaxPayload, std::byte{0x5A});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().payload.size(), kMaxPayload);
}

TEST(MessageCodec, MaxPayloadViewRoundTripAliasesWire) {
  // The zero-copy side of the 64KB claim: decode_view must hand back a
  // payload that points into the wire buffer, with no byte copy counted.
  DataMessage msg = sample_message();
  msg.payload.assign(kMaxPayload, std::byte{0xA5});
  const util::Bytes wire = encode(msg);

  const util::PayloadStats before = util::payload_stats();
  const auto view = decode_view(wire);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(util::payload_stats().copies, before.copies);

  const util::BytesView payload = view.value().payload;
  EXPECT_EQ(payload.size(), kMaxPayload);
  EXPECT_GE(payload.data(), wire.data());
  EXPECT_LE(payload.data() + payload.size(), wire.data() + wire.size());

  // Materialising the view costs exactly the one counted copy.
  const DataMessage owned = view.value().to_owned();
  EXPECT_EQ(util::payload_stats().copies, before.copies + 1);
  EXPECT_EQ(owned.payload, msg.payload);
  EXPECT_EQ(owned.stream_id, msg.stream_id);
}

TEST(MessageCodec, DecodeViewTrustedSkipsChecksumButNotStructure) {
  util::Bytes wire = encode(sample_message());
  wire[wire.size() - 1] ^= std::byte{0xFF};  // corrupt the CRC trailer

  const auto strict = decode_view(wire, ChecksumPolicy::kVerify);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.error(), util::DecodeError::kBadChecksum);

  // Trusted consumers (in-process delivery frames) skip the re-hash...
  const auto trusted = decode_view(wire, ChecksumPolicy::kTrusted);
  ASSERT_TRUE(trusted.ok());
  EXPECT_EQ(trusted.value().stream_id, sample_message().stream_id);

  // ...but structural validation still runs under kTrusted.
  const auto truncated =
      decode_view(util::BytesView(wire).first(kFixedHeaderBytes - 1), ChecksumPolicy::kTrusted);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error(), util::DecodeError::kTruncated);
}

#ifndef NDEBUG
TEST(MessageCodecDeathTest, EncodeAssertsSensorIdWithinFigure2Range) {
  // Figure 2 gives the sensor id 24 bits; encoding a wider id would
  // silently truncate, so it is an asserted precondition instead.
  DataMessage msg = sample_message();
  msg.stream_id.sensor = kMaxSensorId + 1;
  EXPECT_DEATH((void)encode(msg), "kMaxSensorId");
}
#endif

TEST(MessageCodec, BoundarySensorIds) {
  for (const SensorId sensor : {SensorId{0}, SensorId{1}, kMaxSensorId - 1, kMaxSensorId}) {
    DataMessage msg = sample_message();
    msg.stream_id.sensor = sensor;
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok()) << sensor;
    EXPECT_EQ(decoded.value().stream_id.sensor, sensor);
  }
}

TEST(MessageCodec, BoundarySequences) {
  for (const SequenceNo seq : {SequenceNo{0}, SequenceNo{1}, SequenceNo{0x7FFF},
                               SequenceNo{0x8000}, SequenceNo{0xFFFF}}) {
    DataMessage msg = sample_message();
    msg.sequence = seq;
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().sequence, seq);
  }
}

TEST(MessageCodec, AllInternalStreamIds) {
  for (int stream = 0; stream <= 255; ++stream) {
    DataMessage msg = sample_message();
    msg.stream_id.stream = static_cast<InternalStreamId>(stream);
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().stream_id.stream, stream);
  }
}

TEST(MessageCodec, ChecksumDetectsCorruption) {
  const util::Bytes wire = encode(sample_message());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    util::Bytes corrupt = wire;
    corrupt[i] ^= std::byte{0x01};
    const auto decoded = decode(corrupt);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << i;
  }
}

TEST(MessageCodec, TruncatedFailsCleanly) {
  const util::Bytes wire = encode(sample_message());
  for (std::size_t keep = 0; keep < kFixedHeaderBytes + kChecksumBytes; ++keep) {
    const auto decoded = decode(util::BytesView(wire).first(keep));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error(), util::DecodeError::kTruncated);
  }
}

TEST(MessageCodec, TrailingGarbageRejected) {
  util::Bytes wire = encode(sample_message());
  wire.push_back(std::byte{0x00});
  EXPECT_FALSE(decode(wire).ok());
}

TEST(MessageCodec, WrongVersionRejected) {
  util::Bytes wire = encode(sample_message());
  // Force version bits to 2, then re-checksum so only the version is bad.
  wire[0] = static_cast<std::byte>((2u << 6) | (static_cast<unsigned>(wire[0]) & 0x3F));
  const util::BytesView body = util::BytesView(wire).first(wire.size() - kChecksumBytes);
  const std::uint32_t crc = util::crc32c(body);
  wire[wire.size() - 4] = static_cast<std::byte>(crc >> 24);
  wire[wire.size() - 3] = static_cast<std::byte>(crc >> 16);
  wire[wire.size() - 2] = static_cast<std::byte>(crc >> 8);
  wire[wire.size() - 1] = static_cast<std::byte>(crc);
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), util::DecodeError::kBadVersion);
}

TEST(MessageCodec, WireSizeMatchesEncoding) {
  DataMessage msg = sample_message();
  EXPECT_EQ(encode(msg).size(), msg.wire_size());
  msg.header.set(HeaderFlag::kAckPresent);
  msg.ack_request_id = 7;
  EXPECT_EQ(encode(msg).size(), msg.wire_size());
}

// Property sweep: random messages across the whole id/seq/payload space
// round-trip bit-exactly, at several deterministic seeds.
class MessageRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageRoundTripProperty, RandomMessagesRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    DataMessage msg;
    msg.stream_id.sensor = static_cast<SensorId>(rng.below(kMaxSensorId + 1));
    msg.stream_id.stream = static_cast<InternalStreamId>(rng.below(256));
    msg.sequence = static_cast<SequenceNo>(rng.below(65536));
    msg.payload.resize(rng.below(512));
    for (auto& b : msg.payload) b = static_cast<std::byte>(rng.next());
    if (rng.chance(0.3)) {
      msg.header.set(HeaderFlag::kAckPresent);
      msg.ack_request_id = static_cast<std::uint32_t>(rng.next());
    }
    if (rng.chance(0.2)) msg.header.set(HeaderFlag::kFused);
    if (rng.chance(0.2)) msg.header.set(HeaderFlag::kRelayed);
    if (rng.chance(0.2)) msg.header.set(HeaderFlag::kEncrypted);

    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok());
    const DataMessage& out = decoded.value();
    EXPECT_EQ(out.stream_id, msg.stream_id);
    EXPECT_EQ(out.sequence, msg.sequence);
    EXPECT_EQ(out.payload, msg.payload);
    EXPECT_EQ(out.header.flags, msg.header.flags);
    EXPECT_EQ(out.ack_request_id, msg.ack_request_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTripProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace garnet::core
