// Property sweeps over the Resource Manager's mediation: random demand
// sequences from many consumers, checked against policy invariants.
#include <gtest/gtest.h>

#include "core/resource.hpp"
#include "util/rng.hpp"

namespace garnet::core {
namespace {

constexpr std::uint32_t kMinMs = 100;
constexpr std::uint32_t kMaxMs = 60000;

struct Mediation {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  ResourceManager resource;
  std::vector<ConsumerToken> tokens;

  explicit Mediation(ConflictPolicy policy)
      : resource(bus, auth,
                 {.policy = policy,
                  .evaluation_delay = util::Duration::millis(1),
                  .allow_trusted_override = true,
                  .demand_ttl = util::Duration::seconds(3600)}) {
    SensorProfile profile;
    profile.id = 1;
    profile.receive_capable = true;
    profile.constraints[0] = {.min_interval_ms = kMinMs, .max_interval_ms = kMaxMs,
                              .max_payload = 64};
    resource.register_profile(std::move(profile));
    for (int i = 0; i < 8; ++i) {
      tokens.push_back(auth
                           .register_consumer("c" + std::to_string(i), net::Address{1},
                                              static_cast<std::uint8_t>(10 * i + 5))
                           .value()
                           .token);
    }
  }
};

class MediationProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MediationProperty, InvariantsHoldUnderRandomDemands) {
  const auto policy = static_cast<ConflictPolicy>(std::get<0>(GetParam()));
  util::Rng rng(std::get<1>(GetParam()));
  Mediation rig(policy);

  std::optional<std::uint32_t> last_admitted_effective;
  for (int step = 0; step < 500; ++step) {
    const std::size_t who = rng.below(rig.tokens.size());
    const auto asked = static_cast<std::uint32_t>(rng.below(120000) + 1);
    const Decision decision = rig.resource.evaluate_now(
        rig.tokens[who], {1, 0}, UpdateAction::kSetIntervalMs, asked);

    if (decision.admission != Admission::kDenied) {
      // Invariant 1: whatever is admitted respects device constraints.
      EXPECT_GE(decision.effective_value, kMinMs);
      EXPECT_LE(decision.effective_value, kMaxMs);
      last_admitted_effective = decision.effective_value;
    } else {
      // Invariant 2: only the reject-conflicts policy denies interval
      // requests from standard consumers on a known sensor.
      EXPECT_EQ(policy, ConflictPolicy::kRejectConflicts);
    }

    // Invariant 3: the believed configuration is the last admitted value.
    if (last_admitted_effective) {
      EXPECT_EQ(rig.resource.believed_interval({1, 0}), last_admitted_effective);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PolicyBySeeds, MediationProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(11u, 23u, 47u)));

class MostDemandingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MostDemandingProperty, EffectiveEqualsMinOfActiveDemands) {
  util::Rng rng(GetParam());
  Mediation rig(ConflictPolicy::kMostDemandingWins);

  std::map<std::size_t, std::uint32_t> demands;  // consumer -> feasible demand
  for (int step = 0; step < 300; ++step) {
    const std::size_t who = rng.below(rig.tokens.size());
    const auto asked = static_cast<std::uint32_t>(rng.below(120000) + 1);
    const std::uint32_t feasible = std::clamp(asked, kMinMs, kMaxMs);
    demands[who] = feasible;

    const Decision decision = rig.resource.evaluate_now(
        rig.tokens[who], {1, 0}, UpdateAction::kSetIntervalMs, asked);
    ASSERT_NE(decision.admission, Admission::kDenied);

    std::uint32_t expected = 0xFFFFFFFFu;
    for (const auto& [consumer, demand] : demands) expected = std::min(expected, demand);
    EXPECT_EQ(decision.effective_value, expected) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MostDemandingProperty, ::testing::Values(5u, 17u, 29u, 71u));

class PriorityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PriorityProperty, TopPriorityDemandAlwaysRules) {
  util::Rng rng(GetParam());
  Mediation rig(ConflictPolicy::kPriorityWins);

  // Consumer 7 holds the highest priority (75). Once it has demanded,
  // every later decision must carry its demand.
  const Decision top = rig.resource.evaluate_now(rig.tokens[7], {1, 0},
                                                 UpdateAction::kSetIntervalMs, 7777);
  ASSERT_NE(top.admission, Admission::kDenied);

  for (int step = 0; step < 200; ++step) {
    const std::size_t who = rng.below(7);  // everyone except the top consumer
    const auto asked = static_cast<std::uint32_t>(rng.below(120000) + 1);
    const Decision decision = rig.resource.evaluate_now(
        rig.tokens[who], {1, 0}, UpdateAction::kSetIntervalMs, asked);
    ASSERT_NE(decision.admission, Admission::kDenied);
    EXPECT_EQ(decision.effective_value, 7777u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityProperty, ::testing::Values(3u, 13u, 37u));

}  // namespace
}  // namespace garnet::core
