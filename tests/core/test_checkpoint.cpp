// Checkpoint framing and the bounded op-log (crash recovery substrate).
//
// The frame is the unit of durability for every stateful service: a
// bit-flip, truncation or version skew anywhere must be rejected before
// a single state byte is exposed, and two captures of identical state
// must be byte-identical (the determinism the replicated journals rely
// on).
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

namespace garnet::core::checkpoint {
namespace {

using util::DecodeError;

Header sample_header() {
  Header header;
  header.service = "dispatch";
  header.epoch = 42;
  header.taken_at = util::SimTime{} + util::Duration::millis(1250);
  return header;
}

TEST(Checkpoint, RoundTripPreservesHeaderAndState) {
  const util::Bytes state = util::to_bytes("subscriptions+credits+cursors");
  const util::Bytes frame = encode(sample_header(), state);

  const auto decoded = decode(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header.version, kVersion);
  EXPECT_EQ(decoded.value().header.service, "dispatch");
  EXPECT_EQ(decoded.value().header.epoch, 42u);
  EXPECT_EQ(decoded.value().header.taken_at.ns, util::Duration::millis(1250).ns);
  ASSERT_EQ(decoded.value().state.size(), state.size());
  EXPECT_TRUE(std::equal(state.begin(), state.end(), decoded.value().state.begin()));
}

TEST(Checkpoint, EmptyStateIsAValidFrame) {
  const util::Bytes frame = encode(sample_header(), {});
  const auto decoded = decode(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state.size(), 0u);
}

TEST(Checkpoint, EncodeIsByteDeterministic) {
  const util::Bytes state = util::to_bytes("same state, same bytes");
  EXPECT_EQ(encode(sample_header(), state), encode(sample_header(), state));
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  const util::Bytes frame = encode(sample_header(), util::to_bytes("payload"));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto decoded = decode(util::BytesView(frame.data(), len));
    EXPECT_FALSE(decoded.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(Checkpoint, WrongMagicIsMalformed) {
  util::Bytes frame = encode(sample_header(), util::to_bytes("x"));
  frame[0] ^= std::byte{0xFF};
  const auto decoded = decode(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), DecodeError::kMalformed);
}

TEST(Checkpoint, VersionSkewIsRejectedBeforeAnythingElse) {
  util::Bytes frame = encode(sample_header(), util::to_bytes("x"));
  frame[4] = std::byte{kVersion + 1};  // byte 4 = version, after the magic
  const auto decoded = decode(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), DecodeError::kBadVersion);
}

TEST(Checkpoint, DeclaredLengthMustMatchFrame) {
  const util::Bytes frame = encode(sample_header(), util::to_bytes("abcdef"));
  // Chop exactly one state byte off the middle: framing survives but the
  // declared state_len no longer fits before the CRC trailer.
  util::Bytes shorter(frame.begin(), frame.end() - 5);
  shorter.insert(shorter.end(), frame.end() - 4, frame.end());
  const auto decoded = decode(shorter);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), DecodeError::kLengthMismatch);
}

TEST(Checkpoint, AnySingleBitFlipFailsTheChecksum) {
  const util::Bytes frame = encode(sample_header(), util::to_bytes("guarded"));
  // Flip one bit in every byte position past the header fields that the
  // structural checks would catch first; all must fail *somewhere*.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    util::Bytes mutated = frame;
    mutated[i] ^= std::byte{0x01};
    EXPECT_FALSE(decode(mutated).ok()) << "bit flip at byte " << i << " accepted";
  }
}

TEST(Checkpoint, ChecksumErrorReportedWhenStructureSurvives) {
  util::Bytes frame = encode(sample_header(), util::to_bytes("guarded"));
  // Corrupt a state byte: framing is intact, only the CRC notices.
  frame[frame.size() - 5] ^= std::byte{0x10};
  const auto decoded = decode(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), DecodeError::kBadChecksum);
}

// --- delta frames ------------------------------------------------------

TEST(Checkpoint, DeltaRoundTripPreservesBaseEpoch) {
  const util::Bytes state = util::to_bytes("dirty entries + removals");
  const util::Bytes frame = encode_delta(sample_header(), /*base_epoch=*/41, state);

  const auto decoded = decode_any(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, FrameKind::kDelta);
  EXPECT_EQ(decoded.value().base_epoch, 41u);
  EXPECT_EQ(decoded.value().header.service, "dispatch");
  EXPECT_EQ(decoded.value().header.epoch, 42u);
  ASSERT_EQ(decoded.value().state.size(), state.size());
  EXPECT_TRUE(std::equal(state.begin(), state.end(), decoded.value().state.begin()));
}

TEST(Checkpoint, FullOnlyDecodeRejectsDeltaFrames) {
  // decode() is the pre-delta surface: a delta frame must look foreign
  // (wrong magic), not like a corrupt full snapshot.
  const util::Bytes frame = encode_delta(sample_header(), 41, util::to_bytes("x"));
  const auto decoded = decode(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), DecodeError::kMalformed);
}

TEST(Checkpoint, DecodeAnyAcceptsBothKinds) {
  const auto full = decode_any(encode(sample_header(), util::to_bytes("f")));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().kind, FrameKind::kFull);
  EXPECT_EQ(full.value().base_epoch, 0u);

  const auto delta = decode_any(encode_delta(sample_header(), 7, util::to_bytes("d")));
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().kind, FrameKind::kDelta);
}

TEST(Checkpoint, DeltaEncodeIsByteDeterministic) {
  const util::Bytes state = util::to_bytes("same delta, same bytes");
  EXPECT_EQ(encode_delta(sample_header(), 41, state),
            encode_delta(sample_header(), 41, state));
}

TEST(Checkpoint, EveryDeltaTruncationIsRejected) {
  const util::Bytes frame = encode_delta(sample_header(), 41, util::to_bytes("payload"));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_any(util::BytesView(frame.data(), len)).ok())
        << "accepted a " << len << "-byte delta prefix";
  }
}

TEST(Checkpoint, AnySingleBitFlipFailsTheDeltaChecksum) {
  const util::Bytes frame = encode_delta(sample_header(), 41, util::to_bytes("guarded"));
  for (std::size_t i = 0; i < frame.size(); ++i) {
    util::Bytes mutated = frame;
    mutated[i] ^= std::byte{0x01};
    EXPECT_FALSE(decode_any(mutated).ok()) << "bit flip at byte " << i << " accepted";
  }
}

// --- service capture/restore ------------------------------------------

TEST(Checkpoint, FilteringCaptureIsDeterministicAcrossInsertionOrder) {
  // Two services fed the same sequences in different orders hold the
  // same logical state; their captures must be byte-identical.
  sim::Scheduler scheduler;
  FilteringService a(scheduler, {});
  FilteringService b(scheduler, {});
  for (SequenceNo seq : {0, 1, 2, 3, 4}) a.note_seen({7, 1}, seq);
  for (SequenceNo seq : {9, 10}) a.note_seen({3, 0}, seq);
  for (SequenceNo seq : {9, 10}) b.note_seen({3, 0}, seq);
  for (SequenceNo seq : {0, 1, 2, 3, 4}) b.note_seen({7, 1}, seq);
  EXPECT_EQ(a.capture_state(), b.capture_state());
}

TEST(Checkpoint, FilteringRestoreRejectsGarbageWithoutPartialApply) {
  sim::Scheduler scheduler;
  FilteringService service(scheduler, {});
  service.note_seen({1, 0}, 5);
  const util::Bytes before = service.capture_state();

  const util::Bytes junk = util::to_bytes("not a filtering state body");
  EXPECT_FALSE(service.restore_state(junk).ok());
  EXPECT_EQ(service.capture_state(), before);  // untouched on failure
}

TEST(Checkpoint, DispatchRestoreRejectsGarbageWithoutPartialApply) {
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  AuthService auth{{}};
  StreamCatalog catalog;
  DispatchingService dispatch(bus, auth, catalog);
  const util::Bytes before = dispatch.capture_state();

  EXPECT_FALSE(dispatch.restore_state(util::to_bytes("garbage")).ok());
  EXPECT_EQ(dispatch.capture_state(), before);
}

// --- OpLog -------------------------------------------------------------

TEST(OpLog, AppendKeepsEverythingUnderCapacity) {
  OpLog log(8);
  for (std::uint64_t lsn = 1; lsn <= 8; ++lsn) log.append({lsn, 1, {}});
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.evicted(), 0u);
  EXPECT_EQ(log.records().front().lsn, 1u);
  EXPECT_EQ(log.records().back().lsn, 8u);
}

TEST(OpLog, OverflowEvictsOldestAndCounts) {
  OpLog log(4);
  for (std::uint64_t lsn = 1; lsn <= 10; ++lsn) log.append({lsn, 1, {}});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.evicted(), 6u);
  EXPECT_EQ(log.records().front().lsn, 7u);  // 1..6 gone, oldest first
  EXPECT_EQ(log.records().back().lsn, 10u);
}

TEST(OpLog, TruncateThroughDropsCheckpointedPrefix) {
  OpLog log(16);
  for (std::uint64_t lsn = 1; lsn <= 10; ++lsn) log.append({lsn, 1, {}});
  log.truncate_through(6);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.records().front().lsn, 7u);
  EXPECT_EQ(log.evicted(), 0u);  // truncation is not eviction

  log.truncate_through(100);  // watermark past the tail clears it
  EXPECT_EQ(log.size(), 0u);
}

TEST(OpLog, PayloadBytesSurviveTheDeque) {
  OpLog log(2);
  log.append({1, 7, util::to_bytes("first")});
  log.append({2, 9, util::to_bytes("second")});
  log.append({3, 9, util::to_bytes("third")});  // evicts lsn 1
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records().front().kind, 9u);
  EXPECT_EQ(log.records().front().payload, util::to_bytes("second"));
  EXPECT_EQ(log.records().back().payload, util::to_bytes("third"));
}

}  // namespace
}  // namespace garnet::core::checkpoint
