// Actuation Service pipeline: admission -> stamp/checksum -> replicate ->
// acknowledge, with retransmission on silence (paper §4.2).
#include "core/actuation.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

struct ActuationFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};

  wireless::RadioMedium::Config perfect_radio() {
    wireless::RadioMedium::Config config;
    config.base_loss = 0.0;
    config.edge_loss = 0.0;
    config.max_jitter = Duration::nanos(0);
    return config;
  }

  wireless::RadioMedium medium{scheduler, perfect_radio(), util::Rng(1)};
  LocationService location{bus, auth, {}};
  ResourceManager resource{bus, auth,
                           {.policy = ConflictPolicy::kMostDemandingWins,
                            .evaluation_delay = Duration::millis(5),
                            .allow_trusted_override = true,
                            .demand_ttl = Duration::seconds(300)}};
  MessageReplicator replicator{medium, location, {}};

  ActuationService make(ActuationService::Config config = {.ack_timeout = Duration::millis(100),
                                                           .max_retries = 2}) {
    return ActuationService(bus, auth, replicator, config);
  }

  ConsumerToken register_consumer(const std::string& name) {
    return auth.register_consumer(name, net::Address{1}).value().token;
  }

  /// Captures control frames arriving at a stationary receive-capable
  /// sensor position.
  std::vector<StreamUpdateRequest> received;
  void attach_sensor_stub(std::uint32_t key = 7) {
    medium.add_transmitter({1, {0, 0}, 1000});
    medium.add_downlink_endpoint({key, [] { return sim::Vec2{10, 0}; },
                                  [this](util::BytesView frame) {
                                    const auto decoded = decode_update(frame);
                                    if (decoded.ok()) received.push_back(decoded.value());
                                  }});
  }
};

TEST_F(ActuationFixture, ApprovedRequestReachesSensor) {
  attach_sensor_stub();
  ActuationService actuation = make();
  const ConsumerToken token = register_consumer("app");

  std::optional<ActuationService::Outcome> outcome;
  actuation.request_update(token, {7, 0}, UpdateAction::kSetIntervalMs, 500,
                           [&](ActuationService::Outcome o) { outcome = o; });
  scheduler.run_until(SimTime{} + Duration::millis(50));

  ASSERT_TRUE(outcome.has_value());
  EXPECT_NE(outcome->request_id, 0u);
  EXPECT_EQ(outcome->decision.admission, Admission::kApproved);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].target, (StreamId{7, 0}));
  EXPECT_EQ(received[0].value, 500u);
  EXPECT_EQ(received[0].request_id, outcome->request_id);
}

TEST_F(ActuationFixture, RequestCarriesTimestamp) {
  attach_sensor_stub();
  ActuationService actuation = make();
  const ConsumerToken token = register_consumer("app");
  actuation.request_update(token, {7, 0}, UpdateAction::kSetMode, 1, [](auto) {});
  scheduler.run_until(SimTime{} + Duration::millis(50));
  ASSERT_EQ(received.size(), 1u);
  // Stamped after the 5ms admission deliberation.
  EXPECT_GE(received[0].issued_at.ns, Duration::millis(5).ns);
}

TEST_F(ActuationFixture, DeniedRequestNeverTransmits) {
  attach_sensor_stub();
  ActuationService actuation = make();
  auth.grant_trust("guest", TrustLevel::kUntrusted);
  const ConsumerToken token = auth.register_consumer("guest", net::Address{1}).value().token;

  std::optional<ActuationService::Outcome> outcome;
  actuation.request_update(token, {7, 0}, UpdateAction::kSetIntervalMs, 500,
                           [&](ActuationService::Outcome o) { outcome = o; });
  scheduler.run_until(SimTime{} + Duration::millis(50));

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->request_id, 0u);
  EXPECT_EQ(outcome->decision.admission, Admission::kDenied);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(actuation.stats().denied, 1u);
}

TEST_F(ActuationFixture, AckCompletesRequest) {
  attach_sensor_stub();
  ActuationService actuation = make();
  const ConsumerToken token = register_consumer("app");

  std::optional<std::uint32_t> request_id;
  actuation.request_update(token, {7, 0}, UpdateAction::kSetIntervalMs, 500,
                           [&](ActuationService::Outcome o) { request_id = o.request_id; });
  std::vector<std::pair<std::uint32_t, bool>> completions;
  actuation.set_completion_observer([&](std::uint32_t id, bool acked, Duration) {
    completions.emplace_back(id, acked);
  });
  scheduler.run_until(SimTime{} + Duration::millis(20));
  ASSERT_TRUE(request_id.has_value());
  EXPECT_EQ(actuation.pending_count(), 1u);

  actuation.on_ack(*request_id, 7, scheduler.now());
  EXPECT_EQ(actuation.pending_count(), 0u);
  EXPECT_EQ(actuation.stats().acked, 1u);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0], std::make_pair(*request_id, true));
  EXPECT_EQ(actuation.ack_latency().count(), 1u);
}

TEST_F(ActuationFixture, AckFromWrongSensorIgnored) {
  attach_sensor_stub();
  ActuationService actuation = make();
  const ConsumerToken token = register_consumer("app");
  std::optional<std::uint32_t> request_id;
  actuation.request_update(token, {7, 0}, UpdateAction::kSetIntervalMs, 500,
                           [&](ActuationService::Outcome o) { request_id = o.request_id; });
  scheduler.run_until(SimTime{} + Duration::millis(20));
  actuation.on_ack(*request_id, 999, scheduler.now());
  EXPECT_EQ(actuation.pending_count(), 1u);
  EXPECT_EQ(actuation.stats().acked, 0u);
}

TEST_F(ActuationFixture, UnsolicitedAckIgnored) {
  ActuationService actuation = make();
  actuation.on_ack(424242, 7, scheduler.now());
  EXPECT_EQ(actuation.stats().acked, 0u);
}

TEST_F(ActuationFixture, RetransmitsUntilAck) {
  attach_sensor_stub();
  ActuationService actuation = make({.ack_timeout = Duration::millis(50), .max_retries = 2});
  const ConsumerToken token = register_consumer("app");
  actuation.request_update(token, {7, 0}, UpdateAction::kSetIntervalMs, 500, [](auto) {});
  // Never ack: initial + 2 retries = 3 transmissions, then expiry.
  scheduler.run_until(SimTime{} + Duration::seconds(2));
  EXPECT_EQ(received.size(), 3u);
  EXPECT_EQ(actuation.stats().retries, 2u);
  EXPECT_EQ(actuation.stats().expired, 1u);
  EXPECT_EQ(actuation.pending_count(), 0u);
}

TEST_F(ActuationFixture, AckDuringRetryWindowStopsRetries) {
  attach_sensor_stub();
  ActuationService actuation = make({.ack_timeout = Duration::millis(50), .max_retries = 5});
  const ConsumerToken token = register_consumer("app");
  std::optional<std::uint32_t> request_id;
  actuation.request_update(token, {7, 0}, UpdateAction::kSetIntervalMs, 500,
                           [&](ActuationService::Outcome o) { request_id = o.request_id; });
  scheduler.run_until(SimTime{} + Duration::millis(70));  // one retry happened
  actuation.on_ack(*request_id, 7, scheduler.now());
  scheduler.run_until(SimTime{} + Duration::seconds(2));
  EXPECT_EQ(received.size(), 2u);  // initial + 1 retry, then silence
  EXPECT_EQ(actuation.stats().expired, 0u);
}

TEST_F(ActuationFixture, RequestViaRpc) {
  attach_sensor_stub();
  ActuationService actuation = make();
  const ConsumerToken token = register_consumer("app");

  net::RpcNode caller(bus, "caller");
  std::optional<std::uint32_t> request_id;
  util::ByteWriter w(17);
  w.u64(token);
  w.u32(StreamId{7, 0}.packed());
  w.u8(static_cast<std::uint8_t>(UpdateAction::kSetIntervalMs));
  w.u32(750);
  caller.call(actuation.address(), ActuationService::kRequestUpdate, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                util::ByteReader r(result.value());
                request_id = r.u32();
                EXPECT_EQ(static_cast<Admission>(r.u8()), Admission::kApproved);
                EXPECT_EQ(r.u32(), 750u);
              });
  scheduler.run_until(SimTime{} + Duration::millis(50));
  ASSERT_TRUE(request_id.has_value());
  EXPECT_NE(*request_id, 0u);
  ASSERT_EQ(received.size(), 1u);
}

TEST_F(ActuationFixture, RequestIdsUnique) {
  attach_sensor_stub();
  ActuationService actuation = make();
  const ConsumerToken token = register_consumer("app");
  std::set<std::uint32_t> ids;
  for (int i = 0; i < 5; ++i) {
    actuation.request_update(token, {7, 0}, UpdateAction::kSetMode,
                             static_cast<std::uint32_t>(i),
                             [&](ActuationService::Outcome o) { ids.insert(o.request_id); });
  }
  scheduler.run_until(SimTime{} + Duration::millis(50));
  EXPECT_EQ(ids.size(), 5u);
}

}  // namespace
}  // namespace garnet::core
