#include "core/catalog.hpp"

#include <gtest/gtest.h>

namespace garnet::core {
namespace {

using util::SimTime;

TEST(Catalog, AdvertiseAndFind) {
  StreamCatalog catalog;
  catalog.advertise({1, 0}, "river-gauge-1", "water-level");
  const StreamInfo* info = catalog.find({1, 0});
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "river-gauge-1");
  EXPECT_EQ(info->stream_class, "water-level");
  EXPECT_TRUE(info->advertised);
  EXPECT_FALSE(info->derived);
}

TEST(Catalog, UnknownStreamIsNull) {
  StreamCatalog catalog;
  EXPECT_EQ(catalog.find({9, 9}), nullptr);
}

TEST(Catalog, NoteMessageAutoDetectsUnadvertised) {
  // Paper §4.2: pub/sub "permits un-configured data streams to be
  // detected" — a stream that just shows up becomes discoverable.
  StreamCatalog catalog;
  catalog.note_message({4, 2}, SimTime{100});
  const StreamInfo* info = catalog.find({4, 2});
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->advertised);
  EXPECT_EQ(info->messages, 1u);
  EXPECT_EQ(info->first_seen, SimTime{100});
}

TEST(Catalog, NoteMessageUpdatesCounters) {
  StreamCatalog catalog;
  catalog.note_message({4, 2}, SimTime{100});
  catalog.note_message({4, 2}, SimTime{200});
  const StreamInfo* info = catalog.find({4, 2});
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->messages, 2u);
  EXPECT_EQ(info->first_seen, SimTime{100});
  EXPECT_EQ(info->last_seen, SimTime{200});
}

TEST(Catalog, AdvertiseAfterDetectionKeepsCounts) {
  StreamCatalog catalog;
  catalog.note_message({4, 2}, SimTime{100});
  catalog.advertise({4, 2}, "late-label", "temperature");
  const StreamInfo* info = catalog.find({4, 2});
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->advertised);
  EXPECT_EQ(info->messages, 1u);
}

TEST(Catalog, DiscoverBySensor) {
  StreamCatalog catalog;
  catalog.advertise({1, 0}, "a", "temp");
  catalog.advertise({1, 1}, "b", "humidity");
  catalog.advertise({2, 0}, "c", "temp");
  StreamCatalog::Query q;
  q.sensor = 1;
  EXPECT_EQ(catalog.discover(q).size(), 2u);
}

TEST(Catalog, DiscoverByClass) {
  StreamCatalog catalog;
  catalog.advertise({1, 0}, "a", "temp");
  catalog.advertise({2, 0}, "c", "temp");
  catalog.advertise({3, 0}, "d", "salinity");
  StreamCatalog::Query q;
  q.stream_class = "temp";
  EXPECT_EQ(catalog.discover(q).size(), 2u);
}

TEST(Catalog, DiscoverCanExcludeUnadvertised) {
  StreamCatalog catalog;
  catalog.advertise({1, 0}, "a", "temp");
  catalog.note_message({2, 0}, SimTime{});
  StreamCatalog::Query all;
  EXPECT_EQ(catalog.discover(all).size(), 2u);
  StreamCatalog::Query advertised_only;
  advertised_only.include_unadvertised = false;
  EXPECT_EQ(catalog.discover(advertised_only).size(), 1u);
}

TEST(Catalog, DerivedAllocationDistinctAndReserved) {
  StreamCatalog catalog;
  const StreamId a = catalog.allocate_derived();
  const StreamId b = catalog.allocate_derived();
  EXPECT_NE(a, b);
  EXPECT_GE(a.sensor, kDerivedSensorBase);
  EXPECT_GE(b.sensor, kDerivedSensorBase);
}

TEST(Catalog, DerivedAllocationRollsToNextSensor) {
  StreamCatalog catalog;
  StreamId last{};
  for (int i = 0; i < 257; ++i) last = catalog.allocate_derived();
  EXPECT_EQ(last.sensor, kDerivedSensorBase + 1);
  EXPECT_EQ(last.stream, 0);
}

TEST(Catalog, DerivedStreamsFlaggedOnDetection) {
  StreamCatalog catalog;
  catalog.note_message({kDerivedSensorBase, 0}, SimTime{});
  const StreamInfo* info = catalog.find({kDerivedSensorBase, 0});
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->derived);
}

}  // namespace
}  // namespace garnet::core
