// Filtering Service: duplicate elimination and stream reconstruction
// (paper §4.2), including 16-bit sequence wraparound and the reorder
// buffer ablation (A2).
#include "core/filtering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

wireless::ReceptionReport make_report(StreamId id, SequenceNo seq,
                                      wireless::ReceiverId receiver = 1,
                                      std::string_view payload = "x") {
  DataMessage msg;
  msg.stream_id = id;
  msg.sequence = seq;
  msg.payload = util::to_bytes(payload);
  return wireless::ReceptionReport{receiver, -40.0, SimTime::zero(), encode(msg)};
}

struct FilteringFixture : ::testing::Test {
  sim::Scheduler scheduler;

  struct Harness {
    FilteringService service;
    std::vector<DataMessage> out;
    std::vector<ReceptionEvent> receptions;

    Harness(sim::Scheduler& sched, FilteringService::Config config) : service(sched, config) {
      service.set_message_sink([this](const DataMessage& m, SimTime) { out.push_back(m); });
      service.set_reception_sink([this](const ReceptionEvent& e) { receptions.push_back(e); });
    }
  };
};

TEST_F(FilteringFixture, ForwardsUniqueMessages) {
  Harness h(scheduler, {});
  for (SequenceNo seq = 0; seq < 5; ++seq) h.service.ingest(make_report({1, 0}, seq));
  ASSERT_EQ(h.out.size(), 5u);
  for (SequenceNo seq = 0; seq < 5; ++seq) EXPECT_EQ(h.out[seq].sequence, seq);
  EXPECT_EQ(h.service.stats().duplicates_dropped, 0u);
}

TEST_F(FilteringFixture, DropsDuplicateCopies) {
  Harness h(scheduler, {});
  // Three receivers heard the same transmission.
  h.service.ingest(make_report({1, 0}, 10, 1));
  h.service.ingest(make_report({1, 0}, 10, 2));
  h.service.ingest(make_report({1, 0}, 10, 3));
  EXPECT_EQ(h.out.size(), 1u);
  EXPECT_EQ(h.service.stats().duplicates_dropped, 2u);
}

TEST_F(FilteringFixture, ReceptionEventsIncludeDuplicates) {
  // The dedup discards copies, but every copy is location evidence.
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 10, 1));
  h.service.ingest(make_report({1, 0}, 10, 2));
  ASSERT_EQ(h.receptions.size(), 2u);
  EXPECT_EQ(h.receptions[0].receiver, 1u);
  EXPECT_EQ(h.receptions[1].receiver, 2u);
  EXPECT_EQ(h.receptions[0].sensor, 1u);
}

TEST_F(FilteringFixture, MalformedFramesCounted) {
  Harness h(scheduler, {});
  wireless::ReceptionReport bad{1, -40.0, SimTime::zero(), util::to_bytes("garbage!")};
  h.service.ingest(bad);
  EXPECT_EQ(h.out.size(), 0u);
  EXPECT_EQ(h.service.stats().malformed, 1u);
  EXPECT_TRUE(h.receptions.empty());  // no metadata from unverifiable frames
}

TEST_F(FilteringFixture, StreamsAreIndependent) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 5));
  h.service.ingest(make_report({1, 1}, 5));  // same sensor, different stream
  h.service.ingest(make_report({2, 0}, 5));  // different sensor
  EXPECT_EQ(h.out.size(), 3u);
  EXPECT_EQ(h.service.stats().streams_seen, 3u);
}

TEST_F(FilteringFixture, OutOfOrderWithinWindowAccepted) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 10));
  h.service.ingest(make_report({1, 0}, 8));  // late but new
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.service.stats().duplicates_dropped, 0u);
}

TEST_F(FilteringFixture, LateDuplicateStillDropped) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 8));
  h.service.ingest(make_report({1, 0}, 10));
  h.service.ingest(make_report({1, 0}, 8));  // duplicate of the first
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.service.stats().duplicates_dropped, 1u);
}

TEST_F(FilteringFixture, SequenceWraparound) {
  Harness h(scheduler, {});
  for (const SequenceNo seq : {SequenceNo{65534}, SequenceNo{65535}, SequenceNo{0},
                               SequenceNo{1}}) {
    h.service.ingest(make_report({1, 0}, seq));
  }
  EXPECT_EQ(h.out.size(), 4u);
  // Duplicate from before the wrap is still recognised.
  h.service.ingest(make_report({1, 0}, 65535));
  EXPECT_EQ(h.out.size(), 4u);
  EXPECT_EQ(h.service.stats().duplicates_dropped, 1u);
}

TEST_F(FilteringFixture, StaleBeyondWindowDropped) {
  FilteringService::Config config;
  config.dedup_window = 16;
  Harness h(scheduler, config);
  h.service.ingest(make_report({1, 0}, 1000));
  h.service.ingest(make_report({1, 0}, 900));  // 100 behind, window is 16
  EXPECT_EQ(h.out.size(), 1u);
  EXPECT_EQ(h.service.stats().stale_dropped, 1u);
}

TEST_F(FilteringFixture, SeenSetPrunedAsWindowAdvances) {
  FilteringService::Config config;
  config.dedup_window = 8;
  Harness h(scheduler, config);
  for (SequenceNo seq = 0; seq < 100; ++seq) h.service.ingest(make_report({1, 0}, seq));
  EXPECT_EQ(h.out.size(), 100u);
  // A duplicate inside the window is caught; far outside is stale.
  h.service.ingest(make_report({1, 0}, 97));
  EXPECT_EQ(h.service.stats().duplicates_dropped, 1u);
  h.service.ingest(make_report({1, 0}, 5));
  EXPECT_EQ(h.service.stats().stale_dropped, 1u);
}

TEST_F(FilteringFixture, ReorderBufferReleasesInSequence) {
  FilteringService::Config config;
  config.reorder_depth = 8;
  config.reorder_timeout = Duration::millis(50);
  Harness h(scheduler, config);
  h.service.ingest(make_report({1, 0}, 0));
  h.service.ingest(make_report({1, 0}, 2));  // held: gap at 1
  h.service.ingest(make_report({1, 0}, 3));  // held
  EXPECT_EQ(h.out.size(), 1u);
  h.service.ingest(make_report({1, 0}, 1));  // fills the gap
  ASSERT_EQ(h.out.size(), 4u);
  for (SequenceNo seq = 0; seq < 4; ++seq) EXPECT_EQ(h.out[seq].sequence, seq);
}

TEST_F(FilteringFixture, ReorderGapTimeoutSkipsMissing) {
  FilteringService::Config config;
  config.reorder_depth = 8;
  config.reorder_timeout = Duration::millis(20);
  Harness h(scheduler, config);
  h.service.ingest(make_report({1, 0}, 0));
  h.service.ingest(make_report({1, 0}, 2));  // 1 never arrives
  EXPECT_EQ(h.out.size(), 1u);
  scheduler.run_for(Duration::millis(25));
  ASSERT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.out[1].sequence, 2u);
}

TEST_F(FilteringFixture, ReorderOverflowForcesRelease) {
  FilteringService::Config config;
  config.reorder_depth = 4;
  config.reorder_timeout = Duration::seconds(100);  // never fires here
  Harness h(scheduler, config);
  h.service.ingest(make_report({1, 0}, 0));
  // Sequence 1 missing; pile up 2..6 to exceed depth 4.
  for (const SequenceNo seq : {SequenceNo{2}, SequenceNo{3}, SequenceNo{4}, SequenceNo{5},
                               SequenceNo{6}}) {
    h.service.ingest(make_report({1, 0}, seq));
  }
  // Overflow skipped the gap and released everything held.
  ASSERT_EQ(h.out.size(), 6u);
  EXPECT_EQ(h.out[1].sequence, 2u);
  EXPECT_EQ(h.out.back().sequence, 6u);
}

TEST_F(FilteringFixture, LateMessageAfterGapSkipDropsAsStaleNotCrash) {
  FilteringService::Config config;
  config.reorder_depth = 4;
  config.reorder_timeout = Duration::millis(10);
  Harness h(scheduler, config);
  h.service.ingest(make_report({1, 0}, 0));
  h.service.ingest(make_report({1, 0}, 2));
  scheduler.run_for(Duration::millis(15));  // gap skipped, 2 released
  EXPECT_EQ(h.out.size(), 2u);
  h.service.ingest(make_report({1, 0}, 1));  // finally arrives
  // Accepted as a late new message (still within the dedup window); it
  // sits behind the advanced release point until the gap timer frees it.
  scheduler.run_for(Duration::millis(15));
  EXPECT_EQ(h.out.size(), 3u);
}

TEST_F(FilteringFixture, ResetForgetsStreams) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 10));
  h.service.reset();
  h.service.ingest(make_report({1, 0}, 10));  // same seq, fresh state
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.service.stats().duplicates_dropped, 0u);
}

TEST_F(FilteringFixture, PayloadSurvivesFiltering) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 0, 1, "precious data"));
  ASSERT_EQ(h.out.size(), 1u);
  EXPECT_EQ(util::to_string(h.out[0].payload), "precious data");
}

TEST_F(FilteringFixture, StreamReportCountsAcceptedAndLost) {
  Harness h(scheduler, {});
  // Sequences 0,1,2 then 5,6: two frames (3 and 4) vanished on the air.
  for (const SequenceNo seq : {SequenceNo{0}, SequenceNo{1}, SequenceNo{2}, SequenceNo{5},
                               SequenceNo{6}}) {
    h.service.ingest(make_report({1, 0}, seq));
  }
  const auto reports = h.service.stream_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].accepted, 5u);
  EXPECT_EQ(reports[0].estimated_lost, 2u);
  EXPECT_EQ(reports[0].newest, 6u);
}

TEST_F(FilteringFixture, StreamReportLateFillReducesLoss) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 0));
  h.service.ingest(make_report({1, 0}, 2));
  EXPECT_EQ(h.service.stream_reports()[0].estimated_lost, 1u);
  h.service.ingest(make_report({1, 0}, 1));  // the "lost" frame limps in
  EXPECT_EQ(h.service.stream_reports()[0].estimated_lost, 0u);
}

TEST_F(FilteringFixture, StreamReportAcrossWraparound) {
  Harness h(scheduler, {});
  for (const SequenceNo seq : {SequenceNo{65534}, SequenceNo{65535}, SequenceNo{0},
                               SequenceNo{1}}) {
    h.service.ingest(make_report({1, 0}, seq));
  }
  const auto reports = h.service.stream_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].accepted, 4u);
  EXPECT_EQ(reports[0].estimated_lost, 0u);  // wrap is not loss
}

TEST_F(FilteringFixture, StreamReportPerStream) {
  Harness h(scheduler, {});
  h.service.ingest(make_report({1, 0}, 0));
  h.service.ingest(make_report({2, 0}, 10));
  h.service.ingest(make_report({2, 0}, 12));
  const auto reports = h.service.stream_reports();
  EXPECT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    if (report.id == (StreamId{2, 0})) {
      EXPECT_EQ(report.estimated_lost, 1u);
    }
    if (report.id == (StreamId{1, 0})) {
      EXPECT_EQ(report.estimated_lost, 0u);
    }
  }
}

// Property: whatever mix of duplication and bounded reordering the radio
// produces, each unique message is forwarded exactly once.
class FilteringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilteringProperty, ExactlyOnceUnderDuplicationAndReordering) {
  sim::Scheduler scheduler;
  FilteringService service(scheduler, {});
  std::size_t delivered = 0;
  std::set<SequenceNo> seen;
  service.set_message_sink([&](const DataMessage& m, SimTime) {
    ++delivered;
    EXPECT_TRUE(seen.insert(m.sequence).second) << "duplicate leaked: " << m.sequence;
  });

  util::Rng rng(GetParam());
  constexpr int kMessages = 400;

  // Build a randomly duplicated, locally shuffled arrival schedule.
  std::vector<std::pair<SequenceNo, wireless::ReceiverId>> arrivals;
  for (int seq = 0; seq < kMessages; ++seq) {
    const auto copies = 1 + rng.below(3);
    for (std::uint64_t c = 0; c < copies; ++c) {
      arrivals.emplace_back(static_cast<SequenceNo>(seq),
                            static_cast<wireless::ReceiverId>(c + 1));
    }
  }
  // Local shuffle: swap each element with one up to 8 positions away,
  // modelling radio jitter without violating the dedup window.
  for (std::size_t i = 0; i + 1 < arrivals.size(); ++i) {
    const std::size_t j = i + rng.below(std::min<std::uint64_t>(8, arrivals.size() - i));
    std::swap(arrivals[i], arrivals[j]);
  }

  for (const auto& [seq, receiver] : arrivals) {
    service.ingest(make_report({9, 3}, seq, receiver));
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(service.stats().duplicates_dropped, arrivals.size() - kMessages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilteringProperty, ::testing::Values(3u, 7u, 31u, 127u, 8191u));

}  // namespace
}  // namespace garnet::core
