#include "core/orphanage.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

struct OrphanageFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  Orphanage orphanage{bus, {.retention_per_stream = 4}};
  net::Address sender{99};

  void deliver(StreamId id, SequenceNo seq, SimTime heard = {},
               std::string_view payload = "orphan") {
    DataMessage msg;
    msg.stream_id = id;
    msg.sequence = seq;
    msg.payload = util::to_bytes(payload);
    bus.post(sender, orphanage.address(), kDataDelivery, encode(Delivery{msg, heard}));
    scheduler.run();
  }
};

TEST_F(OrphanageFixture, StoresUnclaimedData) {
  deliver({1, 0}, 0);
  EXPECT_EQ(orphanage.total_received(), 1u);
  const OrphanAnalysis* analysis = orphanage.analysis({1, 0});
  ASSERT_NE(analysis, nullptr);
  EXPECT_EQ(analysis->messages, 1u);
}

TEST_F(OrphanageFixture, RetentionBounded) {
  for (SequenceNo seq = 0; seq < 10; ++seq) deliver({1, 0}, seq);
  const OrphanAnalysis* analysis = orphanage.analysis({1, 0});
  ASSERT_NE(analysis, nullptr);
  EXPECT_EQ(analysis->messages, 10u);
  EXPECT_EQ(analysis->evicted, 6u);  // capacity 4

  const auto backlog = orphanage.claim({1, 0});
  ASSERT_EQ(backlog.size(), 4u);
  EXPECT_EQ(backlog.front().message.sequence, 6u);  // oldest retained
  EXPECT_EQ(backlog.back().message.sequence, 9u);
}

TEST_F(OrphanageFixture, ClaimEmptiesBacklog) {
  deliver({1, 0}, 0);
  deliver({1, 0}, 1);
  EXPECT_EQ(orphanage.claim({1, 0}).size(), 2u);
  EXPECT_TRUE(orphanage.claim({1, 0}).empty());
}

TEST_F(OrphanageFixture, ClaimRespectsMax) {
  for (SequenceNo seq = 0; seq < 4; ++seq) deliver({1, 0}, seq);
  EXPECT_EQ(orphanage.claim({1, 0}, 3).size(), 3u);
  EXPECT_EQ(orphanage.claim({1, 0}).size(), 1u);
}

TEST_F(OrphanageFixture, ClaimUnknownStreamEmpty) {
  EXPECT_TRUE(orphanage.claim({9, 9}).empty());
}

TEST_F(OrphanageFixture, AnalysisTracksRateAndSizes) {
  deliver({1, 0}, 0, SimTime{} + Duration::seconds(0), "abcd");
  deliver({1, 0}, 1, SimTime{} + Duration::seconds(1), "abcdefgh");
  deliver({1, 0}, 2, SimTime{} + Duration::seconds(2), "abcd");
  const OrphanAnalysis* analysis = orphanage.analysis({1, 0});
  ASSERT_NE(analysis, nullptr);
  EXPECT_NEAR(analysis->arrival_rate_hz, 1.0, 0.01);
  EXPECT_NEAR(analysis->mean_payload_bytes, (4 + 8 + 4) / 3.0, 0.01);
}

TEST_F(OrphanageFixture, StreamsTrackedIndependently) {
  deliver({1, 0}, 0);
  deliver({2, 0}, 0);
  deliver({2, 0}, 1);
  EXPECT_EQ(orphanage.report().size(), 2u);
  EXPECT_EQ(orphanage.analysis({1, 0})->messages, 1u);
  EXPECT_EQ(orphanage.analysis({2, 0})->messages, 2u);
}

TEST_F(OrphanageFixture, IgnoresNonDeliveryEnvelopes) {
  bus.post(sender, orphanage.address(), kStateChange, util::to_bytes("noise"));
  scheduler.run();
  EXPECT_EQ(orphanage.total_received(), 0u);
}

TEST_F(OrphanageFixture, IgnoresMalformedDeliveries) {
  bus.post(sender, orphanage.address(), kDataDelivery, util::to_bytes("junk"));
  scheduler.run();
  EXPECT_EQ(orphanage.total_received(), 0u);
}

TEST_F(OrphanageFixture, BacklogFetchableViaRpc) {
  deliver({1, 0}, 0);
  deliver({1, 0}, 1);

  net::RpcNode caller(bus, "claimer");
  std::vector<Delivery> fetched;
  util::ByteWriter w(6);
  w.u32(StreamId{1, 0}.packed());
  w.u16(10);
  caller.call(orphanage.address(), Orphanage::kFetchBacklog, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                util::ByteReader r(result.value());
                const std::uint16_t n = r.u16();
                for (std::uint16_t i = 0; i < n; ++i) {
                  const std::uint16_t len = r.u16();
                  const util::Bytes one = r.raw(len);
                  const auto delivery = decode_delivery(one);
                  ASSERT_TRUE(delivery.ok());
                  fetched.push_back(delivery.value());
                }
              });
  scheduler.run();

  ASSERT_EQ(fetched.size(), 2u);
  EXPECT_EQ(fetched[0].message.sequence, 0u);
  EXPECT_EQ(fetched[1].message.sequence, 1u);
}

}  // namespace
}  // namespace garnet::core
