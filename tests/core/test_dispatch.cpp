#include "core/dispatch.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

struct DispatchFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  AuthService auth{{}};
  StreamCatalog catalog;
  DispatchingService dispatch{bus, auth, catalog};

  struct FakeConsumer {
    net::Address address;
    std::vector<Delivery> deliveries;

    FakeConsumer(net::MessageBus& bus, const std::string& name) {
      address = bus.add_endpoint(name, [this](net::Envelope e) {
        if (e.type != kDataDelivery) return;
        const auto decoded = decode_delivery(e.payload);
        ASSERT_TRUE(decoded.ok());
        deliveries.push_back(decoded.value());
      });
    }
  };

  DataMessage make_message(StreamId id, SequenceNo seq = 0) {
    DataMessage msg;
    msg.stream_id = id;
    msg.sequence = seq;
    msg.payload = util::to_bytes("data");
    return msg;
  }
};

TEST_F(DispatchFixture, DeliversToExactSubscriber) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();

  ASSERT_EQ(consumer.deliveries.size(), 1u);
  EXPECT_EQ(consumer.deliveries[0].message.stream_id, (StreamId{1, 0}));
}

TEST_F(DispatchFixture, FansOutToAllSubscribers) {
  FakeConsumer c1(bus, "c1");
  FakeConsumer c2(bus, "c2");
  FakeConsumer c3(bus, "c3");
  dispatch.subscribe(c1.address, StreamPattern::exact({1, 0}));
  dispatch.subscribe(c2.address, StreamPattern::all_of(1));
  dispatch.subscribe(c3.address, StreamPattern::everything());

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();

  EXPECT_EQ(c1.deliveries.size(), 1u);
  EXPECT_EQ(c2.deliveries.size(), 1u);
  EXPECT_EQ(c3.deliveries.size(), 1u);
  EXPECT_EQ(dispatch.stats().copies_delivered, 3u);
}

TEST_F(DispatchFixture, NonMatchingSubscriberNotDelivered) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({2, 0}));
  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();
  EXPECT_TRUE(consumer.deliveries.empty());
}

TEST_F(DispatchFixture, UnclaimedGoesToOrphanSink) {
  FakeConsumer orphanage(bus, "orphanage");
  dispatch.set_orphan_sink(orphanage.address);

  dispatch.on_filtered(make_message({5, 5}), scheduler.now());
  scheduler.run();

  EXPECT_EQ(orphanage.deliveries.size(), 1u);
  EXPECT_EQ(dispatch.stats().orphaned, 1u);
}

TEST_F(DispatchFixture, ClaimedDataSkipsOrphanage) {
  FakeConsumer orphanage(bus, "orphanage");
  FakeConsumer consumer(bus, "c1");
  dispatch.set_orphan_sink(orphanage.address);
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();

  EXPECT_TRUE(orphanage.deliveries.empty());
  EXPECT_EQ(consumer.deliveries.size(), 1u);
}

TEST_F(DispatchFixture, UnsubscribeStopsDelivery) {
  FakeConsumer consumer(bus, "c1");
  const SubscriptionId id = dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));
  dispatch.on_filtered(make_message({1, 0}, 0), scheduler.now());
  scheduler.run();
  EXPECT_TRUE(dispatch.unsubscribe(id));
  dispatch.on_filtered(make_message({1, 0}, 1), scheduler.now());
  scheduler.run();
  EXPECT_EQ(consumer.deliveries.size(), 1u);
}

TEST_F(DispatchFixture, DropConsumerRemovesAllSubscriptions) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));
  dispatch.subscribe(consumer.address, StreamPattern::all_of(2));
  EXPECT_EQ(dispatch.drop_consumer(consumer.address), 2u);
  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();
  EXPECT_TRUE(consumer.deliveries.empty());
}

TEST_F(DispatchFixture, CatalogNotesEveryMessage) {
  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  dispatch.on_filtered(make_message({1, 0}, 1), scheduler.now());
  EXPECT_NE(catalog.find({1, 0}), nullptr);
  EXPECT_EQ(catalog.find({1, 0})->messages, 2u);
}

TEST_F(DispatchFixture, AckObserverFires) {
  std::vector<std::uint32_t> acks;
  dispatch.set_ack_observer([&](std::uint32_t request_id, SensorId sensor, SimTime) {
    acks.push_back(request_id);
    EXPECT_EQ(sensor, 1u);
  });
  DataMessage msg = make_message({1, 0});
  msg.header.set(HeaderFlag::kAckPresent);
  msg.ack_request_id = 321;
  dispatch.on_filtered(msg, scheduler.now());
  EXPECT_EQ(acks, (std::vector<std::uint32_t>{321}));
  EXPECT_EQ(dispatch.stats().acks_observed, 1u);
}

TEST_F(DispatchFixture, FirstHeardTimePropagated) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));
  const SimTime heard = SimTime{} + Duration::millis(123);
  dispatch.on_filtered(make_message({1, 0}), heard);
  scheduler.run();
  ASSERT_EQ(consumer.deliveries.size(), 1u);
  EXPECT_EQ(consumer.deliveries[0].first_heard, heard);
}

TEST_F(DispatchFixture, SubscribeViaRpc) {
  FakeConsumer consumer(bus, "c1");
  const auto identity = auth.register_consumer("c1", consumer.address);
  ASSERT_TRUE(identity.ok());

  net::RpcNode caller(bus, "caller");
  bool subscribed = false;
  util::ByteWriter w(16);
  w.u64(identity.value().token);
  w.u64(StreamPattern::exact({1, 0}).packed());
  caller.call(dispatch.address(), DispatchingService::kSubscribe, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                subscribed = true;
              });
  scheduler.run();
  ASSERT_TRUE(subscribed);

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();
  EXPECT_EQ(consumer.deliveries.size(), 1u);
}

TEST_F(DispatchFixture, SubscribeWithBadTokenRejected) {
  net::RpcNode caller(bus, "caller");
  std::optional<net::RpcError> error;
  util::ByteWriter w(16);
  w.u64(0xBADBAD);
  w.u64(StreamPattern::everything().packed());
  caller.call(dispatch.address(), DispatchingService::kSubscribe, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_FALSE(result.ok());
                error = result.error();
              });
  scheduler.run();
  EXPECT_EQ(error, net::RpcError::kRemoteFailure);
}

TEST_F(DispatchFixture, DerivedPublishDeliveredToSubscribers) {
  FakeConsumer consumer(bus, "c1");
  const StreamId derived = catalog.allocate_derived();
  dispatch.subscribe(consumer.address, StreamPattern::exact(derived));

  DataMessage msg = make_message(derived);
  msg.header.set(HeaderFlag::kDerived);
  bus.post(consumer.address, dispatch.address(), kDerivedPublish, encode(msg));
  scheduler.run();

  EXPECT_EQ(consumer.deliveries.size(), 1u);
  EXPECT_EQ(dispatch.stats().derived_in, 1u);
}

TEST_F(DispatchFixture, DerivedPublishWithoutFlagRejected) {
  const StreamId derived = catalog.allocate_derived();
  const DataMessage msg = make_message(derived);  // kDerived flag missing
  bus.post(net::Address{99}, dispatch.address(), kDerivedPublish, encode(msg));
  scheduler.run();
  EXPECT_EQ(dispatch.stats().derived_in, 0u);
  EXPECT_EQ(dispatch.stats().rejected_publishes, 1u);
}

TEST_F(DispatchFixture, MalformedDerivedPublishRejected) {
  bus.post(net::Address{99}, dispatch.address(), kDerivedPublish, util::to_bytes("junk"));
  scheduler.run();
  EXPECT_EQ(dispatch.stats().rejected_publishes, 1u);
}

}  // namespace
}  // namespace garnet::core
