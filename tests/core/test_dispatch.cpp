#include "core/dispatch.hpp"

#include <gtest/gtest.h>

#include "core/orphanage.hpp"
#include "sim/scheduler.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

struct DispatchFixture : ::testing::Test {
  static net::MessageBus::Config quiet_config() {
    net::MessageBus::Config config;
    config.max_jitter = Duration{};  // keep same-tick deliveries in post order
    return config;
  }

  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, quiet_config()};
  AuthService auth{{}};
  StreamCatalog catalog;
  DispatchingService dispatch{bus, auth, catalog};

  struct FakeConsumer {
    net::Address address;
    std::vector<Delivery> deliveries;

    FakeConsumer(net::MessageBus& bus, const std::string& name) {
      address = bus.add_endpoint(name, [this](net::Envelope e) {
        if (e.type != kDataDelivery) return;
        const auto decoded = decode_delivery(e.payload);
        ASSERT_TRUE(decoded.ok());
        deliveries.push_back(decoded.value());
      });
    }
  };

  DataMessage make_message(StreamId id, SequenceNo seq = 0) {
    DataMessage msg;
    msg.stream_id = id;
    msg.sequence = seq;
    msg.payload = util::to_bytes("data");
    return msg;
  }
};

TEST_F(DispatchFixture, DeliversToExactSubscriber) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();

  ASSERT_EQ(consumer.deliveries.size(), 1u);
  EXPECT_EQ(consumer.deliveries[0].message.stream_id, (StreamId{1, 0}));
}

TEST_F(DispatchFixture, FansOutToAllSubscribers) {
  FakeConsumer c1(bus, "c1");
  FakeConsumer c2(bus, "c2");
  FakeConsumer c3(bus, "c3");
  dispatch.subscribe(c1.address, StreamPattern::exact({1, 0}));
  dispatch.subscribe(c2.address, StreamPattern::all_of(1));
  dispatch.subscribe(c3.address, StreamPattern::everything());

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();

  EXPECT_EQ(c1.deliveries.size(), 1u);
  EXPECT_EQ(c2.deliveries.size(), 1u);
  EXPECT_EQ(c3.deliveries.size(), 1u);
  EXPECT_EQ(dispatch.stats().copies_delivered, 3u);
}

TEST_F(DispatchFixture, NonMatchingSubscriberNotDelivered) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({2, 0}));
  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();
  EXPECT_TRUE(consumer.deliveries.empty());
}

TEST_F(DispatchFixture, UnclaimedGoesToOrphanSink) {
  FakeConsumer orphanage(bus, "orphanage");
  dispatch.set_orphan_sink(orphanage.address);

  dispatch.on_filtered(make_message({5, 5}), scheduler.now());
  scheduler.run();

  EXPECT_EQ(orphanage.deliveries.size(), 1u);
  EXPECT_EQ(dispatch.stats().orphaned, 1u);
}

TEST_F(DispatchFixture, ClaimedDataSkipsOrphanage) {
  FakeConsumer orphanage(bus, "orphanage");
  FakeConsumer consumer(bus, "c1");
  dispatch.set_orphan_sink(orphanage.address);
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();

  EXPECT_TRUE(orphanage.deliveries.empty());
  EXPECT_EQ(consumer.deliveries.size(), 1u);
}

TEST_F(DispatchFixture, UnsubscribeStopsDelivery) {
  FakeConsumer consumer(bus, "c1");
  const SubscriptionId id = dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));
  dispatch.on_filtered(make_message({1, 0}, 0), scheduler.now());
  scheduler.run();
  EXPECT_TRUE(dispatch.unsubscribe(id));
  dispatch.on_filtered(make_message({1, 0}, 1), scheduler.now());
  scheduler.run();
  EXPECT_EQ(consumer.deliveries.size(), 1u);
}

TEST_F(DispatchFixture, DropConsumerRemovesAllSubscriptions) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));
  dispatch.subscribe(consumer.address, StreamPattern::all_of(2));
  EXPECT_EQ(dispatch.drop_consumer(consumer.address), 2u);
  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();
  EXPECT_TRUE(consumer.deliveries.empty());
}

TEST_F(DispatchFixture, CatalogNotesEveryMessage) {
  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  dispatch.on_filtered(make_message({1, 0}, 1), scheduler.now());
  EXPECT_NE(catalog.find({1, 0}), nullptr);
  EXPECT_EQ(catalog.find({1, 0})->messages, 2u);
}

TEST_F(DispatchFixture, AckObserverFires) {
  std::vector<std::uint32_t> acks;
  dispatch.set_ack_observer([&](std::uint32_t request_id, SensorId sensor, SimTime) {
    acks.push_back(request_id);
    EXPECT_EQ(sensor, 1u);
  });
  DataMessage msg = make_message({1, 0});
  msg.header.set(HeaderFlag::kAckPresent);
  msg.ack_request_id = 321;
  dispatch.on_filtered(msg, scheduler.now());
  EXPECT_EQ(acks, (std::vector<std::uint32_t>{321}));
  EXPECT_EQ(dispatch.stats().acks_observed, 1u);
}

TEST_F(DispatchFixture, FirstHeardTimePropagated) {
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));
  const SimTime heard = SimTime{} + Duration::millis(123);
  dispatch.on_filtered(make_message({1, 0}), heard);
  scheduler.run();
  ASSERT_EQ(consumer.deliveries.size(), 1u);
  EXPECT_EQ(consumer.deliveries[0].first_heard, heard);
}

TEST_F(DispatchFixture, SubscribeViaRpc) {
  FakeConsumer consumer(bus, "c1");
  const auto identity = auth.register_consumer("c1", consumer.address);
  ASSERT_TRUE(identity.ok());

  net::RpcNode caller(bus, "caller");
  bool subscribed = false;
  util::ByteWriter w(16);
  w.u64(identity.value().token);
  w.u64(StreamPattern::exact({1, 0}).packed());
  caller.call(dispatch.address(), DispatchingService::kSubscribe, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                subscribed = true;
              });
  scheduler.run();
  ASSERT_TRUE(subscribed);

  dispatch.on_filtered(make_message({1, 0}), scheduler.now());
  scheduler.run();
  EXPECT_EQ(consumer.deliveries.size(), 1u);
}

TEST_F(DispatchFixture, SubscribeWithBadTokenRejected) {
  net::RpcNode caller(bus, "caller");
  std::optional<net::RpcError> error;
  util::ByteWriter w(16);
  w.u64(0xBADBAD);
  w.u64(StreamPattern::everything().packed());
  caller.call(dispatch.address(), DispatchingService::kSubscribe, std::move(w).take(),
              net::CallOptions{}, [&](net::RpcResult result) {
                ASSERT_FALSE(result.ok());
                error = result.error();
              });
  scheduler.run();
  EXPECT_EQ(error, net::RpcError::kRemoteFailure);
}

TEST_F(DispatchFixture, DerivedPublishDeliveredToSubscribers) {
  FakeConsumer consumer(bus, "c1");
  const StreamId derived = catalog.allocate_derived();
  dispatch.subscribe(consumer.address, StreamPattern::exact(derived));

  DataMessage msg = make_message(derived);
  msg.header.set(HeaderFlag::kDerived);
  bus.post(consumer.address, dispatch.address(), kDerivedPublish, encode(msg));
  scheduler.run();

  EXPECT_EQ(consumer.deliveries.size(), 1u);
  EXPECT_EQ(dispatch.stats().derived_in, 1u);
}

TEST_F(DispatchFixture, DerivedPublishWithoutFlagRejected) {
  const StreamId derived = catalog.allocate_derived();
  const DataMessage msg = make_message(derived);  // kDerived flag missing
  bus.post(net::Address{99}, dispatch.address(), kDerivedPublish, encode(msg));
  scheduler.run();
  EXPECT_EQ(dispatch.stats().derived_in, 0u);
  EXPECT_EQ(dispatch.stats().rejected_publishes, 1u);
}

TEST_F(DispatchFixture, MalformedDerivedPublishRejected) {
  bus.post(net::Address{99}, dispatch.address(), kDerivedPublish, util::to_bytes("junk"));
  scheduler.run();
  EXPECT_EQ(dispatch.stats().rejected_publishes, 1u);
}


// --- credit-based flow control --------------------------------------------

/// Flow-control harness: a real Orphanage serves as the quarantine stash
/// so resume rounds exercise the genuine kFetchBacklog wire path.
struct FlowFixture : DispatchFixture {
  Orphanage orphanage{bus, {}};

  void enable_flow(std::uint32_t window, std::uint32_t resume_threshold = 0) {
    dispatch.set_orphan_sink(orphanage.address());
    FlowControlConfig flow;
    flow.credit_window = window;
    flow.resume_threshold = resume_threshold;
    dispatch.set_flow_control(flow);
  }

  /// A consumer replenishment ack, as core::Consumer::send_credit sends.
  void send_credits(net::Address consumer, std::uint32_t count) {
    util::ByteWriter w(4);
    w.u32(count);
    bus.post(consumer, dispatch.address(), kDeliveryCredit, util::take_shared(std::move(w)));
    scheduler.run();
  }

  std::vector<SequenceNo> sequences(const FakeConsumer& consumer) const {
    std::vector<SequenceNo> seqs;
    for (const auto& d : consumer.deliveries) seqs.push_back(d.message.sequence);
    return seqs;
  }
};

TEST_F(FlowFixture, ExhaustedWindowQuarantinesAndShedsToStash) {
  enable_flow(/*window=*/2);
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  for (SequenceNo seq = 0; seq < 5; ++seq) {
    dispatch.on_filtered(make_message({1, 0}, seq), scheduler.now());
  }
  scheduler.run();

  // Two copies spent the window; the remaining three were quarantined
  // into the stash, not posted.
  EXPECT_EQ(sequences(consumer), (std::vector<SequenceNo>{0, 1}));
  EXPECT_TRUE(dispatch.quarantined(consumer.address));
  EXPECT_EQ(dispatch.credits(consumer.address), 0u);
  EXPECT_EQ(dispatch.stats().quarantines, 1u);
  EXPECT_EQ(dispatch.stats().credits_exhausted, 1u);
  EXPECT_EQ(dispatch.stats().quarantine_sheds, 3u);
  EXPECT_EQ(orphanage.total_received(), 3u);
}

TEST_F(FlowFixture, SlowConsumerDoesNotStallTheFastOne) {
  enable_flow(/*window=*/2);
  FakeConsumer slow(bus, "slow");
  FakeConsumer fast(bus, "fast");
  dispatch.subscribe(slow.address, StreamPattern::exact({1, 0}));
  dispatch.subscribe(fast.address, StreamPattern::exact({1, 0}));

  for (SequenceNo seq = 0; seq < 6; ++seq) {
    dispatch.on_filtered(make_message({1, 0}, seq), scheduler.now());
    scheduler.run();
    // Only the fast consumer acks each delivery.
    if (!fast.deliveries.empty()) send_credits(fast.address, 1);
  }

  EXPECT_EQ(fast.deliveries.size(), 6u);  // never throttled
  EXPECT_EQ(slow.deliveries.size(), 2u);  // window spent, then quarantined
  EXPECT_TRUE(dispatch.quarantined(slow.address));
  EXPECT_FALSE(dispatch.quarantined(fast.address));
}

TEST_F(FlowFixture, CreditsResumeWithDuplicateFreeRedelivery) {
  enable_flow(/*window=*/3, /*resume_threshold=*/1);
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  for (SequenceNo seq = 0; seq < 5; ++seq) {
    dispatch.on_filtered(make_message({1, 0}, seq), scheduler.now());
  }
  scheduler.run();
  ASSERT_TRUE(dispatch.quarantined(consumer.address));

  // The consumer catches up and acks everything it processed; the
  // dispatcher replays the stashed tail — each stashed copy exactly once.
  send_credits(consumer.address, 3);

  EXPECT_FALSE(dispatch.quarantined(consumer.address));
  EXPECT_EQ(sequences(consumer), (std::vector<SequenceNo>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dispatch.stats().resumes, 1u);
  EXPECT_EQ(dispatch.stats().resume_redelivered, 2u);
  EXPECT_EQ(dispatch.stats().resume_discarded, 0u);
}

TEST_F(FlowFixture, ResumeWaitsForTheThreshold) {
  enable_flow(/*window=*/4, /*resume_threshold=*/3);
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  for (SequenceNo seq = 0; seq < 6; ++seq) {
    dispatch.on_filtered(make_message({1, 0}, seq), scheduler.now());
  }
  scheduler.run();
  ASSERT_TRUE(dispatch.quarantined(consumer.address));

  send_credits(consumer.address, 2);  // below threshold: still quarantined
  EXPECT_TRUE(dispatch.quarantined(consumer.address));
  EXPECT_EQ(dispatch.stats().resumes, 0u);

  send_credits(consumer.address, 1);  // threshold reached: replay runs
  EXPECT_FALSE(dispatch.quarantined(consumer.address));
  EXPECT_EQ(sequences(consumer), (std::vector<SequenceNo>{0, 1, 2, 3, 4, 5}));
}

TEST_F(FlowFixture, DropConsumerDuringResumeReturnsFramesToStash) {
  // The race from the issue: a resume round is in flight when
  // drop_consumer retires the flow. The already-fetched frames must not
  // be delivered to the gone consumer *or* lost — they go back to the
  // stash, where the next claimant can find them.
  enable_flow(/*window=*/2, /*resume_threshold=*/1);
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  for (SequenceNo seq = 0; seq < 5; ++seq) {
    dispatch.on_filtered(make_message({1, 0}, seq), scheduler.now());
  }
  scheduler.run();
  ASSERT_TRUE(dispatch.quarantined(consumer.address));
  const std::uint64_t stashed = orphanage.total_received();
  ASSERT_EQ(stashed, 3u);

  // Replenish (starts the async kFetchBacklog round) and drop the
  // consumer while the fetch is still on the wire: step the clock only
  // until the resume round has *started*, well before its round-trip
  // completes, then retire the flow.
  util::ByteWriter w(4);
  w.u32(2);
  bus.post(consumer.address, dispatch.address(), kDeliveryCredit, util::take_shared(std::move(w)));
  for (int i = 0; i < 100 && dispatch.stats().resumes == 0; ++i) {
    scheduler.run_until(scheduler.now() + Duration::micros(20));
  }
  ASSERT_EQ(dispatch.stats().resumes, 1u);
  dispatch.drop_consumer(consumer.address);
  scheduler.run();

  // Nothing beyond the pre-quarantine deliveries reached the consumer...
  EXPECT_EQ(sequences(consumer), (std::vector<SequenceNo>{0, 1}));
  // ...and every fetched frame was re-admitted to the orphanage.
  EXPECT_EQ(dispatch.stats().resume_returned + dispatch.stats().resume_discarded +
                dispatch.stats().resume_redelivered,
            stashed);
  EXPECT_EQ(dispatch.stats().resume_redelivered, 0u);
  EXPECT_EQ(orphanage.total_received(), stashed + dispatch.stats().resume_returned);
  // The flow state is gone: a fresh subscription starts a fresh window.
  EXPECT_FALSE(dispatch.quarantined(consumer.address));
  EXPECT_EQ(dispatch.credits(consumer.address), 2u);
}

TEST_F(FlowFixture, ReexhaustionDuringResumeRestashesTheRemainder) {
  // The consumer comes back with fewer credits than the backlog is deep:
  // the replay delivers what the window allows and re-stashes the rest,
  // re-entering quarantine without losing anything.
  enable_flow(/*window=*/2, /*resume_threshold=*/1);
  FakeConsumer consumer(bus, "c1");
  dispatch.subscribe(consumer.address, StreamPattern::exact({1, 0}));

  for (SequenceNo seq = 0; seq < 8; ++seq) {
    dispatch.on_filtered(make_message({1, 0}, seq), scheduler.now());
  }
  scheduler.run();
  ASSERT_EQ(dispatch.stats().quarantine_sheds, 6u);

  send_credits(consumer.address, 2);  // backlog is 6 deep; only 2 credits

  EXPECT_EQ(sequences(consumer), (std::vector<SequenceNo>{0, 1, 2, 3}));
  EXPECT_TRUE(dispatch.quarantined(consumer.address));
  EXPECT_EQ(dispatch.stats().resume_redelivered, 2u);
  EXPECT_GE(dispatch.stats().resume_returned, 1u);

  // Window-sized replenishments finish the job — still no duplicates.
  for (int round = 0; round < 4 && dispatch.quarantined(consumer.address); ++round) {
    send_credits(consumer.address, 2);
  }
  EXPECT_EQ(sequences(consumer), (std::vector<SequenceNo>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_FALSE(dispatch.quarantined(consumer.address));
}

TEST_F(FlowFixture, SubscribeReplyCarriesTheCreditWindow) {
  enable_flow(/*window=*/7);
  net::RpcNode caller(bus, "caller");
  const auto identity = auth.register_consumer("caller", caller.address()).value();

  util::ByteWriter w(24);
  w.u64(identity.token);
  w.u64(StreamPattern::everything().packed());
  w.u32(0);
  w.u32(0);
  std::optional<std::uint32_t> window;
  caller.call(dispatch.address(), DispatchingService::kSubscribe, std::move(w).take(), {},
              [&](net::RpcResult result) {
                ASSERT_TRUE(result.ok());
                util::ByteReader r(result.value());
                [[maybe_unused]] const auto subscription_id = r.u64();
                window = r.u32();
              });
  scheduler.run();
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(*window, 7u);
}

}  // namespace
}  // namespace garnet::core
