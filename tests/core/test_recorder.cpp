// Stream recording and timing-preserving replay.
#include "core/recorder.hpp"

#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet::core {
namespace {

using util::Duration;
using util::SimTime;

TEST(Recording, StreamsAndSpan) {
  Recording recording;
  DataMessage a;
  a.stream_id = {1, 0};
  DataMessage b;
  b.stream_id = {2, 0};
  recording.append({a, SimTime{} + Duration::seconds(1)});
  recording.append({b, SimTime{} + Duration::seconds(2)});
  recording.append({a, SimTime{} + Duration::seconds(4)});

  EXPECT_EQ(recording.size(), 3u);
  EXPECT_EQ(recording.streams().size(), 2u);
  EXPECT_EQ(recording.stream({1, 0}).size(), 2u);
  EXPECT_EQ(recording.span().ns, Duration::seconds(3).ns);
}

TEST(Replay, PreservesRelativeTiming) {
  sim::Scheduler scheduler;
  Recording recording;
  DataMessage msg;
  msg.stream_id = {1, 0};
  for (int i = 0; i < 4; ++i) {
    msg.sequence = static_cast<SequenceNo>(i);
    recording.append({msg, SimTime{} + Duration::millis(100 * i)});
  }

  std::vector<std::int64_t> fire_times;
  const SimTime last = replay(scheduler, recording,
                              [&](const Delivery&) { fire_times.push_back(scheduler.now().ns); });
  scheduler.run();

  ASSERT_EQ(fire_times.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(fire_times[i], Duration::millis(100 * i).ns);
  EXPECT_EQ(last.ns, Duration::millis(300).ns);
}

TEST(Replay, SpeedScalesGaps) {
  sim::Scheduler scheduler;
  Recording recording;
  DataMessage msg;
  msg.stream_id = {1, 0};
  recording.append({msg, SimTime{}});
  recording.append({msg, SimTime{} + Duration::seconds(10)});

  std::vector<std::int64_t> fire_times;
  replay(scheduler, recording, [&](const Delivery&) { fire_times.push_back(scheduler.now().ns); },
         /*speed=*/5.0);
  scheduler.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[1], Duration::seconds(2).ns);  // 10s compressed 5x
}

TEST(Replay, EmptyRecordingIsNoop) {
  sim::Scheduler scheduler;
  const Recording recording;
  const SimTime last = replay(scheduler, recording, [](const Delivery&) { FAIL(); });
  EXPECT_EQ(last, scheduler.now());
  scheduler.run();
}

TEST(Recorder, TransparentlyChainsHandler) {
  Runtime::Config config;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 1;
  spec.interval_ms = 100;
  runtime.deploy_population(spec);

  Consumer consumer(runtime.bus(), "consumer.archiver");
  runtime.provision(consumer, "archiver");
  std::size_t app_saw = 0;
  consumer.set_data_handler([&](const Delivery&) { ++app_saw; });
  StreamRecorder recorder(consumer);  // chained AFTER the app handler set
  consumer.subscribe(StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(3));

  EXPECT_GT(app_saw, 10u);                                 // app still served
  EXPECT_EQ(recorder.recording().size(), app_saw);          // archive complete
  EXPECT_GT(recorder.recording().span().ns, 0);
}

TEST(Recorder, ReplayAsDerivedStreamReachesSubscribers) {
  Runtime::Config config;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 1;
  spec.interval_ms = 200;
  runtime.deploy_population(spec);

  // Record 5 seconds of live data.
  Consumer archiver(runtime.bus(), "consumer.archiver");
  runtime.provision(archiver, "archiver");
  StreamRecorder recorder(archiver);
  archiver.subscribe(StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));
  runtime.field().stop_all();
  const std::size_t recorded = recorder.recording().size();
  ASSERT_GT(recorded, 5u);

  // Replay the archive as a derived stream; an analyst subscribes to it.
  const StreamId archive = runtime.create_derived_stream("archive.1", "replay");
  Consumer analyst(runtime.bus(), "consumer.analyst");
  runtime.provision(analyst, "analyst");
  std::size_t replayed = 0;
  analyst.set_data_handler([&](const Delivery& d) {
    ++replayed;
    EXPECT_TRUE(d.message.header.has(HeaderFlag::kDerived));
    EXPECT_TRUE(d.message.header.has(HeaderFlag::kFused));
  });
  analyst.subscribe(StreamPattern::exact(archive));
  runtime.run_for(Duration::millis(20));

  replay_as_stream(runtime.scheduler(), recorder.recording(), archiver, archive, /*speed=*/10.0);
  runtime.run_for(Duration::seconds(2));

  EXPECT_EQ(replayed, recorded);
}

}  // namespace
}  // namespace garnet::core
