// Catalog facade: advertising and discovery over the fixed network.
#include "core/catalog_service.hpp"

#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet::core {
namespace {

using util::Duration;

struct CatalogServiceFixture : ::testing::Test {
  Runtime runtime;
  Consumer consumer{runtime.bus(), "consumer.app"};

  CatalogServiceFixture() { runtime.provision(consumer, "app"); }
};

TEST_F(CatalogServiceFixture, AdvertiseThenDiscoverByClass) {
  consumer.advertise({5, 0}, "river-gauge", "water-level");
  runtime.run_for(Duration::millis(10));

  std::optional<std::vector<StreamInfo>> found;
  consumer.discover({.sensor = std::nullopt, .stream_class = "water-level",
                     .include_unadvertised = true},
                    [&](std::vector<StreamInfo> streams) { found = std::move(streams); });
  runtime.run_for(Duration::millis(10));

  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].name, "river-gauge");
  EXPECT_EQ((*found)[0].id, (StreamId{5, 0}));
  EXPECT_TRUE((*found)[0].advertised);
}

TEST_F(CatalogServiceFixture, DiscoverBySensor) {
  consumer.advertise({5, 0}, "a", "x");
  consumer.advertise({5, 1}, "b", "y");
  consumer.advertise({6, 0}, "c", "x");
  runtime.run_for(Duration::millis(10));

  std::size_t count = 0;
  consumer.discover({.sensor = 5, .stream_class = "", .include_unadvertised = true},
                    [&](std::vector<StreamInfo> streams) { count = streams.size(); });
  runtime.run_for(Duration::millis(10));
  EXPECT_EQ(count, 2u);
}

TEST_F(CatalogServiceFixture, DiscoverEmptyOnNoMatch) {
  bool called = false;
  consumer.discover({.sensor = 99, .stream_class = "", .include_unadvertised = true},
                    [&](std::vector<StreamInfo> streams) {
                      called = true;
                      EXPECT_TRUE(streams.empty());
                    });
  runtime.run_for(Duration::millis(10));
  EXPECT_TRUE(called);
}

TEST_F(CatalogServiceFixture, AdvertiseRequiresValidToken) {
  Consumer rogue(runtime.bus(), "consumer.rogue");  // never provisioned
  rogue.advertise({7, 0}, "fake", "x");
  runtime.run_for(Duration::millis(10));
  EXPECT_EQ(runtime.catalog().find({7, 0}), nullptr);
}

TEST_F(CatalogServiceFixture, AllocateDerivedViaRpc) {
  std::optional<StreamId> allocated;
  consumer.allocate_derived_stream([&](auto result) {
    ASSERT_TRUE(result.ok());
    allocated = result.value();
  });
  runtime.run_for(Duration::millis(10));
  ASSERT_TRUE(allocated.has_value());
  EXPECT_GE(allocated->sensor, kDerivedSensorBase);

  // The allocated id is immediately usable for publication.
  consumer.advertise(*allocated, "my-derived", "derived");
  runtime.run_for(Duration::millis(10));
  const StreamInfo* info = runtime.catalog().find(*allocated);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->derived);
}

TEST_F(CatalogServiceFixture, AllocateRequiresValidToken) {
  Consumer rogue(runtime.bus(), "consumer.rogue");
  std::optional<bool> ok;
  rogue.allocate_derived_stream([&](auto result) { ok = result.ok(); });
  runtime.run_for(Duration::millis(100));
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST_F(CatalogServiceFixture, DiscoverSeesAutoDetectedStreams) {
  runtime.catalog().note_message({9, 2}, runtime.scheduler().now());
  std::size_t with = 0;
  std::size_t without = 0;
  consumer.discover({.sensor = 9, .stream_class = "", .include_unadvertised = true},
                    [&](std::vector<StreamInfo> streams) { with = streams.size(); });
  consumer.discover({.sensor = 9, .stream_class = "", .include_unadvertised = false},
                    [&](std::vector<StreamInfo> streams) { without = streams.size(); });
  runtime.run_for(Duration::millis(10));
  EXPECT_EQ(with, 1u);
  EXPECT_EQ(without, 0u);
}

TEST(DiscoverReply, DecodeRejectsTruncation) {
  // A truncated reply yields only the complete prefix.
  util::ByteWriter w;
  w.u16(2);
  w.u32(StreamId{1, 0}.packed());
  w.u8(1);
  w.u8(0);
  w.u64(5);
  w.str("full");
  w.str("klass");
  w.u32(StreamId{2, 0}.packed());  // second entry cut short
  const auto streams = decode_discover_reply(w.view());
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].name, "full");
}

}  // namespace
}  // namespace garnet::core
