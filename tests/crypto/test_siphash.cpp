#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

namespace garnet::crypto {
namespace {

SipKey reference_key() {
  SipKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

util::Bytes sequential_input(std::size_t n) {
  util::Bytes in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<std::byte>(i);
  return in;
}

// Reference vectors from the SipHash paper / reference implementation:
// key = 00..0f, input = 00..(n-1).
TEST(SipHash, ReferenceVectors) {
  const SipKey key = reference_key();
  EXPECT_EQ(siphash24(key, sequential_input(0)), 0x726fdb47dd0e0e31ull);
  EXPECT_EQ(siphash24(key, sequential_input(1)), 0x74f839c593dc67fdull);
  EXPECT_EQ(siphash24(key, sequential_input(2)), 0x0d6c8009d9a94f5aull);
  EXPECT_EQ(siphash24(key, sequential_input(7)), 0xab0200f58b01d137ull);
  EXPECT_EQ(siphash24(key, sequential_input(8)), 0x93f5f5799a932462ull);
  EXPECT_EQ(siphash24(key, sequential_input(15)), 0xa129ca6149be45e5ull);
  EXPECT_EQ(siphash24(key, sequential_input(16)), 0x3f2acc7f57c29bdbull);
}

TEST(SipHash, KeySensitivity) {
  SipKey a = reference_key();
  SipKey b = reference_key();
  b[15] ^= 1;
  const util::Bytes msg = util::to_bytes("token material");
  EXPECT_NE(siphash24(a, msg), siphash24(b, msg));
}

TEST(SipHash, MessageSensitivity) {
  const SipKey key = reference_key();
  EXPECT_NE(siphash24(key, util::to_bytes("consumer-a")),
            siphash24(key, util::to_bytes("consumer-b")));
}

TEST(SipHash, KeyFromSeedDeterministic) {
  EXPECT_EQ(sipkey_from_seed(9), sipkey_from_seed(9));
  EXPECT_NE(sipkey_from_seed(9), sipkey_from_seed(10));
}

}  // namespace
}  // namespace garnet::crypto
