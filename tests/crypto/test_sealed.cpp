#include "crypto/sealed.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace garnet::crypto {
namespace {

TEST(Sealed, RoundTrip) {
  const Key key = key_from_seed(1);
  const Nonce nonce = nonce_from_counter(1);
  const util::Bytes plain = util::to_bytes("water level: 3.72m");

  const util::Bytes sealed_blob = seal(key, nonce, plain);
  EXPECT_EQ(sealed_blob.size(), plain.size() + kSealOverhead);

  const auto opened = open(key, nonce, sealed_blob);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plain);
}

TEST(Sealed, EmptyPayload) {
  const Key key = key_from_seed(2);
  const Nonce nonce = nonce_from_counter(3);
  const util::Bytes sealed_blob = seal(key, nonce, {});
  EXPECT_EQ(sealed_blob.size(), kSealOverhead);
  const auto opened = open(key, nonce, sealed_blob);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().empty());
}

TEST(Sealed, DetectsCiphertextTampering) {
  const Key key = key_from_seed(4);
  const Nonce nonce = nonce_from_counter(5);
  util::Bytes blob = seal(key, nonce, util::to_bytes("authentic reading"));
  blob[3] ^= std::byte{0x01};
  const auto opened = open(key, nonce, blob);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error(), SealError::kBadTag);
}

TEST(Sealed, DetectsTagTampering) {
  const Key key = key_from_seed(4);
  const Nonce nonce = nonce_from_counter(5);
  util::Bytes blob = seal(key, nonce, util::to_bytes("authentic reading"));
  blob.back() ^= std::byte{0xFF};
  EXPECT_FALSE(open(key, nonce, blob).ok());
}

TEST(Sealed, WrongKeyFails) {
  const Nonce nonce = nonce_from_counter(1);
  const util::Bytes blob = seal(key_from_seed(10), nonce, util::to_bytes("secret"));
  EXPECT_FALSE(open(key_from_seed(11), nonce, blob).ok());
}

TEST(Sealed, WrongNonceFails) {
  const Key key = key_from_seed(10);
  const util::Bytes blob = seal(key, nonce_from_counter(1), util::to_bytes("secret"));
  EXPECT_FALSE(open(key, nonce_from_counter(2), blob).ok());
}

TEST(Sealed, TruncatedBlobFails) {
  const auto opened = open(key_from_seed(1), nonce_from_counter(1), util::Bytes(8));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error(), SealError::kTruncated);
}

TEST(Sealed, LargePayloadRoundTrip) {
  const Key key = key_from_seed(77);
  const Nonce nonce = nonce_from_counter(88);
  util::Bytes plain(65536);
  util::Rng rng(5);
  for (auto& b : plain) b = static_cast<std::byte>(rng.next());
  const auto opened = open(key, nonce, seal(key, nonce, plain));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plain);
}

// The middleware property: a sealed payload survives transit through
// components that treat it as opaque bytes (copy/move), and only the
// intended endpoint can open it.
TEST(Sealed, EndToEndThroughOpaqueCopies) {
  const Key key = key_from_seed(123);
  const Nonce nonce = nonce_from_counter(456);
  const util::Bytes original = util::to_bytes("for consumer eyes only");

  util::Bytes in_flight = seal(key, nonce, original);
  util::Bytes hop1 = in_flight;          // receiver copy
  util::Bytes hop2 = std::move(hop1);    // filtering move
  const util::Bytes hop3 = hop2;         // dispatch fan-out copy

  const auto eavesdropper = open(key_from_seed(999), nonce, hop3);
  EXPECT_FALSE(eavesdropper.ok());

  const auto intended = open(key, nonce, hop3);
  ASSERT_TRUE(intended.ok());
  EXPECT_EQ(intended.value(), original);
}

}  // namespace
}  // namespace garnet::crypto
