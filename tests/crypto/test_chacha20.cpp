#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

namespace garnet::crypto {
namespace {

Key sequential_key() {
  Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  const Key key = sequential_key();
  const Nonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::array<std::uint8_t, 64> block{};
  chacha20_block(key, nonce, 1, block);

  const std::array<std::uint8_t, 64> expected = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71,
      0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4,
      0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05, 0xd9,
      0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9, 0xcb, 0xd0, 0x83, 0xe8,
      0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(block, expected);
}

// RFC 8439 §2.4.2 encryption test vector (first 16 bytes checked).
TEST(ChaCha20, Rfc8439EncryptionVector) {
  const Key key = sequential_key();
  const Nonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";

  const util::Bytes ciphertext = chacha20_encrypt(key, nonce, util::to_bytes(plaintext));
  ASSERT_EQ(ciphertext.size(), plaintext.size());

  const std::array<std::uint8_t, 16> expected_head = {0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9,
                                                      0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                                                      0x69, 0x81};
  for (std::size_t i = 0; i < expected_head.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(ciphertext[i]), expected_head[i]) << "byte " << i;
  }
}

TEST(ChaCha20, XorIsInvolution) {
  const Key key = key_from_seed(99);
  const Nonce nonce = nonce_from_counter(7);
  util::Bytes data = util::to_bytes("round trip me please, across block boundaries too: "
                                    "0123456789012345678901234567890123456789012345678901234567890123");
  const util::Bytes original = data;
  chacha20_xor(key, nonce, 1, data);
  EXPECT_NE(data, original);
  chacha20_xor(key, nonce, 1, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, EmptyInputIsNoop) {
  util::Bytes empty;
  chacha20_xor(key_from_seed(1), nonce_from_counter(1), 1, empty);
  EXPECT_TRUE(empty.empty());
}

TEST(ChaCha20, DifferentNoncesDiverge) {
  const Key key = key_from_seed(5);
  const util::Bytes plain = util::to_bytes("identical plaintext");
  const util::Bytes a = chacha20_encrypt(key, nonce_from_counter(1), plain);
  const util::Bytes b = chacha20_encrypt(key, nonce_from_counter(2), plain);
  EXPECT_NE(a, b);
}

TEST(ChaCha20, DifferentKeysDiverge) {
  const Nonce nonce = nonce_from_counter(1);
  const util::Bytes plain = util::to_bytes("identical plaintext");
  EXPECT_NE(chacha20_encrypt(key_from_seed(1), nonce, plain),
            chacha20_encrypt(key_from_seed(2), nonce, plain));
}

TEST(ChaCha20, KeyFromSeedDeterministic) {
  EXPECT_EQ(key_from_seed(42), key_from_seed(42));
  EXPECT_NE(key_from_seed(42), key_from_seed(43));
}

}  // namespace
}  // namespace garnet::crypto
