#include "crypto/poly1305.hpp"

#include <gtest/gtest.h>

namespace garnet::crypto {
namespace {

// RFC 8439 §2.5.2 test vector.
TEST(Poly1305, Rfc8439Vector) {
  const PolyKey key = {0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52,
                       0xfe, 0x42, 0xd5, 0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d,
                       0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49, 0xf5, 0x1b};
  const Tag tag = poly1305(key, util::to_bytes("Cryptographic Forum Research Group"));

  const Tag expected = {0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6,
                        0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01, 0x27, 0xa9};
  EXPECT_EQ(tag, expected);
}

TEST(Poly1305, EmptyMessage) {
  PolyKey key{};
  key[0] = 1;  // r = 1, s = 0
  const Tag tag = poly1305(key, {});
  // h stays 0; tag = pad = 0.
  EXPECT_EQ(tag, Tag{});
}

TEST(Poly1305, TagDependsOnEveryByte) {
  PolyKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 1);
  util::Bytes msg = util::to_bytes("sixteen byte msg");
  const Tag before = poly1305(key, msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    util::Bytes mutated = msg;
    mutated[i] ^= std::byte{0x80};
    EXPECT_NE(poly1305(key, mutated), before) << "byte " << i;
  }
}

TEST(Poly1305, BlockBoundaryLengths) {
  PolyKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(255 - i);
  // Lengths around the 16-byte block boundary must all be distinct inputs.
  util::Bytes msg(33, std::byte{0x5A});
  const Tag t15 = poly1305(key, util::BytesView(msg).first(15));
  const Tag t16 = poly1305(key, util::BytesView(msg).first(16));
  const Tag t17 = poly1305(key, util::BytesView(msg).first(17));
  const Tag t32 = poly1305(key, util::BytesView(msg).first(32));
  const Tag t33 = poly1305(key, msg);
  EXPECT_NE(t15, t16);
  EXPECT_NE(t16, t17);
  EXPECT_NE(t32, t33);
}

TEST(Poly1305, TagEqualConstantTimeSemantics) {
  Tag a{};
  Tag b{};
  EXPECT_TRUE(tag_equal(a, b));
  b[15] = 1;
  EXPECT_FALSE(tag_equal(a, b));
  b[15] = 0;
  b[0] = 1;
  EXPECT_FALSE(tag_equal(a, b));
}

}  // namespace
}  // namespace garnet::crypto
