// End-to-end telemetry: a message injected at a simulated sensor yields
// one completed trace whose spans cover radio receipt, filtering,
// dispatch, and consumer delivery (four services), with stage-latency
// histograms fed along the way; the actuation path records its own
// round-trip trace in the kActuation domain.
#include <gtest/gtest.h>

#include <cstring>

#include "garnet/report.hpp"
#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

Runtime::Config reliable_config() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

wireless::SensorNode& deploy_sensor_at(Runtime& runtime, core::SensorId id, sim::Vec2 position,
                                       std::uint32_t interval_ms = 200,
                                       bool receive_capable = false) {
  wireless::SensorNode::Config config;
  config.id = id;
  config.capabilities.receive_capable = receive_capable;
  wireless::StreamSpec spec;
  spec.interval_ms = interval_ms;
  spec.constraints = {.min_interval_ms = 50, .max_interval_ms = 60000, .max_payload = 128};
  config.streams.push_back(spec);
  return runtime.deploy_sensor(std::move(config),
                               std::make_unique<sim::StaticMobility>(position));
}

TEST(Telemetry, MessageTraceSpansFourServices) {
  Runtime runtime(reliable_config());
  runtime.deploy_receivers(9, 250);
  deploy_sensor_at(runtime, 1, {300, 300});

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(2));

  obs::Tracer& tracer = runtime.telemetry().tracer;
  EXPECT_GT(tracer.stats().completed, 0u);

  const auto traces = tracer.completed_snapshot();
  ASSERT_FALSE(traces.empty());
  const obs::Trace& trace = traces.front();
  EXPECT_EQ(trace.key.domain, obs::TraceKey::kData);
  EXPECT_EQ(trace.key.stream, (core::StreamId{1, 0}).packed());

  // One span per pipeline hop, in journey order, all closed, each
  // starting no earlier than the previous one ended.
  ASSERT_EQ(trace.spans.size(), 4u);
  const char* expected[] = {"radio", "filter", "dispatch", "deliver"};
  std::int64_t previous_end = trace.begin_ns;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_STREQ(trace.spans[i].stage, expected[i]);
    EXPECT_FALSE(trace.spans[i].open());
    EXPECT_GE(trace.spans[i].begin_ns, previous_end);
    previous_end = trace.spans[i].end_ns;
  }
  EXPECT_EQ(trace.end_ns, trace.spans[3].end_ns);
}

TEST(Telemetry, StageLatencyHistogramsCoverEveryHop) {
  Runtime runtime(reliable_config());
  runtime.deploy_receivers(9, 250);
  deploy_sensor_at(runtime, 1, {300, 300});

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(2));

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  for (const char* stage : {"radio", "filter", "dispatch", "deliver"}) {
    const obs::HistogramSnapshot* h =
        snap.histogram(obs::kStageLatencyMetric, {{"stage", stage}});
    ASSERT_NE(h, nullptr) << "missing stage histogram: " << stage;
    EXPECT_GT(h->count, 0u) << stage;
  }
  // The radio hop takes real (virtual) time; its p99 must be positive.
  EXPECT_GT(snap.histogram(obs::kStageLatencyMetric, {{"stage", "radio"}})->quantile(0.99), 0.0);
}

TEST(Telemetry, ActuationRoundTripTraced) {
  Runtime runtime(reliable_config());
  runtime.deploy_receivers(9, 250);
  runtime.deploy_transmitters(9, 250);
  auto& sensor = deploy_sensor_at(runtime, 1, {300, 300}, 200, /*receive_capable=*/true);
  sensor.start();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::seconds(3));  // build location evidence

  consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 100, {});
  runtime.run_for(Duration::seconds(3));
  ASSERT_EQ(runtime.actuation().stats().acked, 1u);

  bool found = false;
  for (const obs::Trace& trace : runtime.telemetry().tracer.completed_snapshot()) {
    if (trace.key.domain != obs::TraceKey::kActuation) continue;
    found = true;
    ASSERT_EQ(trace.spans.size(), 1u);
    EXPECT_STREQ(trace.spans[0].stage, "actuation");
    EXPECT_GT(trace.spans[0].duration_ns(), 0);
  }
  EXPECT_TRUE(found) << "no actuation-domain trace recorded";

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  const obs::HistogramSnapshot* h =
      snap.histogram(obs::kStageLatencyMetric, {{"stage", "actuation"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST(Telemetry, OrphanedMessagesAreDiscardedNotRecorded) {
  Runtime runtime(reliable_config());
  runtime.deploy_receivers(9, 250);
  deploy_sensor_at(runtime, 1, {300, 300});
  // No consumer: every delivery attempt ends unclaimed at dispatch.
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(2));

  obs::Tracer& tracer = runtime.telemetry().tracer;
  EXPECT_EQ(tracer.stats().completed, 0u);
  EXPECT_GT(tracer.stats().discarded, 0u);
}

TEST(Telemetry, TracingCanBeDisabledPerRuntime) {
  Runtime::Config config = reliable_config();
  config.trace.enabled = false;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  deploy_sensor_at(runtime, 1, {300, 300});

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(2));

  EXPECT_GT(consumer.received(), 0u);  // pipeline unaffected
  EXPECT_EQ(runtime.telemetry().tracer.stats().started, 0u);
  EXPECT_TRUE(runtime.telemetry().tracer.completed_snapshot().empty());
}

TEST(Telemetry, RegistryCarriesPushAndPullMetrics) {
  Runtime runtime(reliable_config());
  runtime.deploy_receivers(4, 400);
  deploy_sensor_at(runtime, 1, {300, 300});

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(2));

  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  // Push-style instruments (observed on the hot path)...
  const obs::HistogramSnapshot* transit = snap.histogram("garnet.bus.transit_ns");
  ASSERT_NE(transit, nullptr);
  EXPECT_GT(transit->count, 0u);
  ASSERT_NE(snap.histogram("garnet.radio.frame_bytes"), nullptr);
  // ...and pull-style collector samples agree with the service structs.
  EXPECT_EQ(snap.counter("garnet.filtering.messages_out"),
            runtime.filtering().stats().messages_out);
  EXPECT_GT(snap.counter("garnet.bus.posted"), 0u);
  EXPECT_GE(snap.counter("garnet.bus.posted"), snap.counter("garnet.bus.delivered"));
  EXPECT_DOUBLE_EQ(snap.gauge("garnet.field.sensors"), 1.0);
}

}  // namespace
}  // namespace garnet
