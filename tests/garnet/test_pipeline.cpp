// Declarative multi-level stages over the runtime.
#include "garnet/pipeline.hpp"

#include <gtest/gtest.h>

#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

Runtime::Config clean_config() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

struct PipelineFixture : ::testing::Test {
  Runtime runtime{clean_config()};

  PipelineFixture() {
    runtime.deploy_receivers(4, 300);
    wireless::SensorField::PopulationSpec spec;
    spec.count = 2;
    spec.interval_ms = 100;
    runtime.deploy_population(spec);
  }
};

TEST_F(PipelineFixture, SingleStageTransformsAndPublishes) {
  DerivedStage stage(runtime, "means", {core::StreamPattern::all_of(1)}, windowed_mean(4),
                     "smoothed");
  core::Consumer sink(runtime.bus(), "consumer.sink");
  runtime.provision(sink, "sink");
  std::vector<double> means;
  sink.set_data_handler([&](const core::Delivery& d) {
    util::ByteReader r(d.message.payload);
    means.push_back(r.f64());
  });
  sink.subscribe(core::StreamPattern::exact(stage.output()));

  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  EXPECT_GT(stage.consumed(), 30u);
  EXPECT_EQ(stage.published(), stage.consumed() / 4);
  EXPECT_EQ(means.size(), stage.published());
  for (const double m : means) {
    EXPECT_GT(m, 15.0);  // default payloads are N(20, 1)
    EXPECT_LT(m, 25.0);
  }
}

TEST_F(PipelineFixture, StagesChainThroughDerivedStreams) {
  DerivedStage stats(runtime, "stats", {core::StreamPattern::all_of(1)},
                     windowed_minmaxmean(5), "window-stats");
  // Second level consumes the first level's output: alert when the
  // window *max* (first f64 is min, so use a custom transform) — here we
  // simply alert on the min value exceeding an always-true threshold to
  // exercise the chain deterministically.
  DerivedStage alarm(runtime, "alarm", {core::StreamPattern::exact(stats.output())},
                     threshold_alert(0.0), "alert");

  core::Consumer sink(runtime.bus(), "consumer.sink");
  runtime.provision(sink, "sink");
  sink.subscribe(core::StreamPattern::exact(alarm.output()));

  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  EXPECT_GT(stats.published(), 5u);
  EXPECT_EQ(alarm.consumed(), stats.published());
  // Rising-edge alert: fires exactly once (values stay above 0).
  EXPECT_EQ(alarm.published(), 1u);
  EXPECT_EQ(sink.received(), 1u);
}

TEST_F(PipelineFixture, ThresholdAlertFiresOnRisingEdgesOnly) {
  auto transform = threshold_alert(10.0);
  const auto feed = [&](double value) {
    core::Delivery delivery;
    util::ByteWriter w(8);
    w.f64(value);
    delivery.message.payload = std::move(w).take();
    return transform(core::as_view(delivery)).has_value();
  };
  EXPECT_FALSE(feed(5.0));
  EXPECT_TRUE(feed(15.0));   // rising edge
  EXPECT_FALSE(feed(20.0));  // still above: no re-alert
  EXPECT_FALSE(feed(5.0));   // falling
  EXPECT_TRUE(feed(11.0));   // rises again
}

TEST_F(PipelineFixture, MinMaxMeanOrdering) {
  auto transform = windowed_minmaxmean(3);
  core::Delivery delivery;
  const auto feed = [&](double value) {
    util::ByteWriter w(8);
    w.f64(value);
    delivery.message.payload = std::move(w).take();
    return transform(core::as_view(delivery));
  };
  EXPECT_FALSE(feed(3.0).has_value());
  EXPECT_FALSE(feed(1.0).has_value());
  const auto out = feed(2.0);
  ASSERT_TRUE(out.has_value());
  util::ByteReader r(*out);
  EXPECT_DOUBLE_EQ(r.f64(), 1.0);
  EXPECT_DOUBLE_EQ(r.f64(), 3.0);
  EXPECT_DOUBLE_EQ(r.f64(), 2.0);
}

TEST_F(PipelineFixture, StageOutputsAreDiscoverable) {
  DerivedStage stage(runtime, "survey-means", {core::StreamPattern::all_of(1)},
                     windowed_mean(4), "smoothed");
  core::StreamCatalog::Query query;
  query.stream_class = "smoothed";
  const auto found = runtime.catalog().discover(query);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "survey-means");
  EXPECT_EQ(found[0].id, stage.output());
}

TEST_F(PipelineFixture, MalformedInputsAreSkipped) {
  auto transform = windowed_mean(2);
  core::Delivery delivery;
  delivery.message.payload = util::to_bytes("shrt");  // < 8 bytes
  EXPECT_FALSE(transform(core::as_view(delivery)).has_value());
  // Valid inputs still work afterwards.
  util::ByteWriter w(8);
  w.f64(4.0);
  delivery.message.payload = std::move(w).take();
  EXPECT_FALSE(transform(core::as_view(delivery)).has_value());
  util::ByteWriter w2(8);
  w2.f64(6.0);
  delivery.message.payload = std::move(w2).take();
  const auto out = transform(core::as_view(delivery));
  ASSERT_TRUE(out.has_value());
  util::ByteReader r(*out);
  EXPECT_DOUBLE_EQ(r.f64(), 5.0);
}

}  // namespace
}  // namespace garnet
