// ShardedDispatchPlane: hash partitioning, cross-shard control routing,
// the deterministic merge (byte-identical journals across shard counts),
// N=1 frame equivalence with the unsharded dispatcher, grouped recovery
// re-anchoring, and per-shard telemetry.
#include "garnet/shard_plane.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "garnet/recovery.hpp"
#include "net/admission.hpp"
#include "net/overload.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace garnet {
namespace {

using core::DataMessage;
using core::StreamId;
using core::StreamPattern;
using util::Duration;
using util::SimTime;

DataMessage make_message(StreamId id, core::SequenceNo seq) {
  DataMessage msg;
  msg.stream_id = id;
  msg.sequence = seq;
  msg.payload = util::to_bytes("x");
  return msg;
}

TEST(ShardPlane, HashRoutingSpreadsStreamsAndIsStable) {
  ShardPlaneConfig config;
  config.shards = 8;
  config.use_workers = false;
  ShardedDispatchPlane plane(config);

  std::set<std::uint32_t> used;
  for (core::SensorId sensor = 1; sensor <= 64; ++sensor) {
    const StreamId id{sensor, 0};
    const std::uint32_t shard = plane.shard_of(id);
    ASSERT_LT(shard, plane.shard_count());
    EXPECT_EQ(shard, plane.shard_of(id));  // stable
    used.insert(shard);
  }
  // The packed id is sensor<<8: an unmixed modulo would collapse every
  // single-stream sensor onto shard 0. The mix must use them all.
  EXPECT_EQ(used.size(), 8u);
}

TEST(ShardPlane, ExactSubscriptionDeliversOnTheOwningShard) {
  ShardPlaneConfig config;
  config.shards = 4;
  config.use_workers = false;
  ShardedDispatchPlane plane(config);

  const StreamId id{7, 1};
  const std::uint32_t owner = plane.shard_of(id);

  std::vector<std::pair<std::uint32_t, core::SequenceNo>> seen;
  const PlaneConsumerId consumer =
      plane.add_consumer("consumer", [&seen](std::uint32_t shard, const net::Envelope& e) {
        if (e.type != core::kDataDelivery) return;
        const auto delivery = core::decode_delivery_view(e.payload);
        ASSERT_TRUE(delivery.ok());
        seen.emplace_back(shard, delivery.value().message.sequence);
      });
  plane.subscribe(consumer, StreamPattern::exact(id));

  for (core::SequenceNo seq = 0; seq < 5; ++seq) plane.inject(make_message(id, seq));
  plane.run_until_idle();

  ASSERT_EQ(seen.size(), 5u);
  for (core::SequenceNo seq = 0; seq < 5; ++seq) {
    EXPECT_EQ(seen[seq].first, owner);
    EXPECT_EQ(seen[seq].second, seq);
  }
  // The exact subscription landed only on the owning shard's table.
  for (std::uint32_t shard = 0; shard < plane.shard_count(); ++shard) {
    EXPECT_EQ(plane.dispatch(shard).subscriptions().size(), shard == owner ? 1u : 0u);
  }
  EXPECT_EQ(plane.merged_dispatch_stats().copies_delivered, 5u);
}

TEST(ShardPlane, WildcardSubscriptionSpansEveryShard) {
  ShardPlaneConfig config;
  config.shards = 4;
  config.use_workers = false;
  ShardedDispatchPlane plane(config);

  std::size_t delivered = 0;
  const PlaneConsumerId consumer =
      plane.add_consumer("wild", [&delivered](std::uint32_t, const net::Envelope& e) {
        if (e.type == core::kDataDelivery) ++delivered;
      });
  const PlaneSubscriptionId sub = plane.subscribe(consumer, StreamPattern::everything());
  for (std::uint32_t shard = 0; shard < plane.shard_count(); ++shard) {
    EXPECT_EQ(plane.dispatch(shard).subscriptions().size(), 1u);
  }

  // Sensors chosen to land on more than one shard.
  std::set<std::uint32_t> shards_hit;
  for (core::SensorId sensor = 1; sensor <= 16; ++sensor) {
    plane.inject(make_message({sensor, 0}, 0));
    shards_hit.insert(plane.shard_of({sensor, 0}));
  }
  ASSERT_GT(shards_hit.size(), 1u);
  plane.run_until_idle();
  EXPECT_EQ(delivered, 16u);

  EXPECT_TRUE(plane.unsubscribe(sub));
  for (std::uint32_t shard = 0; shard < plane.shard_count(); ++shard) {
    EXPECT_EQ(plane.dispatch(shard).subscriptions().size(), 0u);
  }
}

TEST(ShardPlane, IngestRoutesByFrameStreamAndAdoptsMalformed) {
  ShardPlaneConfig config;
  config.shards = 4;
  config.use_workers = false;
  ShardedDispatchPlane plane(config);

  const StreamId id{42, 3};
  wireless::ReceptionReport report{1, -40.0, SimTime::zero(),
                                   core::encode(make_message(id, 0))};
  plane.ingest(report);
  EXPECT_EQ(plane.processed(plane.shard_of(id)), 1u);

  wireless::ReceptionReport garbage{1, -40.0, SimTime::zero(), util::to_bytes("garbage!")};
  plane.ingest(garbage);
  plane.run_until_idle();

  const auto merged = plane.merged_filtering_stats();
  EXPECT_EQ(merged.copies_in, 2u);
  EXPECT_EQ(merged.messages_out, 1u);
  EXPECT_EQ(merged.malformed, 1u);
  // The unparseable frame cannot name an owner; shard 0 adopted it.
  EXPECT_EQ(plane.filtering(0).stats().malformed, 1u);
}

// --- deterministic merge ---------------------------------------------------

/// A shard-pure overload workload: per-stream consumers with slow,
/// shallow inboxes, so deliveries queue during the service window and
/// overflow into the shed journal. Every consumer's traffic lives
/// entirely on its stream's owning shard, which is the precondition for
/// the merged journal to be invariant across shard counts.
std::string run_shed_workload(std::uint32_t shards, net::ShedStats* stats_out = nullptr) {
  ShardPlaneConfig config;
  config.shards = shards;
  config.use_workers = false;  // execution mode must not matter; see below
  config.bus.shed_journal_limit = 4096;
  constexpr int kStreams = 8;
  for (int i = 0; i < kStreams; ++i) {
    net::InboxConfig inbox;
    inbox.capacity = 4;
    inbox.policy = net::OverflowPolicy::kDropNewest;
    inbox.service_time = Duration::millis(1);
    config.bus.inboxes["c" + std::to_string(i)] = inbox;
  }
  ShardedDispatchPlane plane(config);

  for (int i = 0; i < kStreams; ++i) {
    const StreamId id{static_cast<core::SensorId>(i + 1), 0};
    const PlaneConsumerId consumer =
        plane.add_consumer("c" + std::to_string(i), [](std::uint32_t, const net::Envelope&) {});
    plane.subscribe(consumer, StreamPattern::exact(id));
  }
  for (core::SequenceNo seq = 0; seq < 64; ++seq) {
    for (int i = 0; i < kStreams; ++i) {
      plane.inject(make_message({static_cast<core::SensorId>(i + 1), 0}, seq));
    }
  }
  plane.run_until_idle();
  if (stats_out != nullptr) *stats_out = plane.merged_shed_stats();
  return plane.merged_shed_journal();
}

TEST(ShardPlane, MergedShedJournalIsByteIdenticalAcrossShardCounts) {
  net::ShedStats stats1, stats2, stats8;
  const std::string at1 = run_shed_workload(1, &stats1);
  const std::string at2 = run_shed_workload(2, &stats2);
  const std::string at8 = run_shed_workload(8, &stats8);

  ASSERT_FALSE(at1.empty());  // the workload must actually shed
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  EXPECT_EQ(stats1.data_total(), stats2.data_total());
  EXPECT_EQ(stats1.data_total(), stats8.data_total());
  EXPECT_EQ(stats1.control_total(), 0u);
}

TEST(ShardPlane, SameSeedRunsAreByteIdenticalAtFixedShardCount) {
  EXPECT_EQ(run_shed_workload(4), run_shed_workload(4));
}

// --- N=1 equivalence with the unsharded dispatcher -------------------------

TEST(ShardPlane, SingleShardCheckpointFramesMatchUnshardedDispatch) {
  // The plane side, N=1. Mirrors the PR-7 golden scenario
  // (GoldenFrames.DispatchDeltaChainReproducesFullCapture).
  ShardPlaneConfig config;
  config.shards = 1;
  ShardedDispatchPlane plane(config);
  const PlaneConsumerId pc = plane.add_consumer("consumer", [](std::uint32_t,
                                                               const net::Envelope&) {});
  plane.subscribe(pc, StreamPattern::all_of(1));
  for (core::SequenceNo seq = 0; seq < 4; ++seq) plane.inject(make_message({1, 0}, seq));
  plane.run_until_idle();

  // The reference side: an unsharded DispatchingService constructed in
  // the same order a Shard constructs its members, so every bus address
  // matches, driven with the same logical operations.
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::FilteringService filtering(scheduler, {});
  core::DispatchingService reference(bus, auth, catalog);
  core::Orphanage orphanage(bus, {});
  reference.set_orphan_sink(orphanage.address());
  reference.set_flow_control({});
  const net::Address consumer = bus.add_endpoint("consumer", [](net::Envelope) {});
  reference.subscribe(consumer, StreamPattern::all_of(1));
  for (core::SequenceNo seq = 0; seq < 4; ++seq) {
    reference.on_filtered(make_message({1, 0}, seq), scheduler.now());
  }
  scheduler.run();

  EXPECT_EQ(plane.capture_full(0), reference.capture_full());

  // Deltas stay frame-identical too.
  plane.subscribe(pc, StreamPattern::exact({2, 0}));
  plane.inject(make_message({2, 0}, 9));
  plane.inject(make_message({1, 0}, 4));
  plane.run_until_idle();
  reference.subscribe(consumer, StreamPattern::exact({2, 0}));
  reference.on_filtered(make_message({2, 0}, 9), scheduler.now());
  reference.on_filtered(make_message({1, 0}, 4), scheduler.now());
  scheduler.run();

  EXPECT_EQ(plane.capture_delta(0), reference.capture_delta());
}

// --- recovery: grouped re-anchoring ----------------------------------------

TEST(ShardPlane, PromotionReanchorsEveryShardCheckpoint) {
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.checkpoint_interval = Duration::millis(100);
  recovery.full_checkpoint_interval = 1000;  // deltas, except when forced full
  RecoveryHarness harness(scheduler, bus, recovery);

  ShardPlaneConfig config;
  config.shards = 4;
  config.use_workers = false;
  ShardedDispatchPlane plane(config);
  plane.register_recovery(harness, "dispatch-plane");

  // First cadence: every shard's first frame is full (initial anchor).
  scheduler.run_until(SimTime::zero() + Duration::millis(150));
  EXPECT_EQ(harness.stats().checkpoints_taken, 4u);

  // Steady state: deltas only.
  scheduler.run_until(SimTime::zero() + Duration::millis(350));
  EXPECT_EQ(harness.stats().checkpoints_taken, 4u);
  EXPECT_GE(harness.stats().deltas_taken, 8u);

  // Crash + rejoin one shard. The group contract: the whole plane
  // re-anchors, so the next cadence takes 4 full frames, not 1.
  harness.crash("dispatch-plane.shard2");
  harness.restart("dispatch-plane.shard2");
  const std::uint64_t fulls_before = harness.stats().checkpoints_taken;
  const std::uint64_t deltas_before = harness.stats().deltas_taken;
  scheduler.run_until(SimTime::zero() + Duration::millis(450));
  EXPECT_EQ(harness.stats().checkpoints_taken, fulls_before + 4u);
  EXPECT_EQ(harness.stats().deltas_taken, deltas_before);
}

// --- flow control across the plane -----------------------------------------

TEST(ShardPlane, CreditsRouteToTheGrantingShard) {
  ShardPlaneConfig config;
  config.shards = 4;
  config.use_workers = false;
  config.flow.credit_window = 2;
  config.flow.resume_threshold = 1;
  ShardedDispatchPlane plane(config);

  const StreamId id{5, 0};
  const std::uint32_t owner = plane.shard_of(id);
  std::size_t delivered = 0;
  const PlaneConsumerId consumer =
      plane.add_consumer("slow", [&delivered](std::uint32_t, const net::Envelope& e) {
        if (e.type == core::kDataDelivery) ++delivered;
      });
  plane.subscribe(consumer, StreamPattern::exact(id));

  for (core::SequenceNo seq = 0; seq < 6; ++seq) plane.inject(make_message(id, seq));
  plane.run_until_idle();

  // The window (2) exhausted on the owning shard; the rest quarantined.
  EXPECT_EQ(delivered, 2u);
  EXPECT_TRUE(plane.dispatch(owner).quarantined(plane.consumer_address(consumer, owner)));
  EXPECT_EQ(plane.merged_dispatch_stats().quarantines, 1u);

  // Replenish on the granting shard. Credits clamp to the window (2),
  // so each ack buys one window-sized resume round — exactly the
  // cadence a live consumer acks at.
  plane.grant_credits(consumer, owner, 16);
  plane.run_round();
  EXPECT_EQ(delivered, 4u);  // 2 redelivered, 2 re-stashed (window-capped)

  plane.grant_credits(consumer, owner, 16);
  plane.run_round();
  EXPECT_EQ(delivered, 6u);  // backlog drained, duplicate-free

  plane.grant_credits(consumer, owner, 16);
  plane.run_round();
  EXPECT_FALSE(plane.dispatch(owner).quarantined(plane.consumer_address(consumer, owner)));
  EXPECT_GE(plane.merged_dispatch_stats().resume_redelivered, 4u);
}

// --- plane-global admission control -----------------------------------------

/// The shed workload with the throughput-probed admission gate in front:
/// injection stamps are plane-global (rejects consume no injection tick)
/// and probe ticks land at merge barriers on the merged clock, so the
/// probe journal must be a function of the injection order alone —
/// invariant across shard counts and execution modes.
std::string run_admission_workload(std::uint32_t shards, bool use_workers,
                                   net::AdmissionStats* stats_out = nullptr) {
  ShardPlaneConfig config;
  config.shards = shards;
  config.use_workers = use_workers;
  config.bus.shed_journal_limit = 4096;
  config.admission.enabled = true;
  config.admission.probing = true;
  config.admission.journal_limit = 4096;
  config.admission.probe.initial_concurrency = 4;
  config.admission.probe.min_concurrency = 2;
  config.admission.probe.max_concurrency = 8;
  config.admission.probe.interval = Duration::micros(200);
  config.admission.probe.lease = Duration::micros(50);
  constexpr int kStreams = 8;
  for (int i = 0; i < kStreams; ++i) {
    net::InboxConfig inbox;
    inbox.capacity = 4;
    inbox.policy = net::OverflowPolicy::kDropNewest;
    inbox.service_time = Duration::millis(1);
    config.bus.inboxes["c" + std::to_string(i)] = inbox;
  }
  ShardedDispatchPlane plane(config);
  for (int i = 0; i < kStreams; ++i) {
    const StreamId id{static_cast<core::SensorId>(i + 1), 0};
    const PlaneConsumerId consumer =
        plane.add_consumer("c" + std::to_string(i), [](std::uint32_t, const net::Envelope&) {});
    plane.subscribe(consumer, StreamPattern::exact(id));
  }
  for (core::SequenceNo seq = 0; seq < 64; ++seq) {
    for (int i = 0; i < kStreams; ++i) {
      plane.inject(make_message({static_cast<core::SensorId>(i + 1), 0}, seq));
    }
  }
  plane.run_until_idle();
  if (stats_out != nullptr) *stats_out = plane.admission()->stats();
  return plane.admission()->journal_text();
}

TEST(ShardPlaneAdmission, ProbeJournalIsByteIdenticalAcrossShardCounts) {
  net::AdmissionStats at1, at2, at8;
  const std::string j1 = run_admission_workload(1, false, &at1);
  const std::string j2 = run_admission_workload(2, false, &at2);
  const std::string j8 = run_admission_workload(8, false, &at8);

  ASSERT_FALSE(j1.empty());
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
  // Admission decisions — not just the journal rendering — are invariant.
  EXPECT_EQ(at1.data_admitted, at2.data_admitted);
  EXPECT_EQ(at1.data_admitted, at8.data_admitted);
  EXPECT_EQ(at1.data_rejected, at2.data_rejected);
  EXPECT_EQ(at1.data_rejected, at8.data_rejected);
  EXPECT_EQ(at1.probes, at8.probes);
  EXPECT_EQ(at1.resizes, at8.resizes);
  // The flood genuinely hit the door: tickets refused, pool resized.
  EXPECT_GT(at1.data_rejected, 0u);
  EXPECT_GT(at1.resizes, 0u);
}

TEST(ShardPlaneAdmission, SameSeedRunsAndExecutionModesMatch) {
  const std::string inline_a = run_admission_workload(4, false);
  const std::string inline_b = run_admission_workload(4, false);
  const std::string workers = run_admission_workload(4, true);
  ASSERT_FALSE(inline_a.empty());
  EXPECT_EQ(inline_a, inline_b);
  EXPECT_EQ(inline_a, workers);
}

TEST(ShardPlaneAdmission, ResizesKeepEveryShardCreditWindowInLockstep) {
  ShardPlaneConfig config;
  config.shards = 4;
  config.use_workers = false;
  config.flow.credit_window = 4;
  config.flow.resume_threshold = 1;
  config.admission.enabled = true;
  config.admission.probing = true;
  config.admission.probe.initial_concurrency = 8;
  config.admission.probe.min_concurrency = 2;
  config.admission.probe.max_concurrency = 8;
  config.admission.probe.interval = Duration::micros(200);
  config.admission.probe.lease = Duration::micros(50);
  ShardedDispatchPlane plane(config);

  const PlaneConsumerId consumer =
      plane.add_consumer("sink", [](std::uint32_t, const net::Envelope&) {});
  plane.subscribe(consumer, StreamPattern::everything());
  for (core::SequenceNo seq = 0; seq < 64; ++seq) {
    for (core::SensorId sensor = 1; sensor <= 8; ++sensor) {
      plane.inject(make_message({sensor, 0}, seq));
    }
  }
  plane.run_until_idle();

  ASSERT_GT(plane.admission()->stats().resizes, 0u);
  const auto window = plane.admission()->data_pool_size();
  EXPECT_EQ(plane.admission()->derived_credit_window(), window);
  // A consumer registered after the run has no credit history: its
  // balance is each shard's current default window, which must track the
  // probed pool size on every shard, not just shard 0.
  const PlaneConsumerId fresh =
      plane.add_consumer("fresh", [](std::uint32_t, const net::Envelope&) {});
  for (std::uint32_t shard = 0; shard < plane.shard_count(); ++shard) {
    EXPECT_EQ(plane.dispatch(shard).credits(plane.consumer_address(fresh, shard)), window)
        << "shard " << shard << " credit window diverged from the admission pool";
  }
}

// --- telemetry --------------------------------------------------------------

TEST(ShardPlane, TelemetryExposesPerShardSeries) {
  obs::MetricsRegistry registry;
  ShardPlaneConfig config;
  config.shards = 2;
  config.use_workers = false;
  ShardedDispatchPlane plane(config);
  plane.set_metrics(registry);

  for (core::SensorId sensor = 1; sensor <= 8; ++sensor) {
    plane.inject(make_message({sensor, 0}, 0));
  }
  plane.run_until_idle();

  const auto snapshot = registry.snapshot();
  std::uint64_t routed = 0;
  for (std::uint32_t shard = 0; shard < plane.shard_count(); ++shard) {
    const obs::Labels labels{{"shard", std::to_string(shard)}};
    routed += snapshot.counter("garnet.shard.msgs", labels);
    ASSERT_NE(snapshot.find("garnet.shard.inbox_depth", labels), nullptr);
    ASSERT_NE(snapshot.find("garnet.shard.merge_lag", labels), nullptr);
  }
  EXPECT_EQ(routed, 8u);
}

// --- the worker pool produces the same plane as inline execution ------------

TEST(ShardPlane, WorkerExecutionMatchesInlineExecution) {
  const auto run = [](bool use_workers) {
    ShardPlaneConfig config;
    config.shards = 4;
    config.use_workers = use_workers;
    config.bus.shed_journal_limit = 4096;
    net::InboxConfig inbox;
    inbox.capacity = 4;
    inbox.policy = net::OverflowPolicy::kDropNewest;
    inbox.service_time = Duration::millis(1);
    for (int i = 0; i < 8; ++i) config.bus.inboxes["c" + std::to_string(i)] = inbox;
    ShardedDispatchPlane plane(config);
    for (int i = 0; i < 8; ++i) {
      const StreamId id{static_cast<core::SensorId>(i + 1), 0};
      const PlaneConsumerId c = plane.add_consumer("c" + std::to_string(i),
                                                   [](std::uint32_t, const net::Envelope&) {});
      plane.subscribe(c, StreamPattern::exact(id));
    }
    for (core::SequenceNo seq = 0; seq < 32; ++seq) {
      for (int i = 0; i < 8; ++i) {
        plane.inject(make_message({static_cast<core::SensorId>(i + 1), 0}, seq));
      }
    }
    plane.run_until_idle();
    return plane.merged_shed_journal() + "|" +
           std::to_string(plane.merged_dispatch_stats().copies_delivered) + "|" +
           std::to_string(plane.now().ns);
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace garnet
