// Runtime facade: deployment helpers, wiring, and the status report.
#include "garnet/runtime.hpp"

#include <gtest/gtest.h>

#include "core/message.hpp"
#include "garnet/report.hpp"

namespace garnet {
namespace {

using util::Duration;

TEST(Runtime, DefaultConstructible) {
  Runtime runtime;
  EXPECT_EQ(runtime.scheduler().now(), util::SimTime::zero());
  EXPECT_EQ(runtime.field().sensor_count(), 0u);
}

TEST(Runtime, DeployReceiversInformsLocationService) {
  Runtime runtime;
  runtime.deploy_receivers(9, 200);
  // Location service knows the layout: observations on those receivers
  // produce estimates.
  runtime.location().observe(core::ReceptionEvent{7, 1, -40.0, runtime.scheduler().now()});
  EXPECT_TRUE(runtime.location().estimate(7).has_value());
}

TEST(Runtime, DeployPopulationRegistersProfiles) {
  Runtime runtime;
  wireless::SensorField::PopulationSpec spec;
  spec.first_id = 5;
  spec.count = 3;
  spec.constraints = {.min_interval_ms = 200, .max_interval_ms = 5000, .max_payload = 32};
  runtime.deploy_population(spec);

  core::Consumer consumer(runtime.bus(), "consumer.x");
  runtime.provision(consumer, "x");
  // The Resource Manager clamps to the registered profile.
  const core::Decision d = runtime.resource().evaluate_now(
      consumer.identity().token, {5, 0}, core::UpdateAction::kSetIntervalMs, 1);
  EXPECT_EQ(d.admission, core::Admission::kModified);
  EXPECT_EQ(d.effective_value, 200u);
}

TEST(Runtime, DeploySensorRegistersAllStreams) {
  Runtime runtime;
  wireless::SensorNode::Config config;
  config.id = 9;
  config.capabilities.receive_capable = true;
  wireless::StreamSpec a;
  a.id = 0;
  a.constraints.min_interval_ms = 100;
  wireless::StreamSpec b;
  b.id = 3;
  b.constraints.min_interval_ms = 700;
  config.streams = {a, b};
  runtime.deploy_sensor(std::move(config),
                        std::make_unique<sim::StaticMobility>(sim::Vec2{1, 1}));

  core::Consumer consumer(runtime.bus(), "consumer.x");
  runtime.provision(consumer, "x");
  EXPECT_EQ(runtime.resource()
                .evaluate_now(consumer.identity().token, {9, 3},
                              core::UpdateAction::kSetIntervalMs, 1)
                .effective_value,
            700u);
}

TEST(Runtime, ProvisionAppliesRequestedTrust) {
  Runtime runtime;
  core::Consumer consumer(runtime.bus(), "consumer.ops");
  const auto identity = runtime.provision(consumer, "ops", 150, core::TrustLevel::kTrusted);
  EXPECT_EQ(identity.trust, core::TrustLevel::kTrusted);
  EXPECT_EQ(identity.priority, 150);
}

TEST(Runtime, CreateDerivedStreamAdvertises) {
  Runtime runtime;
  const core::StreamId id = runtime.create_derived_stream("alerts", "alert");
  const core::StreamInfo* info = runtime.catalog().find(id);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->advertised);
  EXPECT_TRUE(info->derived);
  EXPECT_EQ(info->name, "alerts");
}

TEST(Runtime, LocationStreamDisabledByDefault) {
  Runtime runtime;
  EXPECT_FALSE(runtime.location_stream().has_value());
}

TEST(RuntimeReport, SnapshotAndRenderCoverServices) {
  Runtime::Config config;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  spec.interval_ms = 200;
  runtime.deploy_population(spec);

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  const RuntimeReport report = snapshot(runtime);
  EXPECT_GT(report.value("garnet.radio.uplink_frames"), 0u);
  EXPECT_GT(report.value("garnet.filtering.messages_out"), 0u);
  EXPECT_GT(report.value("garnet.dispatch.copies_delivered"), 0u);
  EXPECT_EQ(report.value("garnet.field.sensors"), 2u);
  EXPECT_EQ(report.value("garnet.dispatch.subscriptions"), 1u);
  EXPECT_GT(report.value("garnet.orphanage.messages"), 0u);  // sensor 2 unclaimed

  const std::string text = report.render();
  EXPECT_NE(text.find("radio"), std::string::npos);
  EXPECT_NE(text.find("filtering"), std::string::npos);
  EXPECT_NE(text.find("governance"), std::string::npos);
  EXPECT_NE(text.find("uplink frames"), std::string::npos);
  EXPECT_NE(text.find("stage latency"), std::string::npos);

  // The machine-readable expositions carry the same snapshot.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"garnet.radio.uplink_frames\""), std::string::npos);
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  const std::string prom = report.to_prometheus();
  EXPECT_NE(prom.find("garnet_radio_uplink_frames"), std::string::npos);
}

TEST(Runtime, DeprovisionRevokesEverything) {
  Runtime::Config config;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 1;
  spec.interval_ms = 100;
  runtime.deploy_population(spec);

  core::Consumer consumer(runtime.bus(), "consumer.leaver");
  runtime.provision(consumer, "leaver");
  consumer.subscribe(core::StreamPattern::all_of(1));
  runtime.run_for(Duration::millis(20));
  runtime.resource().evaluate_now(consumer.identity().token, {1, 0},
                                  core::UpdateAction::kSetIntervalMs, 100);

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(1));
  EXPECT_GT(consumer.received(), 0u);
  const std::uint64_t at_leave = consumer.received();

  runtime.deprovision(consumer);
  runtime.run_for(Duration::seconds(2));

  EXPECT_EQ(consumer.received(), at_leave);  // no more deliveries
  EXPECT_FALSE(runtime.auth().verify(consumer.identity().token).has_value());
  // New subscriptions fail with the revoked token.
  std::optional<bool> ok;
  consumer.subscribe(core::StreamPattern::everything(), [&](auto result) { ok = result.ok(); });
  runtime.run_for(Duration::millis(100));
  EXPECT_EQ(ok, false);
}

TEST(Runtime, RunForAdvancesVirtualTime) {
  Runtime runtime;
  runtime.run_for(Duration::seconds(90));
  EXPECT_EQ(runtime.scheduler().now().to_seconds(), 90.0);
}

TEST(RuntimeAdmission, CreditWindowTracksTheProbedPoolSize) {
  // PR-4 ledger derivation: with admission enabled the dispatch credit
  // window is no longer the hand-tuned constant but follows the probed
  // data-pool size through the resize listener.
  Runtime::Config config;
  config.overload.credit_window = 16;
  config.admission.enabled = true;
  config.admission.probing = true;
  config.admission.probe.initial_concurrency = 8;
  config.admission.probe.min_concurrency = 2;
  config.admission.probe.max_concurrency = 16;
  config.admission.probe.interval = Duration::millis(5);
  Runtime runtime(config);

  // A trickle far below the pool's admission rate: the prober learns the
  // concurrency is unneeded and walks the pool down to the floor.
  core::DataMessage msg;
  msg.stream_id = {9, 0};
  msg.payload = util::to_bytes("x");
  for (int i = 0; i < 60; ++i) {
    msg.sequence = static_cast<core::SequenceNo>(i);
    runtime.inject_external(core::as_view(msg));
    runtime.run_for(Duration::millis(5));
  }

  ASSERT_NE(runtime.admission(), nullptr);
  EXPECT_EQ(runtime.admission()->data_pool_size(), 2u);
  EXPECT_GT(runtime.admission()->stats().resizes, 0u);
  EXPECT_EQ(runtime.admission()->derived_credit_window(), 2u);
  // The ledger saw every committed resize: a sender with no credit
  // history is granted the derived window, not the configured 16.
  const net::Address fresh = runtime.bus().add_endpoint("test.fresh", [](net::Envelope) {});
  EXPECT_EQ(runtime.dispatch().credits(fresh), 2u);
  EXPECT_EQ(runtime.external_in(), 60u);  // the trickle itself never gated
}

}  // namespace
}  // namespace garnet
