// RecoveryHarness unit tests against a synthetic stateful service: a
// key->value table whose capture/restore use the core/checkpoint
// framing and whose mutations are op-logged. Covers the full contract —
// checkpoint replication over the bus, op-log tailing, crash-stop
// semantics (wiped state, silenced endpoints, dropped ops), watchdog
// promotion from checkpoint + tail, scheduled-restart rejoin, and the
// garnet.recovery.* / garnet.checkpoint.* telemetry.
#include "garnet/recovery.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "garnet/runtime.hpp"
#include "obs/metrics.hpp"

namespace garnet {
namespace {

using util::Duration;
using util::SimTime;

constexpr std::uint16_t kOpSet = 1;  ///< payload: [u32 key][u64 value]

/// The service under management: a sorted table, so capture is
/// deterministic by construction. Tracks dirty/removed keys the same
/// way core::StreamTable does, so the delta hooks can be exercised.
struct FakeService {
  std::map<std::uint32_t, std::uint64_t> table;
  std::map<std::uint32_t, bool> dirty;
  std::vector<std::uint32_t> removed;
  int restarts = 0;
  int delta_captures = 0;

  void set(std::uint32_t key, std::uint64_t value) {
    table[key] = value;
    dirty[key] = true;
  }

  void erase(std::uint32_t key) {
    if (table.erase(key) == 0) return;
    dirty.erase(key);
    removed.push_back(key);
  }

  util::Bytes capture() const {
    util::ByteWriter w(4 + table.size() * 12);
    w.u32(static_cast<std::uint32_t>(table.size()));
    for (const auto& [key, value] : table) {
      w.u32(key);
      w.u64(value);
    }
    return std::move(w).take();
  }

  util::Bytes capture_full() {
    util::Bytes state = capture();
    dirty.clear();
    removed.clear();
    return state;
  }

  util::Bytes capture_delta() {
    ++delta_captures;
    util::ByteWriter w(8 + removed.size() * 4 + dirty.size() * 12);
    w.u32(static_cast<std::uint32_t>(removed.size()));
    for (const std::uint32_t key : removed) w.u32(key);
    w.u32(static_cast<std::uint32_t>(dirty.size()));
    for (const auto& [key, unused] : dirty) {
      w.u32(key);
      w.u64(table.at(key));
    }
    dirty.clear();
    removed.clear();
    return std::move(w).take();
  }

  util::Status<util::DecodeError> apply_delta(util::BytesView delta) {
    util::ByteReader r(delta);
    std::vector<std::uint32_t> gone;
    const std::uint32_t removed_count = r.u32();
    for (std::uint32_t i = 0; i < removed_count && r.ok(); ++i) gone.push_back(r.u32());
    std::vector<std::pair<std::uint32_t, std::uint64_t>> upserts;
    const std::uint32_t dirty_count = r.u32();
    for (std::uint32_t i = 0; i < dirty_count && r.ok(); ++i) {
      const std::uint32_t key = r.u32();
      const std::uint64_t value = r.u64();
      upserts.emplace_back(key, value);
    }
    if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};
    for (const std::uint32_t key : gone) table.erase(key);
    for (const auto& [key, value] : upserts) table[key] = value;
    dirty.clear();
    removed.clear();
    return {};
  }

  util::Status<util::DecodeError> restore(util::BytesView state) {
    util::ByteReader r(state);
    const std::uint32_t count = r.u32();
    std::map<std::uint32_t, std::uint64_t> next;
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      const std::uint32_t key = r.u32();
      const std::uint64_t value = r.u64();
      next[key] = value;
    }
    if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};
    table = std::move(next);
    dirty.clear();
    removed.clear();
    return {};
  }

  void apply_op(std::uint16_t kind, util::BytesView payload) {
    if (kind != kOpSet) return;
    util::ByteReader r(payload);
    const std::uint32_t key = r.u32();
    const std::uint64_t value = r.u64();
    if (r.ok()) table[key] = value;
  }
};

struct RecoveryFixture : ::testing::Test {
  obs::MetricsRegistry registry;
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  FakeService fake;

  static RecoveryConfig config() {
    RecoveryConfig c;
    c.enabled = true;
    c.heartbeat_interval = Duration::millis(100);
    c.miss_threshold = 3;
    c.checkpoint_interval = Duration::millis(250);
    return c;
  }

  static RecoveryConfig delta_config(std::uint32_t full_interval) {
    RecoveryConfig c = config();
    c.full_checkpoint_interval = full_interval;
    return c;
  }

  RecoveryHarness::Service service_spec(std::vector<std::string> endpoints = {}) {
    RecoveryHarness::Service spec;
    spec.name = "fake";
    spec.endpoints = std::move(endpoints);
    spec.capture = [this] { return fake.capture(); };
    spec.restore = [this](util::BytesView state) { return fake.restore(state); };
    spec.wipe = [this] { fake.table.clear(); };
    spec.apply_op = [this](std::uint16_t kind, util::BytesView payload) {
      fake.apply_op(kind, payload);
    };
    spec.on_restart = [this] { ++fake.restarts; };
    return spec;
  }

  /// service_spec() plus the incremental pair: full captures rebase the
  /// dirty set, deltas carry only what changed since the last capture.
  RecoveryHarness::Service delta_spec(std::vector<std::string> endpoints = {}) {
    RecoveryHarness::Service spec = service_spec(std::move(endpoints));
    spec.capture = [this] { return fake.capture_full(); };
    spec.capture_delta = [this] { return fake.capture_delta(); };
    spec.apply_delta = [this](util::BytesView delta) { return fake.apply_delta(delta); };
    return spec;
  }

  /// Mutates the primary AND logs the op, as a real service's runtime
  /// wiring does.
  void set_and_log(RecoveryHarness& harness, std::uint32_t key, std::uint64_t value) {
    fake.set(key, value);
    util::ByteWriter w(12);
    w.u32(key);
    w.u64(value);
    harness.log_op("fake", kOpSet, w.view());
  }

  /// Posts a hand-built checkpoint frame straight to the replica
  /// endpoint, exactly as the primary's take_checkpoints() wraps it —
  /// the attack surface for delta-before-full and epoch-skew frames.
  void post_forged_frame(const util::Bytes& frame, std::uint64_t watermark = 1) {
    const auto replica = bus.lookup(RecoveryHarness::kReplicaEndpointName);
    ASSERT_TRUE(replica.has_value());
    if (!forger_.has_value()) {
      forger_ = bus.add_endpoint("test.forger", [](net::Envelope) {});
    }
    util::ByteWriter w(2 + 4 + 8 + 4 + frame.size());
    w.str("fake");
    w.u64(watermark);
    w.u32(static_cast<std::uint32_t>(frame.size()));
    w.raw(frame);
    bus.post(*forger_, *replica, core::kCheckpointReplica, util::take_shared(std::move(w)));
  }

  std::optional<net::Address> forger_;

  std::uint64_t counter(const char* name) { return registry.snapshot().counter(name); }
  double gauge(const char* name) { return registry.snapshot().gauge(name); }
};

TEST_F(RecoveryFixture, CheckpointsReplicateOnCadence) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  fake.table = {{1, 10}, {2, 20}};
  scheduler.run_for(Duration::millis(600));  // two cadences + bus latency

  EXPECT_GE(counter("garnet.checkpoint.taken"), 2u);
  EXPECT_GE(counter("garnet.checkpoint.stored"), 2u);
  EXPECT_EQ(counter("garnet.checkpoint.rejected"), 0u);
  EXPECT_GT(gauge("garnet.checkpoint.last_bytes"), 0.0);
}

TEST_F(RecoveryFixture, OpsReplicateToTheStandbyLog) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  for (std::uint32_t key = 1; key <= 5; ++key) set_and_log(harness, key, key * 10);
  scheduler.run_for(Duration::millis(50));  // replication latency only

  EXPECT_EQ(counter("garnet.recovery.ops_logged"), 5u);
  EXPECT_EQ(counter("garnet.recovery.ops_replicated"), 5u);
}

TEST_F(RecoveryFixture, CrashWipesStateAndSilencesEndpoints) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  bus.set_metrics(registry);
  std::size_t arrivals = 0;
  const net::Address svc = bus.add_endpoint("fake.svc", [&](net::Envelope) { ++arrivals; });
  const net::Address peer = bus.add_endpoint("fake.peer", [](net::Envelope) {});
  harness.manage(service_spec({"fake.svc"}));

  fake.table = {{1, 1}};
  harness.crash("fake");
  EXPECT_TRUE(harness.crashed("fake"));
  EXPECT_TRUE(fake.table.empty());  // volatile state died with the process
  EXPECT_EQ(counter("garnet.recovery.crashes"), 1u);
  EXPECT_EQ(gauge("garnet.recovery.crashed"), 1.0);

  // Peers cannot tell it is gone: the post succeeds, the bus discards.
  bus.post(peer, svc, net::app_type(0), util::SharedBytes{util::to_bytes("hello?")});
  scheduler.run_for(Duration::millis(50));
  EXPECT_EQ(arrivals, 0u);
  EXPECT_EQ(counter("garnet.bus.dropped_endpoint_down"), 1u);
}

TEST_F(RecoveryFixture, CrashedServiceLogsNothing) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  harness.crash("fake");
  set_and_log(harness, 1, 1);
  scheduler.run_for(Duration::millis(50));
  EXPECT_EQ(counter("garnet.recovery.ops_logged"), 0u);
}

TEST_F(RecoveryFixture, WatchdogPromotesFromCheckpointPlusTail) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  // Pre-checkpoint state, then a checkpoint cadence, then a tail of ops.
  set_and_log(harness, 1, 10);
  set_and_log(harness, 2, 20);
  scheduler.run_for(Duration::millis(300));  // checkpoint lands, log truncates
  set_and_log(harness, 3, 30);
  set_and_log(harness, 2, 21);  // overwrite past the watermark
  scheduler.run_for(Duration::millis(20));
  const auto expected = fake.table;

  harness.crash("fake");
  ASSERT_TRUE(fake.table.empty());
  scheduler.run_for(Duration::seconds(1));  // watchdog notices, promotes

  EXPECT_FALSE(harness.crashed("fake"));
  EXPECT_EQ(fake.table, expected);  // checkpoint + tail == pre-crash state
  EXPECT_EQ(counter("garnet.recovery.promotions"), 1u);
  EXPECT_EQ(counter("garnet.recovery.rejoins"), 0u);
  // Only the post-watermark tail replayed, not the checkpointed prefix.
  EXPECT_EQ(counter("garnet.recovery.ops_replayed"), 2u);
  EXPECT_EQ(fake.restarts, 1);
  // Detection within (miss_threshold-1, miss_threshold] heartbeats.
  EXPECT_LE(gauge("garnet.recovery.latency_ns"),
            static_cast<double>(Duration::millis(400).ns));
  EXPECT_GE(gauge("garnet.recovery.latency_ns"),
            static_cast<double>(Duration::millis(200).ns));
}

TEST_F(RecoveryFixture, CrashBeforeFirstCheckpointReplaysFromBoot) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  for (std::uint32_t key = 1; key <= 4; ++key) set_and_log(harness, key, key);
  scheduler.run_for(Duration::millis(20));  // replicate; no checkpoint yet
  const auto expected = fake.table;

  harness.crash("fake");
  harness.restart("fake");  // scheduled restart, not watchdog
  EXPECT_EQ(fake.table, expected);
  EXPECT_EQ(counter("garnet.recovery.rejoins"), 1u);
  EXPECT_EQ(counter("garnet.recovery.promotions"), 0u);
  EXPECT_EQ(counter("garnet.recovery.ops_replayed"), 4u);
}

TEST_F(RecoveryFixture, RestartIsNoopUnlessCrashed) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  harness.restart("fake");
  harness.restart("no-such-service");
  EXPECT_EQ(counter("garnet.recovery.rejoins"), 0u);
  EXPECT_EQ(fake.restarts, 0);
}

TEST_F(RecoveryFixture, CrashIsIdempotent) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  harness.crash("fake");
  harness.crash("fake");
  EXPECT_EQ(counter("garnet.recovery.crashes"), 1u);
  scheduler.run_for(Duration::seconds(1));
  EXPECT_EQ(counter("garnet.recovery.promotions"), 1u);
}

TEST_F(RecoveryFixture, LostInputsAreAccountedPerService) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  harness.manage(service_spec());

  harness.crash("fake");
  harness.note_lost_input("fake");
  harness.note_lost_input("fake");
  harness.note_lost_input("unknown");  // ignored
  EXPECT_EQ(counter("garnet.recovery.inputs_lost"), 2u);
  EXPECT_EQ(registry.snapshot().counter("garnet.recovery.service_inputs_lost",
                                        {{"service", "fake"}}),
            2u);
}

TEST_F(RecoveryFixture, EndpointsComeBackUpAtRecovery) {
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  std::size_t arrivals = 0;
  const net::Address svc = bus.add_endpoint("fake.svc", [&](net::Envelope) { ++arrivals; });
  const net::Address peer = bus.add_endpoint("fake.peer", [](net::Envelope) {});
  harness.manage(service_spec({"fake.svc"}));

  harness.crash("fake");
  EXPECT_TRUE(bus.endpoint_down("fake.svc"));
  scheduler.run_for(Duration::seconds(1));  // watchdog promotes
  EXPECT_FALSE(bus.endpoint_down("fake.svc"));

  bus.post(peer, svc, net::app_type(0), util::SharedBytes{util::to_bytes("back?")});
  scheduler.run_for(Duration::millis(50));
  EXPECT_EQ(arrivals, 1u);
}

TEST_F(RecoveryFixture, CheckpointOnlyServiceSkipsReplay) {
  // Location/catalog-style management: no apply_op hook. Promotion is
  // restore-only; nothing counts as replayed.
  RecoveryHarness harness(scheduler, bus, config());
  harness.set_metrics(registry);
  RecoveryHarness::Service spec = service_spec();
  spec.apply_op = nullptr;
  harness.manage(std::move(spec));

  fake.table = {{5, 50}};
  scheduler.run_for(Duration::millis(300));  // checkpoint lands
  harness.crash("fake");
  scheduler.run_for(Duration::seconds(1));

  EXPECT_EQ(fake.table, (std::map<std::uint32_t, std::uint64_t>{{5, 50}}));
  EXPECT_EQ(counter("garnet.recovery.ops_replayed"), 0u);
}

TEST_F(RecoveryFixture, DeltaChainRestoresFullPlusDeltasAtPromotion) {
  // full_checkpoint_interval=4: one full frame, then three deltas, then
  // the next full. Promotion must stack the chain in order — including
  // a removal — with no op replay masking a bad chain.
  RecoveryHarness harness(scheduler, bus, delta_config(4));
  harness.set_metrics(registry);
  RecoveryHarness::Service spec = delta_spec();
  spec.apply_op = nullptr;
  harness.manage(std::move(spec));

  fake.set(1, 10);
  fake.set(2, 20);
  scheduler.run_for(Duration::millis(300));  // cadence 1: full frame
  EXPECT_EQ(counter("garnet.checkpoint.taken"), 1u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_taken"), 0u);

  fake.set(3, 30);
  fake.set(2, 21);
  scheduler.run_for(Duration::millis(250));  // cadence 2: delta
  fake.erase(1);
  fake.set(4, 40);
  scheduler.run_for(Duration::millis(250));  // cadence 3: delta
  EXPECT_EQ(counter("garnet.checkpoint.taken"), 1u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_taken"), 2u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_stored"), 2u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_rejected"), 0u);
  EXPECT_GT(gauge("garnet.checkpoint.delta_last_bytes"), 0.0);
  const auto expected = fake.table;

  harness.crash("fake");
  ASSERT_TRUE(fake.table.empty());
  scheduler.run_for(Duration::seconds(1));  // watchdog promotes

  EXPECT_FALSE(harness.crashed("fake"));
  EXPECT_EQ(fake.table, expected);  // full + delta + delta, no ops
  EXPECT_EQ(counter("garnet.checkpoint.deltas_applied"), 2u);
  EXPECT_EQ(counter("garnet.recovery.ops_replayed"), 0u);
}

TEST_F(RecoveryFixture, EveryNthCheckpointIsFullAndRebasesTheChain) {
  RecoveryHarness harness(scheduler, bus, delta_config(3));
  harness.set_metrics(registry);
  harness.manage(delta_spec());

  // Cadences: full, delta, delta, full, delta, delta — interval 3.
  for (int cadence = 0; cadence < 6; ++cadence) {
    fake.set(static_cast<std::uint32_t>(cadence), 1);
    scheduler.run_for(Duration::millis(250));
  }
  scheduler.run_for(Duration::millis(100));
  EXPECT_EQ(counter("garnet.checkpoint.taken"), 2u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_taken"), 4u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_stored"), 4u);
}

TEST_F(RecoveryFixture, ServicesWithoutDeltaHooksAlwaysGetFullFrames) {
  // The config asks for deltas but the service only has capture/restore:
  // the harness must fall back to full frames, never emit an un-appliable
  // delta.
  RecoveryHarness harness(scheduler, bus, delta_config(4));
  harness.set_metrics(registry);
  harness.manage(service_spec());

  fake.table = {{1, 1}};
  scheduler.run_for(Duration::millis(800));  // three cadences
  EXPECT_EQ(counter("garnet.checkpoint.taken"), 3u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_taken"), 0u);
}

TEST_F(RecoveryFixture, RecoveryForcesAFullReanchorFrame) {
  // After promotion the primary's state (base + deltas + replay) has
  // diverged from the replica's chain bookkeeping; the next capture must
  // be a full frame even mid-interval.
  RecoveryHarness harness(scheduler, bus, delta_config(8));
  harness.set_metrics(registry);
  harness.manage(delta_spec());

  set_and_log(harness, 1, 10);
  scheduler.run_for(Duration::millis(300));  // cadence 1: full
  set_and_log(harness, 2, 20);
  scheduler.run_for(Duration::millis(250));  // cadence 2: delta
  EXPECT_EQ(counter("garnet.checkpoint.deltas_taken"), 1u);

  harness.crash("fake");
  scheduler.run_for(Duration::seconds(1));  // promote + next cadences
  EXPECT_FALSE(harness.crashed("fake"));
  // Interval 8 would have allowed deltas until cadence 8; the recovery
  // forced at least one more full frame instead.
  EXPECT_GE(counter("garnet.checkpoint.taken"), 2u);
}

TEST_F(RecoveryFixture, DeltaBeforeAnyFullFrameIsRejected) {
  RecoveryHarness harness(scheduler, bus, delta_config(4));
  harness.set_metrics(registry);
  harness.manage(delta_spec());

  // Forge a well-formed delta frame before the first full checkpoint
  // cadence ever fires: the replica has no base to chain it onto.
  core::checkpoint::Header header;
  header.service = "fake";
  header.epoch = 2;
  header.taken_at = scheduler.now();
  fake.set(1, 10);
  post_forged_frame(core::checkpoint::encode_delta(header, 1, fake.capture_delta()));
  scheduler.run_for(Duration::millis(50));

  EXPECT_EQ(counter("garnet.checkpoint.deltas_stored"), 0u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_rejected"), 1u);
}

TEST_F(RecoveryFixture, EpochSkewedDeltaBreaksTheChain) {
  RecoveryHarness harness(scheduler, bus, delta_config(8));
  harness.set_metrics(registry);
  RecoveryHarness::Service spec = delta_spec();
  spec.apply_op = nullptr;
  harness.manage(std::move(spec));

  fake.set(1, 10);
  scheduler.run_for(Duration::millis(300));  // cadence 1: full, chain epoch 1
  EXPECT_EQ(counter("garnet.checkpoint.taken"), 1u);

  // A delta claiming base epoch 5 models a lost replica envelope: the
  // chain head is epoch 1, so the frame must be refused even though its
  // CRC and framing are valid.
  core::checkpoint::Header header;
  header.service = "fake";
  header.epoch = 6;
  header.taken_at = scheduler.now();
  fake.set(2, 20);
  post_forged_frame(core::checkpoint::encode_delta(header, 5, fake.capture_delta()), 2);
  scheduler.run_for(Duration::millis(50));
  EXPECT_EQ(counter("garnet.checkpoint.deltas_stored"), 0u);
  EXPECT_EQ(counter("garnet.checkpoint.deltas_rejected"), 1u);

  // Promotion before the chain heals restores the last full frame only:
  // the skewed delta (and the mutation it carried) never applied.
  harness.crash("fake");
  scheduler.run_for(Duration::seconds(1));
  EXPECT_EQ(fake.table, (std::map<std::uint32_t, std::uint64_t>{{1, 10}}));
}

TEST_F(RecoveryFixture, CorruptDeltaFrameIsRejectedAtReceipt) {
  RecoveryHarness harness(scheduler, bus, delta_config(4));
  harness.set_metrics(registry);
  harness.manage(delta_spec());

  fake.set(1, 10);
  scheduler.run_for(Duration::millis(300));  // full frame stored
  core::checkpoint::Header header;
  header.service = "fake";
  header.epoch = 2;
  header.taken_at = scheduler.now();
  fake.set(2, 20);
  util::Bytes frame = core::checkpoint::encode_delta(header, 1, fake.capture_delta());
  frame[frame.size() / 2] ^= std::byte{0x40};  // bit flip inside the frame
  post_forged_frame(frame, 2);
  scheduler.run_for(Duration::millis(50));

  EXPECT_EQ(counter("garnet.checkpoint.deltas_stored"), 0u);
  // CRC failures surface as checkpoint rejections (decode_any fails
  // before the frame kind is even known).
  EXPECT_GE(counter("garnet.checkpoint.rejected") +
                counter("garnet.checkpoint.deltas_rejected"),
            1u);
}

// --- admission control must never gate the watchdog -------------------------

TEST(AdmissionRecovery, SaturatedDataPoolNeverDelaysWatchdogPromotion) {
  // Regression for the control-class exemption: recovery heartbeats and
  // the promotion path ride the control plane, which takes overdraft
  // tickets instead of waiting behind data admission. A data pool wedged
  // completely shut must therefore leave the crash-detection latency
  // bit-for-bit unchanged.
  const auto promotion_latency = [](bool saturate_pool) {
    Runtime::Config config;
    config.recovery.enabled = true;
    config.recovery.heartbeat_interval = Duration::millis(100);
    config.recovery.miss_threshold = 3;
    config.recovery.checkpoint_interval = Duration::millis(250);
    config.admission.enabled = true;
    config.admission.probing = false;
    config.admission.probe.initial_concurrency = 1;
    config.admission.probe.min_concurrency = 1;
    config.admission.probe.lease = Duration::seconds(30);      // never expires in-test
    config.admission.probe.interval = Duration::seconds(60);   // no probe ticks
    Runtime runtime(config);

    if (saturate_pool) {
      core::DataMessage msg;
      msg.stream_id = {7, 0};
      msg.payload = util::to_bytes("x");
      for (int i = 0; i < 4; ++i) {
        msg.sequence = static_cast<core::SequenceNo>(i);
        runtime.inject_external(core::as_view(msg));  // 1 admitted, 3 refused
      }
      EXPECT_EQ(runtime.admission()->stats().data_rejected, 3u);
      EXPECT_EQ(runtime.admission()->data_pool().holders(), 1u);  // wedged shut
    }
    runtime.run_for(Duration::millis(50));
    runtime.recovery()->crash("dispatch");
    runtime.run_for(Duration::seconds(1));

    EXPECT_EQ(runtime.telemetry().registry.snapshot().counter("garnet.recovery.promotions"),
              1u);
    if (saturate_pool) {
      // Still saturated after the promotion — and control still passes.
      EXPECT_FALSE(runtime.admission()->admit_data(
          util::SimTime::zero() + Duration::seconds(2)));
      EXPECT_TRUE(runtime.admission()->admit_control(
          util::SimTime::zero() + Duration::seconds(2)));
    }
    return runtime.telemetry().registry.snapshot().gauge("garnet.recovery.latency_ns");
  };

  const double unsaturated = promotion_latency(false);
  const double saturated = promotion_latency(true);
  // Detection within (miss_threshold-1, miss_threshold] heartbeats...
  EXPECT_GE(unsaturated, static_cast<double>(Duration::millis(200).ns));
  EXPECT_LE(unsaturated, static_cast<double>(Duration::millis(400).ns));
  // ...and exactly as fast with the front door wedged shut.
  EXPECT_EQ(saturated, unsaturated);
}

}  // namespace
}  // namespace garnet
