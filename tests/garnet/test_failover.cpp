// Filtering-service replication and failover (paper §3's presumed
// "service-level parallelism and replication ... for efficiency,
// data-integrity, and fault-tolerance"), including the hot-vs-cold
// standby trade-off on dedup state.
#include "garnet/failover.hpp"

#include <gtest/gtest.h>

#include <set>

#include "obs/metrics.hpp"

namespace garnet {
namespace {

using util::Duration;
using util::SimTime;

wireless::ReceptionReport make_report(core::SequenceNo seq, wireless::ReceiverId receiver = 1) {
  core::DataMessage msg;
  msg.stream_id = {1, 0};
  msg.sequence = seq;
  msg.payload = util::to_bytes("x");
  return {receiver, -40.0, SimTime{}, core::encode(msg)};
}

struct FailoverFixture : ::testing::Test {
  // Declared before any FilteringFailover in the tests so it outlives
  // them: failover counters now surface only through the registry.
  obs::MetricsRegistry registry;
  sim::Scheduler scheduler;

  std::uint64_t counter(const char* name) { return registry.snapshot().counter(name); }
  double gauge(const char* name) { return registry.snapshot().gauge(name); }

  FilteringFailover::Config config_for(FilteringFailover::Mode mode) {
    FilteringFailover::Config config;
    config.mode = mode;
    config.heartbeat_interval = Duration::millis(100);
    config.miss_threshold = 3;
    return config;
  }
};

TEST_F(FailoverFixture, NormalOperationForwardsPrimaryOnly) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  std::size_t out = 0;
  failover.set_message_sink([&](const core::DataMessage&, SimTime) { ++out; });

  for (core::SequenceNo seq = 0; seq < 10; ++seq) failover.ingest(make_report(seq));
  EXPECT_EQ(out, 10u);
  // The hot standby processed everything too, silently.
  EXPECT_EQ(counter("garnet.failover.suppressed_standby_outputs"), 10u);
  EXPECT_FALSE(failover.failed_over());
}

TEST_F(FailoverFixture, WatchdogPromotesWithinDetectionBudget) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  failover.set_message_sink([](const core::DataMessage&, SimTime) {});

  scheduler.run_for(Duration::seconds(1));
  EXPECT_FALSE(failover.failed_over());

  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));
  EXPECT_TRUE(failover.failed_over());
  EXPECT_EQ(counter("garnet.failover.failovers"), 1u);
  // 3 misses at 100ms heartbeat: detection within (3..4] beats.
  EXPECT_LE(gauge("garnet.failover.detection_latency_ns"),
            static_cast<double>(Duration::millis(400).ns));
  EXPECT_GE(gauge("garnet.failover.detection_latency_ns"),
            static_cast<double>(Duration::millis(200).ns));
}

TEST_F(FailoverFixture, HotStandbyPreservesDedupAcrossFailover) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  std::multiset<core::SequenceNo> delivered;
  failover.set_message_sink(
      [&](const core::DataMessage& m, SimTime) { delivered.insert(m.sequence); });

  // Messages 0..4 delivered pre-crash (first copies).
  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(make_report(seq, 1));
  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));  // promotion completes
  ASSERT_TRUE(failover.failed_over());

  // Late radio copies of the SAME messages arrive after failover. A hot
  // standby remembers them: nothing is re-delivered.
  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(make_report(seq, 2));
  for (core::SequenceNo seq = 0; seq < 5; ++seq) EXPECT_EQ(delivered.count(seq), 1u) << seq;

  // And new traffic flows through the promoted replica.
  failover.ingest(make_report(100));
  EXPECT_EQ(delivered.count(100), 1u);
}

TEST_F(FailoverFixture, ColdStandbySeededFromOpLogDeliversNoDuplicates) {
  // Historical leak, now closed: a promoted cold standby used to start
  // with empty dedup state, so late copies of already-delivered messages
  // leaked through as duplicates. Promotion now seeds it from the
  // primary's checkpoint + op log.
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kCold));
  failover.set_metrics(registry);
  std::multiset<core::SequenceNo> delivered;
  failover.set_message_sink(
      [&](const core::DataMessage& m, SimTime) { delivered.insert(m.sequence); });

  // Crash before the first checkpoint cadence: the seed is pure op-log
  // replay from boot.
  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(make_report(seq, 1));
  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));
  ASSERT_TRUE(failover.failed_over());
  EXPECT_EQ(counter("garnet.failover.ops_replayed"), 5u);

  // Late radio copies of the SAME messages arrive after failover: the
  // seeded standby recognises every one. Zero post-promotion duplicates.
  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(make_report(seq, 2));
  for (core::SequenceNo seq = 0; seq < 5; ++seq) EXPECT_EQ(delivered.count(seq), 1u) << seq;

  // New traffic still flows through the promoted replica.
  failover.ingest(make_report(100));
  EXPECT_EQ(delivered.count(100), 1u);
}

TEST_F(FailoverFixture, ColdStandbySeededFromCheckpointPlusTail) {
  // Let a checkpoint land, then forward more messages past it: the seed
  // must combine the snapshot with the op-log tail since its watermark.
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kCold));
  failover.set_metrics(registry);
  std::multiset<core::SequenceNo> delivered;
  failover.set_message_sink(
      [&](const core::DataMessage& m, SimTime) { delivered.insert(m.sequence); });

  for (core::SequenceNo seq = 0; seq < 5; ++seq) failover.ingest(make_report(seq, 1));
  scheduler.run_for(Duration::millis(300));  // checkpoint cadence fires
  EXPECT_GE(counter("garnet.failover.checkpoints"), 1u);
  for (core::SequenceNo seq = 5; seq < 8; ++seq) failover.ingest(make_report(seq, 1));

  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));
  ASSERT_TRUE(failover.failed_over());
  // Only the post-checkpoint tail (5..7) needed replaying.
  EXPECT_EQ(counter("garnet.failover.ops_replayed"), 3u);

  for (core::SequenceNo seq = 0; seq < 8; ++seq) failover.ingest(make_report(seq, 2));
  for (core::SequenceNo seq = 0; seq < 8; ++seq) EXPECT_EQ(delivered.count(seq), 1u) << seq;
}

TEST_F(FailoverFixture, DetectionWindowLossIsCounted) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  std::size_t out = 0;
  failover.set_message_sink([&](const core::DataMessage&, SimTime) { ++out; });

  failover.kill_primary();
  // Traffic arriving while headless is lost and accounted.
  for (core::SequenceNo seq = 0; seq < 7; ++seq) failover.ingest(make_report(seq));
  EXPECT_EQ(out, 0u);
  EXPECT_EQ(counter("garnet.failover.lost_in_window"), 7u);

  scheduler.run_for(Duration::seconds(1));
  ASSERT_TRUE(failover.failed_over());
  // Post-promotion, those same sequences are recognised by the hot
  // standby as already seen (it shadow-ingested them): silence, not dups.
  for (core::SequenceNo seq = 0; seq < 7; ++seq) failover.ingest(make_report(seq, 2));
  EXPECT_EQ(out, 0u);
  failover.ingest(make_report(50));
  EXPECT_EQ(out, 1u);
}

TEST_F(FailoverFixture, NoSpontaneousFailover) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  scheduler.run_for(Duration::seconds(60));
  EXPECT_FALSE(failover.failed_over());
  EXPECT_EQ(counter("garnet.failover.failovers"), 0u);
  EXPECT_GT(counter("garnet.failover.heartbeats"), 500u);
  EXPECT_EQ(counter("garnet.failover.misses"), 0u);
}

TEST_F(FailoverFixture, KillIsIdempotent) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  failover.kill_primary();
  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));
  EXPECT_EQ(counter("garnet.failover.failovers"), 1u);
}

TEST_F(FailoverFixture, ReceptionEventsFollowActiveReplica) {
  FilteringFailover failover(scheduler, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  std::size_t events = 0;
  failover.set_reception_sink([&](const core::ReceptionEvent&) { ++events; });

  failover.ingest(make_report(0));
  EXPECT_EQ(events, 1u);  // one event from the primary, standby's suppressed

  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));
  failover.ingest(make_report(1));
  EXPECT_EQ(events, 2u);  // now from the promoted standby
}

// --- Bus heartbeat transport ------------------------------------------
// The watchdog is a real RPC client; the primary's liveness is inferred
// from answered pings rather than read off a flag.

TEST_F(FailoverFixture, BusHeartbeatStaysQuietWhilePrimaryAnswers) {
  net::MessageBus bus(scheduler, {});
  FilteringFailover failover(scheduler, bus, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  scheduler.run_for(Duration::seconds(10));
  EXPECT_FALSE(failover.failed_over());
  EXPECT_EQ(counter("garnet.failover.misses"), 0u);
  EXPECT_GT(counter("garnet.failover.heartbeats"), 90u);
}

TEST_F(FailoverFixture, BusHeartbeatPromotesOnCrash) {
  net::MessageBus bus(scheduler, {});
  FilteringFailover failover(scheduler, bus, config_for(FilteringFailover::Mode::kHot));
  failover.set_metrics(registry);
  std::size_t out = 0;
  failover.set_message_sink([&](const core::DataMessage&, SimTime) { ++out; });

  scheduler.run_for(Duration::seconds(1));
  EXPECT_FALSE(failover.failed_over());

  // A dead primary never answers; pings time out and count as misses.
  failover.kill_primary();
  scheduler.run_for(Duration::seconds(1));
  EXPECT_TRUE(failover.failed_over());
  EXPECT_EQ(counter("garnet.failover.failovers"), 1u);
  EXPECT_GE(counter("garnet.failover.misses"), 3u);

  failover.ingest(make_report(0));
  EXPECT_EQ(out, 1u);  // the promoted standby serves traffic
}

}  // namespace
}  // namespace garnet
