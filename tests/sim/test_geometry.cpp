#include "sim/geometry.hpp"

#include <gtest/gtest.h>

namespace garnet::sim {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{3, 5};
  EXPECT_EQ((a + b), (Vec2{4, 7}));
  EXPECT_EQ((b - a), (Vec2{2, 3}));
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Rect, ContainsAndDimensions) {
  const Rect r{{0, 0}, {10, 20}};
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 20.0);
  EXPECT_EQ(r.center(), (Vec2{5, 10}));
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({0, 0}));    // boundary inclusive
  EXPECT_TRUE(r.contains({10, 20}));  // boundary inclusive
  EXPECT_FALSE(r.contains({-0.1, 5}));
  EXPECT_FALSE(r.contains({5, 20.1}));
}

TEST(Rect, ClampProjectsOutsidePoints) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_EQ(r.clamp({5, 5}), (Vec2{5, 5}));
  EXPECT_EQ(r.clamp({-5, 5}), (Vec2{0, 5}));
  EXPECT_EQ(r.clamp({15, 15}), (Vec2{10, 10}));
  EXPECT_EQ(r.clamp({5, -3}), (Vec2{5, 0}));
}

TEST(Circle, Contains) {
  const Circle c{{0, 0}, 5};
  EXPECT_TRUE(c.contains({3, 4}));   // exactly on the rim
  EXPECT_TRUE(c.contains({0, 0}));
  EXPECT_FALSE(c.contains({3.1, 4}));
}

TEST(Circle, IntersectsCircle) {
  const Circle a{{0, 0}, 5};
  EXPECT_TRUE(a.intersects(Circle{{8, 0}, 3}));   // touching
  EXPECT_TRUE(a.intersects(Circle{{2, 0}, 1}));   // contained
  EXPECT_FALSE(a.intersects(Circle{{9, 0}, 3}));
}

TEST(Circle, IntersectsRect) {
  const Circle c{{0, 0}, 5};
  EXPECT_TRUE(c.intersects(Rect{{3, 3}, {10, 10}}));   // corner inside
  EXPECT_FALSE(c.intersects(Rect{{4, 4}, {10, 10}}));  // corner at dist ~5.66
  EXPECT_TRUE(c.intersects(Rect{{-1, -1}, {1, 1}}));   // circle covers rect
}

TEST(GridLayout, CountAndContainment) {
  const Rect area{{0, 0}, {100, 100}};
  for (const std::size_t n : {1u, 2u, 3u, 4u, 7u, 16u, 100u}) {
    const auto points = grid_layout(area, n);
    ASSERT_EQ(points.size(), n);
    for (const Vec2 p : points) EXPECT_TRUE(area.contains(p));
  }
}

TEST(GridLayout, PointsAreDistinct) {
  const auto points = grid_layout({{0, 0}, {100, 100}}, 25);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_GT(distance(points[i], points[j]), 1.0);
    }
  }
}

TEST(GridLayout, SinglePointIsCentered) {
  const auto points = grid_layout({{0, 0}, {10, 10}}, 1);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].x, 5.0, 1e-9);
  EXPECT_NEAR(points[0].y, 5.0, 1e-9);
}

TEST(GridLayout, NonSquareArea) {
  const Rect wide{{0, 0}, {1000, 10}};
  const auto points = grid_layout(wide, 10);
  ASSERT_EQ(points.size(), 10u);
  for (const Vec2 p : points) EXPECT_TRUE(wide.contains(p));
}

}  // namespace
}  // namespace garnet::sim
