#include "sim/realtime.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace garnet::sim {
namespace {

using util::Duration;

TEST(RealtimeDriver, ExecutesAllEventsInSpan) {
  Scheduler scheduler;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    scheduler.schedule_after(Duration::millis(i), [&] { ++fired; });
  }
  // 1000x speed: 5 virtual ms of work in ~5 wall microseconds.
  RealtimeDriver driver(scheduler, 1000.0);
  driver.run_for(Duration::millis(10));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(scheduler.now().ns, Duration::millis(10).ns);
}

TEST(RealtimeDriver, WallTimeTracksVirtualTime) {
  Scheduler scheduler;
  scheduler.schedule_after(Duration::millis(500), [] {});
  // 10x speed: 600 virtual ms should take ~60 wall ms.
  RealtimeDriver driver(scheduler, 10.0);
  const auto start = std::chrono::steady_clock::now();
  driver.run_for(Duration::millis(600));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 50);
  EXPECT_LT(elapsed.count(), 500);  // generous ceiling for slow CI hosts
}

TEST(RealtimeDriver, EmptyScheduleStillAdvancesClock) {
  Scheduler scheduler;
  RealtimeDriver driver(scheduler, 100000.0);
  driver.run_for(Duration::seconds(10));
  EXPECT_EQ(scheduler.now().to_seconds(), 10.0);
}

TEST(RealtimeDriver, EventsMaySpawnEvents) {
  Scheduler scheduler;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 4) scheduler.schedule_after(Duration::millis(1), next);
  };
  scheduler.schedule_after(Duration::millis(1), next);
  RealtimeDriver driver(scheduler, 1000.0);
  driver.run_for(Duration::millis(10));
  EXPECT_EQ(chain, 4);
}

}  // namespace
}  // namespace garnet::sim
