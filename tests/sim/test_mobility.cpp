#include "sim/mobility.hpp"

#include <gtest/gtest.h>

namespace garnet::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(StaticMobility, NeverMoves) {
  StaticMobility m({42, 17});
  EXPECT_EQ(m.position_at(SimTime::zero()), (Vec2{42, 17}));
  EXPECT_EQ(m.position_at(SimTime{} + Duration::seconds(3600)), (Vec2{42, 17}));
}

TEST(RandomWaypoint, StaysInsideArea) {
  RandomWaypoint::Config config;
  config.area = {{0, 0}, {100, 100}};
  RandomWaypoint m(config, {50, 50}, util::Rng(1));
  for (int s = 0; s <= 600; s += 5) {
    const Vec2 p = m.position_at(SimTime{} + Duration::seconds(s));
    EXPECT_TRUE(config.area.contains(p)) << "at t=" << s << "s: " << p.x << "," << p.y;
  }
}

TEST(RandomWaypoint, ActuallyMoves) {
  RandomWaypoint::Config config;
  config.area = {{0, 0}, {1000, 1000}};
  config.min_speed_mps = 5.0;
  config.max_speed_mps = 10.0;
  config.pause = Duration::seconds(0);
  RandomWaypoint m(config, {500, 500}, util::Rng(2));
  const Vec2 start = m.position_at(SimTime::zero());
  const Vec2 later = m.position_at(SimTime{} + Duration::seconds(60));
  EXPECT_GT(distance(start, later), 1.0);
}

TEST(RandomWaypoint, SpeedIsBounded) {
  RandomWaypoint::Config config;
  config.area = {{0, 0}, {1000, 1000}};
  config.min_speed_mps = 1.0;
  config.max_speed_mps = 3.0;
  config.pause = Duration::seconds(0);
  RandomWaypoint m(config, {500, 500}, util::Rng(3));
  Vec2 prev = m.position_at(SimTime::zero());
  for (int s = 1; s <= 300; ++s) {
    const Vec2 cur = m.position_at(SimTime{} + Duration::seconds(s));
    // Max displacement in 1s is max speed (pauses make it smaller).
    EXPECT_LE(distance(prev, cur), 3.0 + 1e-6);
    prev = cur;
  }
}

TEST(RandomWaypoint, DeterministicForSeed) {
  RandomWaypoint::Config config;
  config.area = {{0, 0}, {200, 200}};
  RandomWaypoint a(config, {10, 10}, util::Rng(7));
  RandomWaypoint b(config, {10, 10}, util::Rng(7));
  for (int s = 0; s < 120; s += 3) {
    const SimTime t = SimTime{} + Duration::seconds(s);
    EXPECT_EQ(a.position_at(t), b.position_at(t));
  }
}

TEST(RandomWaypoint, PausesAtWaypoint) {
  RandomWaypoint::Config config;
  config.area = {{0, 0}, {10, 10}};  // tiny area: legs are short
  config.min_speed_mps = 10.0;
  config.max_speed_mps = 10.0;
  config.pause = Duration::seconds(100);
  RandomWaypoint m(config, {5, 5}, util::Rng(11));
  // After the first (short) leg the sensor pauses; two samples inside the
  // long pause must coincide.
  const Vec2 p1 = m.position_at(SimTime{} + Duration::seconds(10));
  const Vec2 p2 = m.position_at(SimTime{} + Duration::seconds(20));
  EXPECT_EQ(p1, p2);
}

TEST(PathMobility, VisitsWaypoints) {
  // Square loop, perimeter 40, speed 1 m/s.
  PathMobility m({{0, 0}, {10, 0}, {10, 10}, {0, 10}}, 1.0);
  EXPECT_EQ(m.position_at(SimTime::zero()), (Vec2{0, 0}));
  const Vec2 p10 = m.position_at(SimTime{} + Duration::seconds(10));
  EXPECT_NEAR(p10.x, 10.0, 1e-6);
  EXPECT_NEAR(p10.y, 0.0, 1e-6);
  const Vec2 p20 = m.position_at(SimTime{} + Duration::seconds(20));
  EXPECT_NEAR(p20.x, 10.0, 1e-6);
  EXPECT_NEAR(p20.y, 10.0, 1e-6);
}

TEST(PathMobility, LoopsBackToStart) {
  PathMobility m({{0, 0}, {10, 0}, {10, 10}, {0, 10}}, 1.0);
  const Vec2 after_loop = m.position_at(SimTime{} + Duration::seconds(40));
  EXPECT_NEAR(after_loop.x, 0.0, 1e-6);
  EXPECT_NEAR(after_loop.y, 0.0, 1e-6);
  const Vec2 lap2 = m.position_at(SimTime{} + Duration::seconds(50));
  EXPECT_NEAR(lap2.x, 10.0, 1e-6);
  EXPECT_NEAR(lap2.y, 0.0, 1e-6);
}

TEST(PathMobility, MidSegmentInterpolation) {
  PathMobility m({{0, 0}, {10, 0}, {10, 10}, {0, 10}}, 2.0);
  const Vec2 p = m.position_at(SimTime{} + Duration::millis(2500));  // 5 m in
  EXPECT_NEAR(p.x, 5.0, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
}

}  // namespace
}  // namespace garnet::sim
