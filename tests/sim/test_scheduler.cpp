#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace garnet::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, RunsEventAtScheduledTime) {
  Scheduler s;
  SimTime observed{-1};
  s.schedule_after(Duration::millis(5), [&] { observed = s.now(); });
  s.run();
  EXPECT_EQ(observed.ns, 5'000'000);
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  s.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  s.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_after(Duration::millis(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_after(Duration::millis(10), [] {});
  s.run();
  bool ran = false;
  s.schedule_at(SimTime{1}, [&] { ran = true; });  // in the past now
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now().ns, 10'000'000);  // clock did not go backwards
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_after(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler s;
  const EventId id = s.schedule_after(Duration::millis(1), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelAfterExecutionFails) {
  Scheduler s;
  const EventId id = s.schedule_after(Duration::millis(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelInvalidIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventId{}));
  EXPECT_FALSE(s.cancel(EventId{9999}));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_after(Duration::millis(i * 10), [&] { ++count; });
  }
  const std::size_t ran = s.run_until(SimTime{} + Duration::millis(45));
  EXPECT_EQ(ran, 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.now().ns, Duration::millis(45).ns);  // advances to deadline
  EXPECT_EQ(s.pending(), 6u);
}

TEST(Scheduler, RunUntilInclusiveOfDeadline) {
  Scheduler s;
  bool ran = false;
  s.schedule_after(Duration::millis(50), [&] { ran = true; });
  s.run_until(SimTime{} + Duration::millis(50));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsMayScheduleEvents) {
  Scheduler s;
  std::vector<std::int64_t> times;
  std::function<void()> chain = [&] {
    times.push_back(s.now().ns);
    if (times.size() < 5) s.schedule_after(Duration::millis(10), chain);
  };
  s.schedule_after(Duration::millis(10), chain);
  s.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(times[i], Duration::millis(10 * (static_cast<std::int64_t>(i) + 1)).ns);
  }
}

TEST(Scheduler, RunWithLimitStopsEarly) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_after(Duration::millis(i), [&] { ++count; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_after(Duration::millis(1), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 4u);
}

TEST(Scheduler, CancelInsideEventOfLaterEvent) {
  Scheduler s;
  bool second_ran = false;
  EventId second{};
  second = s.schedule_after(Duration::millis(20), [&] { second_ran = true; });
  s.schedule_after(Duration::millis(10), [&] { EXPECT_TRUE(s.cancel(second)); });
  s.run();
  EXPECT_FALSE(second_ran);
}

// Stress property: random interleavings of schedule/cancel/run never
// fire a cancelled event, never fire out of time order, and drain fully.
class SchedulerStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerStress, RandomScheduleCancelRun) {
  util::Rng rng(GetParam());
  Scheduler s;
  std::vector<std::pair<std::uint64_t, EventId>> live;  // token -> handle
  std::set<std::uint64_t> cancelled_tokens;
  std::uint64_t next_token = 1;
  std::int64_t last_fire_time = -1;
  std::size_t fired = 0;
  std::size_t scheduled = 0;

  for (int step = 0; step < 3000; ++step) {
    const auto action = rng.below(100);
    if (action < 60) {
      const std::uint64_t token = next_token++;
      const EventId id = s.schedule_after(
          Duration::micros(static_cast<std::int64_t>(rng.below(500))), [&, token] {
            EXPECT_FALSE(cancelled_tokens.contains(token)) << "cancelled event fired";
            EXPECT_GE(s.now().ns, last_fire_time) << "time went backwards";
            last_fire_time = s.now().ns;
            ++fired;
          });
      ++scheduled;
      live.emplace_back(token, id);
    } else if (action < 80 && !live.empty()) {
      const std::size_t pick = rng.below(live.size());
      if (s.cancel(live[pick].second)) cancelled_tokens.insert(live[pick].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      s.run(rng.below(20));
    }
  }
  s.run();
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(fired, scheduled - cancelled_tokens.size());
  EXPECT_EQ(s.executed(), fired);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Scheduler, NextEventTimePeeks) {
  Scheduler s;
  EXPECT_FALSE(s.next_event_time().has_value());
  s.schedule_after(Duration::millis(30), [] {});
  const EventId early = s.schedule_after(Duration::millis(10), [] {});
  ASSERT_TRUE(s.next_event_time().has_value());
  EXPECT_EQ(s.next_event_time()->ns, Duration::millis(10).ns);
  // Cancelling the head exposes the next live event.
  s.cancel(early);
  EXPECT_EQ(s.next_event_time()->ns, Duration::millis(30).ns);
  s.run();
  EXPECT_FALSE(s.next_event_time().has_value());
}

TEST(Scheduler, DeterministicReplay) {
  const auto run_once = [] {
    Scheduler s;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      s.schedule_after(Duration::micros((i * 37) % 100), [&trace, &s] {
        trace.push_back(s.now().ns);
      });
    }
    s.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace garnet::sim
