// WorkerPool: the shard plane's round executor. The contract under test
// is determinism-preserving parallelism — fixed task-to-worker
// assignment (task i runs on worker i mod W, never stolen), a full
// barrier per run() call, and an inline serial mode at workers = 0 that
// produces identical effects.
#include "sim/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace garnet::sim {
namespace {

TEST(WorkerPool, InlineModeRunsEveryTaskOnTheCaller) {
  WorkerPool pool({.workers = 0});
  EXPECT_EQ(pool.workers(), 0u);

  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(8);
  std::vector<WorkerPool::Task> tasks;
  for (std::size_t i = 0; i < ran_on.size(); ++i) {
    tasks.push_back([&ran_on, i, caller] {
      ran_on[i] = std::this_thread::get_id();
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
  }
  pool.run(tasks);
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, RunIsABarrier) {
  WorkerPool pool({.workers = 4, .pin_threads = false});
  std::atomic<int> completed{0};
  std::vector<WorkerPool::Task> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&completed] { completed.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run(tasks);
  // run() returned, so every task must have finished — no straggler may
  // still be in flight.
  EXPECT_EQ(completed.load(), 16);
  pool.run(tasks);
  EXPECT_EQ(completed.load(), 32);
}

TEST(WorkerPool, FixedAssignmentMapsTaskToWorkerModulo) {
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kTasks = 12;
  WorkerPool pool({.workers = kWorkers, .pin_threads = false});

  std::vector<std::thread::id> ran_on(kTasks);
  std::vector<WorkerPool::Task> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&ran_on, i] { ran_on[i] = std::this_thread::get_id(); });
  }
  pool.run(tasks);

  // Task i and task i + W always share a thread: the assignment is the
  // static modulo map, not work stealing.
  for (std::size_t i = 0; i + kWorkers < kTasks; ++i) {
    EXPECT_EQ(ran_on[i], ran_on[i + kWorkers]) << "task " << i;
  }
  // ...and distinct residues run on distinct threads.
  EXPECT_NE(ran_on[0], ran_on[1]);
  EXPECT_NE(ran_on[1], ran_on[2]);
  EXPECT_NE(ran_on[0], ran_on[2]);

  // The map is stable across rounds: a second run lands every task on
  // the same worker it used before.
  std::vector<std::thread::id> again(kTasks);
  std::vector<WorkerPool::Task> rerun;
  for (std::size_t i = 0; i < kTasks; ++i) {
    rerun.push_back([&again, i] { again[i] = std::this_thread::get_id(); });
  }
  pool.run(rerun);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(ran_on[i], again[i]) << "task " << i;
}

TEST(WorkerPool, PartitionedCountersNeedNoLocks) {
  // The shard-plane usage pattern: each task owns disjoint state, so a
  // run over N tasks is race-free by construction. TSan (the CI leg over
  // this suite) is the actual assertion here.
  constexpr std::size_t kShards = 8;
  WorkerPool pool({.workers = kShards});
  std::vector<std::uint64_t> counters(kShards, 0);
  std::vector<WorkerPool::Task> tasks;
  for (std::size_t i = 0; i < kShards; ++i) {
    tasks.push_back([&counters, i] {
      for (int n = 0; n < 1000; ++n) counters[i] += 1;
    });
  }
  for (int round = 0; round < 5; ++round) pool.run(tasks);
  for (const auto c : counters) EXPECT_EQ(c, 5000u);
}

TEST(WorkerPool, MoreTasksThanWorkersAllComplete) {
  WorkerPool pool({.workers = 2, .pin_threads = false});
  std::vector<std::uint64_t> results(31, 0);
  std::vector<WorkerPool::Task> tasks;
  for (std::size_t i = 0; i < results.size(); ++i) {
    tasks.push_back([&results, i] { results[i] = i + 1; });
  }
  pool.run(tasks);
  const auto sum = std::accumulate(results.begin(), results.end(), std::uint64_t{0});
  EXPECT_EQ(sum, 31u * 32u / 2u);
}

TEST(WorkerPool, EmptyTaskListIsANoOp) {
  WorkerPool pool({.workers = 2, .pin_threads = false});
  pool.run({});
  pool.run({});
}

TEST(WorkerPool, ThreadCpuClockIsMonotonicAndAdvancesUnderWork) {
  const std::uint64_t a = thread_cpu_now_ns();
  // Burn a little CPU; the thread-time clock must tick forward.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
  const std::uint64_t b = thread_cpu_now_ns();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0u);
}

}  // namespace
}  // namespace garnet::sim
