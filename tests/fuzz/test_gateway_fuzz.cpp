// Gateway socket-boundary fuzzing: the ingest listener, the line
// protocols and the connection table face arbitrary bytes from
// anonymous peers. Seeded pseudo-fuzzing throws garbage streams,
// truncated and bit-flipped frames, mid-frame disconnects and hostile
// request lines at a gateway over the loopback transport. Invariants:
// the gateway never crashes, never leaks a connection slot, never
// forwards a corrupt frame into the runtime, and never emits a corrupt
// delivery to a subscriber.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "garnet/runtime.hpp"
#include "gw/framing.hpp"
#include "gw/gateway.hpp"
#include "gw/transport.hpp"
#include "util/rng.hpp"

namespace garnet::gw {
namespace {

using util::Duration;

util::Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::byte>(rng.next());
  return out;
}

core::DataMessage random_message(util::Rng& rng) {
  core::DataMessage msg;
  msg.stream_id = {static_cast<core::SensorId>(1 + rng.below(100)),
                   static_cast<core::InternalStreamId>(rng.below(4))};
  msg.sequence = static_cast<core::SequenceNo>(rng.below(10000));
  msg.payload = random_bytes(rng, 64);
  return msg;
}

util::Bytes framed(const core::DataMessage& msg) {
  const util::Bytes body = core::encode(msg);
  util::Bytes out(kLengthPrefixBytes);
  put_length_prefix(static_cast<std::uint32_t>(body.size()), out.data());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void send_sliced(LoopbackTransport& transport, ConnId conn, util::BytesView wire,
                 util::Rng& rng) {
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t chunk = std::min(wire.size() - pos, 1 + rng.below(48));
    transport.peer_send(conn, util::BytesView(wire.data() + pos, chunk));
    pos += chunk;
  }
}

struct Harness {
  Runtime runtime;
  LoopbackTransport transport;
  std::unique_ptr<Gateway> gateway;

  Harness() {
    gateway = std::make_unique<Gateway>(runtime, transport, GatewayConfig{});
    gateway->step(Duration::millis(20));
  }

  void turn(int rounds = 1) {
    for (int i = 0; i < rounds; ++i) gateway->step(Duration::millis(5));
  }
};

class GatewayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatewayFuzz, GarbageStreamsNeverInjectAndNeverCrash) {
  util::Rng rng(GetParam());
  Harness h;
  for (int round = 0; round < 60; ++round) {
    const ConnId conn = h.transport.connect(Listener::kIngest);
    h.turn();
    for (int burst = 0; burst < 4; ++burst) {
      h.transport.peer_send(conn, random_bytes(rng, 512));
      h.gateway->pump();
    }
    h.turn();
  }
  // Random length prefixes overwhelmingly declare oversized bodies, and
  // any body that does fit still has to survive the Figure-2 CRC; no
  // garbage stream may reach the runtime as a valid message.
  EXPECT_EQ(h.runtime.external_in(), 0u);
  const GatewayStats& stats = h.gateway->stats();
  EXPECT_EQ(stats.ingest_frames, 0u);
  // Oversized declarations poison framing, so those producers are cut;
  // a CRC-rejected body keeps its (still aligned) stream open.
  EXPECT_EQ(stats.closed, stats.ingest_oversized);
  EXPECT_GT(stats.ingest_malformed + stats.ingest_oversized, 0u);
  // Every slot taken by a garbage producer is recoverable.
  EXPECT_EQ(h.gateway->connections(), h.transport.open_connections());
}

TEST_P(GatewayFuzz, ValidFramesSurviveAnySlicingAndArriveUncorrupted) {
  util::Rng rng(GetParam());
  Harness h;
  const ConnId producer = h.transport.connect(Listener::kIngest);
  const ConnId sub = h.transport.connect(Listener::kStream);
  h.turn();
  h.transport.peer_send(sub, [] {
    const std::string line = "SUB *\n";
    util::Bytes bytes(line.size());
    std::transform(line.begin(), line.end(), bytes.begin(),
                   [](char c) { return static_cast<std::byte>(c); });
    return bytes;
  }());
  h.turn();
  (void)h.transport.peer_take(sub);  // the OK ack

  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    send_sliced(h.transport, producer, framed(random_message(rng)), rng);
    h.turn(2);
  }
  h.turn(4);

  EXPECT_EQ(h.gateway->stats().ingest_frames, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(h.gateway->stats().ingest_malformed, 0u);

  // Whatever reached the subscriber must parse as intact deliveries —
  // a corrupt frame on the egress wire is the one unforgivable outcome.
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.push(h.transport.peer_take(sub)));
  std::size_t delivered = 0;
  while (const auto frame = assembler.frame()) {
    ASSERT_TRUE(core::decode_delivery(*frame).ok());
    assembler.pop();
    ++delivered;
  }
  EXPECT_EQ(assembler.buffered(), 0u);
  EXPECT_EQ(delivered, static_cast<std::size_t>(kMessages));
}

TEST_P(GatewayFuzz, BitFlippedFramesNeverReachTheRuntime) {
  util::Rng rng(GetParam());
  Harness h;
  std::uint64_t expected_clean = 0;
  for (int round = 0; round < 120; ++round) {
    const ConnId producer = h.transport.connect(Listener::kIngest);
    h.turn();
    util::Bytes wire = framed(random_message(rng));
    const bool flip = rng.below(2) == 0;
    if (flip) {
      // Flip inside the body, sparing the length prefix: framing stays
      // aligned and the Figure-2 checksum must catch it instead.
      const std::size_t at = kLengthPrefixBytes + rng.below(wire.size() - kLengthPrefixBytes);
      wire[at] ^= static_cast<std::byte>(1 + rng.below(255));
    } else {
      ++expected_clean;
    }
    send_sliced(h.transport, producer, wire, rng);
    h.turn(2);
    h.transport.peer_close(producer);
    h.turn();
  }
  EXPECT_EQ(h.runtime.external_in(), expected_clean);
  EXPECT_EQ(h.gateway->stats().ingest_frames, expected_clean);
  EXPECT_EQ(h.gateway->connections(Listener::kIngest), 0u) << "hangups must reap slots";
}

TEST_P(GatewayFuzz, MidFrameDisconnectsAlwaysRecoverTheSlot) {
  util::Rng rng(GetParam());
  Harness h;
  for (int round = 0; round < 150; ++round) {
    const ConnId producer = h.transport.connect(Listener::kIngest);
    h.turn();
    const util::Bytes wire = framed(random_message(rng));
    const std::size_t cut = rng.below(wire.size());  // always truncated
    h.transport.peer_send(producer, util::BytesView(wire.data(), cut));
    h.gateway->pump();
    h.transport.peer_close(producer);
    h.turn();
  }
  EXPECT_EQ(h.gateway->connections(Listener::kIngest), 0u);
  EXPECT_EQ(h.runtime.external_in(), 0u);  // no truncated frame ever injected
  EXPECT_EQ(h.gateway->stats().closed, 150u);
}

TEST_P(GatewayFuzz, HostileRequestLinesNeverCrashTheLineProtocols) {
  util::Rng rng(GetParam());
  Harness h;
  const char* verbs[] = {"GET ", "SUB ", "LIST", "METRICS", "", "PUT ", "get "};
  for (int round = 0; round < 200; ++round) {
    const Listener listener = rng.below(2) == 0 ? Listener::kStream : Listener::kCache;
    const ConnId conn = h.transport.connect(listener);
    h.turn();
    std::string line = verbs[rng.below(std::size(verbs))];
    const std::size_t junk = rng.below(64);
    for (std::size_t i = 0; i < junk; ++i) {
      // Printable-ish junk plus occasional control bytes; '\n' excluded
      // so each round is exactly one request line.
      char c = static_cast<char>(rng.below(256));
      if (c == '\n') c = 'x';
      line.push_back(c);
    }
    line.push_back('\n');
    util::Bytes bytes(line.size());
    std::transform(line.begin(), line.end(), bytes.begin(),
                   [](char c) { return static_cast<std::byte>(c); });
    send_sliced(h.transport, conn, bytes, rng);
    h.turn();
    h.transport.peer_close(conn);
    h.turn();
  }
  EXPECT_EQ(h.gateway->connections(), 0u);
  EXPECT_EQ(h.gateway->subscribers(), 0u);
  // The gateway survived 200 hostile sessions; a final well-formed
  // round-trip proves the shared state is still coherent.
  const ConnId probe = h.transport.connect(Listener::kCache);
  h.turn();
  const std::string get = "GET 1/0\n";
  util::Bytes bytes(get.size());
  std::transform(get.begin(), get.end(), bytes.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  h.transport.peer_send(probe, bytes);
  h.turn();
  const util::Bytes reply = h.transport.peer_take(probe);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(reply.data()), reply.size()), "MISS 1/0\n");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatewayFuzz, ::testing::Values(0x6A7Eu, 0x9E77u, 0xC0DEu));

}  // namespace
}  // namespace garnet::gw
