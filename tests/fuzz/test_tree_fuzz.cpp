// Adversarial-input robustness for the tree routing plane: beacon and
// route frames arrive off the air, so the router and the sink decision
// must survive garbage, bit-flipped valid frames, forged hop counts and
// TTL abuse without crashing, looping traffic, or growing state without
// bound. Seeded pseudo-fuzzing keeps every run deterministic.
#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "wireless/tree.hpp"

namespace garnet::wireless::tree {
namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::byte>(rng.next());
  return out;
}

util::Bytes sample_frame(core::SensorId sensor, core::SequenceNo seq) {
  core::DataMessage msg;
  msg.stream_id = {sensor, 0};
  msg.sequence = seq;
  msg.payload = util::to_bytes("fuzz payload");
  return core::encode(msg);
}

class TreeFuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeFuzzSeeds, DecodersNeverAcceptRandomBytes) {
  util::Rng rng(GetParam());
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    util::Bytes junk = random_bytes(rng, 96);
    // Half the time, force the tree magic + a valid type byte so the
    // fuzz actually reaches the body parsers instead of bailing on the
    // first byte.
    if (!junk.empty() && rng.chance(0.5)) {
      junk[0] = std::byte{kTreeMagic};
      if (junk.size() > 1) {
        junk[1] = std::byte{rng.chance(0.5) ? kBeaconType : kDataType};
      }
    }
    if (decode_beacon(junk).has_value()) ++accepted;
    if (decode_data(junk).has_value()) ++accepted;
    const SinkDecision decision = decide_at_sink(junk);  // must not crash
    if (is_tree_frame(junk)) {
      EXPECT_NE(decision.verdict, SinkDecision::Verdict::kPassThrough);
    }
  }
  // CRC-32C trailers make random acceptance a ~2^-32 event.
  EXPECT_EQ(accepted, 0);
}

TEST_P(TreeFuzzSeeds, BitFlippedValidFramesNeverMisroute) {
  util::Rng rng(GetParam());
  const util::Bytes beacon = encode_beacon(Beacon{root_key(1), 0, root_key(1)});
  const util::Bytes data = encode_data(DataFrame{8, 1, 5, 9, sample_frame(9, 3)});

  for (int i = 0; i < 5000; ++i) {
    util::Bytes mutated = rng.chance(0.5) ? beacon : data;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    // Must not crash; must not decode — unless the flips round-tripped.
    if (const auto b = decode_beacon(mutated)) {
      EXPECT_EQ(mutated, beacon);
    }
    if (const auto d = decode_data(mutated)) {
      EXPECT_EQ(mutated, data);
    }
    (void)decide_at_sink(mutated);
  }
}

TEST_P(TreeFuzzSeeds, RouterSurvivesHostileFrameStream) {
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  TreeConfig config;
  config.neighbor_capacity = 8;
  config.dedup_capacity = 64;
  config.orphan_capacity = 8;
  TreeRouter router(scheduler, config, /*self_key=*/5);
  std::uint64_t transmissions = 0;
  router.set_transmit([&](util::Bytes) { ++transmissions; });
  router.start();

  for (int i = 0; i < 20000; ++i) {
    switch (rng.below(6)) {
      case 0:  // pure garbage
        router.on_frame(random_bytes(rng, 64), -60.0);
        break;
      case 1: {  // forged beacon: arbitrary origin, hop, root
        const Beacon forged{static_cast<std::uint32_t>(rng.next()),
                            static_cast<std::uint16_t>(rng.next()),
                            static_cast<std::uint32_t>(rng.next())};
        router.on_frame(encode_beacon(forged), -40.0 - static_cast<double>(rng.below(60)));
        break;
      }
      case 2: {  // TTL abuse: any ttl from 0 to 255, addressed to us
        const util::Bytes inner =
            sample_frame(static_cast<core::SensorId>(1 + rng.below(20)),
                         static_cast<core::SequenceNo>(rng.below(64)));
        const DataFrame frame{static_cast<std::uint8_t>(rng.next()),
                              static_cast<std::uint8_t>(rng.next()), 5,
                              static_cast<std::uint32_t>(rng.next()), inner};
        router.on_frame(encode_data(frame), -60.0);
        break;
      }
      case 3: {  // tree data wrapping garbage instead of a Figure-2 frame
        const util::Bytes garbage = random_bytes(rng, 48);
        const DataFrame frame{8, 1, 5, 9, garbage};
        router.on_frame(encode_data(frame), -60.0);
        break;
      }
      case 4:  // plain Figure-2 traffic (ingress-proxy path)
        router.on_frame(sample_frame(static_cast<core::SensorId>(1 + rng.below(50)),
                                     static_cast<core::SequenceNo>(rng.next())),
                        -60.0);
        break;
      default:  // time passes: maintenance ticks, timeouts, backoff
        scheduler.run_until(scheduler.now() +
                            util::Duration::millis(1 + static_cast<std::int64_t>(rng.below(300))));
        break;
    }

    // Bounded-state invariants hold at every step, not just at the end.
    ASSERT_LE(router.neighbor_count(), config.neighbor_capacity);
    ASSERT_LE(router.orphan_backlog(), config.orphan_capacity);
    if (router.attached()) {
      // A forged hop can never install an implausible depth.
      ASSERT_GE(router.depth(), 1);
      ASSERT_LE(router.depth(), config.max_ttl);
    }
  }

  const TreeStats& stats = router.stats();
  // The hostile stream was actually exercised, and every transmission is
  // accounted for by a deliberate router action — no amplification loop.
  EXPECT_GT(stats.corrupt_dropped, 0u);
  EXPECT_GT(stats.dup_dropped + stats.ttl_dropped + stats.loop_dropped, 0u);
  EXPECT_LE(transmissions, stats.beacons_sent + stats.forwarded + stats.proxied +
                               stats.spilled + stats.attaches + stats.reparents);
}

TEST_P(TreeFuzzSeeds, SinkDecisionNeverLeaksTreeFramesIntoFiltering) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    util::Bytes wire;
    if (rng.chance(0.3)) {
      wire = encode_beacon(Beacon{static_cast<std::uint32_t>(rng.next()),
                                  static_cast<std::uint16_t>(rng.below(16)),
                                  static_cast<std::uint32_t>(rng.next())});
    } else if (rng.chance(0.5)) {
      wire = encode_data(DataFrame{static_cast<std::uint8_t>(rng.next()),
                                   static_cast<std::uint8_t>(rng.next()),
                                   static_cast<std::uint32_t>(rng.next()),
                                   static_cast<std::uint32_t>(rng.next()),
                                   sample_frame(7, static_cast<core::SequenceNo>(i))});
    } else {
      wire = sample_frame(9, static_cast<core::SequenceNo>(i));
    }
    if (rng.chance(0.4) && !wire.empty()) {
      wire[rng.below(wire.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }

    const SinkDecision decision = decide_at_sink(wire);
    switch (decision.verdict) {
      case SinkDecision::Verdict::kPassThrough:
        // Only non-tree frames pass through untouched.
        EXPECT_FALSE(is_tree_frame(wire));
        break;
      case SinkDecision::Verdict::kInner:
        // Whatever is handed to Filtering must be a valid Figure-2 frame.
        EXPECT_TRUE(core::decode(decision.inner).ok());
        break;
      case SinkDecision::Verdict::kBeacon:
      case SinkDecision::Verdict::kCorrupt:
        break;  // dropped before the middleware — nothing to check
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzzSeeds, ::testing::Values(0xA111u, 0xA222u, 0xA333u));

}  // namespace
}  // namespace garnet::wireless::tree
