// Adversarial-input robustness: every decode path and every service
// endpoint must survive arbitrary bytes without crashing, corrupting
// state, or accepting garbage. Seeded pseudo-fuzzing keeps runs
// deterministic; each seed throws thousands of random and
// mutated-valid inputs at the parsers and the bus endpoints.
#include <gtest/gtest.h>

#include "core/constraints.hpp"
#include "garnet/runtime.hpp"

namespace garnet {
namespace {

using util::Duration;

util::Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::byte>(rng.next());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, MessageDecodeNeverAcceptsRandomBytes) {
  util::Rng rng(GetParam());
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    const util::Bytes junk = random_bytes(rng, 128);
    const auto decoded = core::decode(junk);
    if (decoded.ok()) ++accepted;
  }
  // A 32-bit CRC makes random acceptance a ~2^-32 event.
  EXPECT_EQ(accepted, 0);
}

TEST_P(FuzzSeeds, MessageDecodeSurvivesMutatedValidFrames) {
  util::Rng rng(GetParam());
  core::DataMessage msg;
  msg.stream_id = {1234, 5};
  msg.sequence = 77;
  msg.payload = random_bytes(rng, 64);
  const util::Bytes valid = core::encode(msg);

  for (int i = 0; i < 5000; ++i) {
    util::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    // Must not crash; must not accept (checksum covers every byte) —
    // unless the mutation round-tripped to the original.
    const auto decoded = core::decode(mutated);
    if (mutated != valid) {
      EXPECT_FALSE(decoded.ok());
    }
  }
}

TEST_P(FuzzSeeds, UpdateDecodeNeverAcceptsRandomBytes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const auto decoded = core::decode_update(random_bytes(rng, 64));
    EXPECT_FALSE(decoded.ok());
  }
}

TEST_P(FuzzSeeds, ConstraintParserSurvivesGarbageText) {
  util::Rng rng(GetParam());
  const std::string_view alphabet = "abcdefgmnixsz_0123456789 <>=!{},;#\n\t~";
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const std::size_t len = rng.below(64);
    for (std::size_t c = 0; c < len; ++c) {
      text += alphabet[rng.below(alphabet.size())];
    }
    const auto parsed = core::ConstraintSet::parse(text);  // must not crash
    if (parsed.ok()) {
      // Whatever parsed must re-render and re-parse stably.
      const auto again = core::ConstraintSet::parse(parsed.value().to_string());
      EXPECT_TRUE(again.ok());
    } else {
      EXPECT_LE(parsed.error().offset, text.size());
    }
  }
}

TEST_P(FuzzSeeds, ServiceEndpointsSurviveHostileEnvelopes) {
  Runtime runtime;
  runtime.deploy_receivers(4, 300);
  runtime.deploy_transmitters(4, 300);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  runtime.deploy_population(spec);
  runtime.start_sensors();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));

  util::Rng rng(GetParam());
  const char* targets[] = {
      core::DispatchingService::kEndpointName, core::Orphanage::kEndpointName,
      core::LocationService::kEndpointName,    core::ResourceManager::kEndpointName,
      core::ActuationService::kEndpointName,   core::SuperCoordinator::kEndpointName,
  };
  const net::Address attacker = runtime.bus().add_endpoint("attacker", [](net::Envelope) {});

  for (int i = 0; i < 1500; ++i) {
    const auto target = runtime.bus().lookup(targets[rng.below(std::size(targets))]);
    ASSERT_TRUE(target.has_value());
    // Random type tag (including RPC framing types) + random payload.
    const auto type = static_cast<net::MessageType>(rng.below(120));
    runtime.bus().post(attacker, *target, type, random_bytes(rng, 96));
    if (i % 100 == 0) runtime.run_for(Duration::millis(50));
  }
  runtime.run_for(Duration::seconds(5));

  // The data plane kept working underneath the abuse.
  EXPECT_GT(consumer.received(), 0u);
  // And nothing hostile was admitted into governance state.
  EXPECT_EQ(runtime.coordinator().view().size(), 0u);
  EXPECT_EQ(runtime.location().stats().hints, 0u);
}

TEST_P(FuzzSeeds, FilterSurvivesHostileFrames) {
  sim::Scheduler scheduler;
  core::FilteringService filter(scheduler, {});
  std::uint64_t delivered = 0;
  filter.set_message_sink([&](const core::DataMessage&, util::SimTime) { ++delivered; });

  util::Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    filter.ingest(wireless::ReceptionReport{1, -40.0, scheduler.now(), random_bytes(rng, 64)});
  }
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(filter.stats().malformed, 3000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(0x1111u, 0x2222u, 0x3333u));

}  // namespace
}  // namespace garnet
