// Overload-path fuzzing: bounded inboxes and the NACK machinery must
// survive truncated, oversized and hostile frames arriving at endpoints
// whose queues are already full. Seeded pseudo-fuzzing keeps every run
// deterministic (same contract as test_robustness.cpp).
#include <gtest/gtest.h>

#include "garnet/runtime.hpp"
#include "net/rpc.hpp"

namespace garnet {
namespace {

using util::Duration;

util::Bytes fuzz_frame(util::Rng& rng) {
  // Mostly short/truncated frames, occasionally oversized ones — the
  // inbox, NACK echo and RPC parsers must cope with both extremes.
  const std::size_t len = rng.below(8) == 0 ? 512 + rng.below(4096) : rng.below(16);
  util::Bytes out(len);
  for (auto& b : out) b = static_cast<std::byte>(rng.next());
  return out;
}

class OverloadFuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverloadFuzzSeeds, FullInboxSurvivesHostileFramesUnderEveryPolicy) {
  util::Rng rng(GetParam());
  for (const auto policy : {net::OverflowPolicy::kDropNewest, net::OverflowPolicy::kDropOldest,
                            net::OverflowPolicy::kRejectNack}) {
    sim::Scheduler scheduler;
    net::MessageBus::Config config;
    config.max_jitter = Duration{};
    net::InboxConfig inbox;
    inbox.capacity = 4;
    inbox.policy = policy;
    inbox.service_time = Duration::millis(1);  // far slower than the flood
    config.inboxes["victim"] = inbox;
    net::MessageBus bus(scheduler, config);

    std::uint64_t handled = 0;
    const net::Address victim = bus.add_endpoint("victim", [&](net::Envelope) { ++handled; });
    const net::Address attacker = bus.add_endpoint("attacker", [](net::Envelope) {});

    for (int i = 0; i < 2000; ++i) {
      // Random type tag: substrate framing (kRpcRequest/kRpcResponse/
      // kNack) and app types alike, so NACK echoes of NACK-typed and
      // zero-length frames are all exercised against a full queue.
      const auto type = static_cast<net::MessageType>(rng.below(120));
      bus.post(attacker, victim, type, fuzz_frame(rng));
      if (i % 200 == 0) scheduler.run_until(scheduler.now() + Duration::millis(5));
    }
    scheduler.run();

    // The queue stayed bounded and the accounting stayed coherent:
    // everything posted was either handled or shed (the fault-free bus
    // loses nothing silently).
    const auto& shed = bus.shed_stats();
    EXPECT_EQ(handled + shed.data_total() + shed.control_total(), 2000u);
    EXPECT_EQ(bus.inbox_depth(victim), 0u);
    if (policy == net::OverflowPolicy::kRejectNack) {
      // NACKs echo only for types that are themselves not kNack.
      EXPECT_LE(shed.nacks_sent, shed.data_total() + shed.control_total());
    } else {
      EXPECT_EQ(shed.nacks_sent, 0u);
    }
  }
}

TEST_P(OverloadFuzzSeeds, RpcNodeSurvivesForgedNacksAndStillCompletesCalls) {
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  net::MessageBus::Config config;
  config.max_jitter = Duration{};
  net::MessageBus bus(scheduler, config);

  net::RpcNode server(bus, "server");
  net::RpcNode client(bus, "client");
  server.expose(1, [](net::Address, util::BytesView) -> net::RpcResult {
    return util::to_bytes("ok");
  });
  const net::Address attacker = bus.add_endpoint("attacker", [](net::Envelope) {});

  // Forged/truncated NACKs (plus random RPC framing) aimed at a client
  // with calls in flight: none may complete a call it does not own.
  std::uint64_t succeeded = 0;
  net::CallOptions options;
  options.timeout = Duration::millis(50);
  for (int i = 0; i < 200; ++i) {
    client.call(server.address(), 1, {}, options, [&](net::RpcResult result) {
      if (result.ok()) ++succeeded;
    });
    for (int j = 0; j < 10; ++j) {
      const auto type = static_cast<net::MessageType>(1 + rng.below(3));  // request/response/nack
      bus.post(attacker, client.address(), type, fuzz_frame(rng));
      bus.post(attacker, server.address(), type, fuzz_frame(rng));
    }
    if (i % 20 == 0) scheduler.run_until(scheduler.now() + Duration::millis(5));
  }
  scheduler.run();

  // A forged NACK never matches a pending call (the callee-address check),
  // so every real call still completed against the live server.
  EXPECT_EQ(succeeded, 200u);
  EXPECT_EQ(bus.rpc_stats().nacked, 0u);
}

TEST_P(OverloadFuzzSeeds, RuntimeUnderOverloadSurvivesHostileEnvelopes) {
  // Full stack with flow control on and bounded service inboxes, then the
  // hostile-envelope barrage from test_robustness aimed at the dispatcher
  // — including random kDeliveryCredit frames from an unknown sender,
  // which must be ignored rather than minting credit state.
  Runtime::Config config;
  config.overload.credit_window = 16;
  {
    net::InboxConfig inbox;
    inbox.capacity = 32;
    inbox.policy = net::OverflowPolicy::kDropOldest;
    inbox.service_time = Duration::micros(50);
    config.overload.inboxes[core::DispatchingService::kEndpointName] = inbox;
    config.overload.inboxes[core::Orphanage::kEndpointName] = inbox;
  }
  Runtime runtime(config);
  runtime.deploy_receivers(4, 300);
  runtime.deploy_transmitters(4, 300);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  runtime.deploy_population(spec);
  runtime.start_sensors();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));

  util::Rng rng(GetParam());
  const net::Address attacker = runtime.bus().add_endpoint("attacker", [](net::Envelope) {});
  const auto dispatch = runtime.bus().lookup(core::DispatchingService::kEndpointName);
  ASSERT_TRUE(dispatch.has_value());

  for (int i = 0; i < 1500; ++i) {
    const auto type = static_cast<net::MessageType>(rng.below(120));
    runtime.bus().post(attacker, *dispatch, type, fuzz_frame(rng));
    if (i % 100 == 0) runtime.run_for(Duration::millis(50));
  }
  runtime.run_for(Duration::seconds(5));

  // The data plane survived the barrage...
  EXPECT_GT(consumer.received(), 0u);
  // ...and hostile credit frames minted no flow state for the attacker.
  EXPECT_FALSE(runtime.dispatch().quarantined(attacker));
  EXPECT_EQ(runtime.dispatch().credits(attacker), 16u);  // "unknown" default
}

TEST_P(OverloadFuzzSeeds, AdmissionWireSurfaceSurvivesForgedFramesAtFullInboxes) {
  // The admission gate's wire surface (kAdmissionRelease/kGoodputReport)
  // under a barrage of forged, truncated and oversized frames while the
  // data pool is kept saturated by a real ingest flood: the gate must
  // neither crash, nor leak tickets, nor let the forgery starve the
  // control class.
  Runtime::Config config;
  config.overload.credit_window = 16;
  {
    net::InboxConfig inbox;
    inbox.capacity = 32;
    inbox.policy = net::OverflowPolicy::kDropOldest;
    inbox.service_time = Duration::micros(50);
    config.overload.inboxes[core::DispatchingService::kEndpointName] = inbox;
  }
  config.admission.enabled = true;
  config.admission.probing = true;
  config.admission.probe.initial_concurrency = 4;
  config.admission.probe.min_concurrency = 2;
  config.admission.probe.max_concurrency = 16;
  config.admission.probe.interval = Duration::millis(5);
  config.admission.probe.lease = Duration::micros(500);
  Runtime runtime(config);
  runtime.deploy_receivers(4, 300);
  runtime.deploy_transmitters(4, 300);
  wireless::SensorField::PopulationSpec spec;
  spec.count = 2;
  runtime.deploy_population(spec);
  runtime.start_sensors();

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));

  util::Rng rng(GetParam());
  const net::Address attacker = runtime.bus().add_endpoint("attacker", [](net::Envelope) {});
  const auto gate_addr = runtime.bus().lookup("admission");
  ASSERT_TRUE(gate_addr.has_value());

  core::DataMessage flood;
  flood.stream_id = {200, 0};
  flood.payload = util::to_bytes("x");
  for (int i = 0; i < 1000; ++i) {
    // Real ingress pressure so the forged frames land on a full pool...
    flood.sequence = static_cast<core::SequenceNo>(i);
    for (int burst = 0; burst < 4; ++burst) runtime.inject_external(core::as_view(flood));
    // ...interleaved with hostile admission traffic: well-formed frames
    // carrying absurd values, and raw garbage in both frame types.
    switch (rng.below(4)) {
      case 0: {
        util::ByteWriter w(4);
        w.u32(static_cast<std::uint32_t>(rng.below(1u << 30)));
        runtime.bus().post(attacker, *gate_addr, core::kAdmissionRelease, std::move(w).take());
        break;
      }
      case 1: {
        util::ByteWriter w(16);
        w.u64(rng.next());
        w.u64(rng.next());
        runtime.bus().post(attacker, *gate_addr, core::kGoodputReport, std::move(w).take());
        break;
      }
      case 2:
        runtime.bus().post(attacker, *gate_addr, core::kAdmissionRelease, fuzz_frame(rng));
        break;
      default:
        runtime.bus().post(attacker, *gate_addr, core::kGoodputReport, fuzz_frame(rng));
        break;
    }
    if (i % 100 == 0) runtime.run_for(Duration::millis(5));
  }
  runtime.run_for(Duration::seconds(2));

  ASSERT_NE(runtime.admission(), nullptr);
  const net::AdmissionStats& stats = runtime.admission()->stats();
  // No ticket fabrication: every wire release popped a lease some real
  // admission created, so releases can never exceed admissions.
  EXPECT_LE(stats.wire_releases, stats.data_admitted);
  // No leak: holders are bounded by the largest pool the prober may set.
  EXPECT_LE(runtime.admission()->data_pool().holders(),
            config.admission.probe.max_concurrency);
  EXPECT_GT(stats.wire_malformed, 0u);  // the garbage actually arrived
  // The data plane survived the barrage and control was never starved.
  EXPECT_GT(consumer.received(), 0u);
  EXPECT_EQ(runtime.bus().shed_stats().control_total(), 0u);
  const auto far_future = util::SimTime::zero() + Duration::seconds(100);
  EXPECT_TRUE(runtime.admission()->admit_control(far_future));
  // With every lease long expired, the pool drains to exactly the one
  // ticket that probe admission just took: nothing was wedged open.
  EXPECT_TRUE(runtime.admission()->admit_data(far_future));
  EXPECT_EQ(runtime.admission()->data_pool().holders(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadFuzzSeeds, ::testing::Values(0xAAAAu, 0xBBBBu, 0xCCCCu));

}  // namespace
}  // namespace garnet
