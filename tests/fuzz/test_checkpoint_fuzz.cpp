// Checkpoint-decode robustness: recovery state frames arrive over the
// same bus as everything else, so the decoder and every service's
// restore_state() face arbitrary bytes. Seeded pseudo-fuzzing throws
// random buffers, truncations, bit flips and version skews at them —
// nothing may crash, nothing may be accepted unless it is a byte-exact
// valid frame, and a rejected restore must leave service state
// untouched (no partial application).
#include <gtest/gtest.h>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/checkpoint.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "core/location.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace garnet {
namespace {

namespace checkpoint = core::checkpoint;

util::Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::byte>(rng.next());
  return out;
}

util::Bytes valid_frame(util::Rng& rng) {
  checkpoint::Header header;
  header.service = "fuzzed";
  header.epoch = rng.next();
  header.taken_at = util::SimTime{} + util::Duration::millis(static_cast<std::int64_t>(rng.below(10000)));
  return checkpoint::encode(header, random_bytes(rng, 96));
}

class CheckpointFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointFuzz, CheckpointDecodeNeverAcceptsRandomBytes) {
  util::Rng rng(GetParam());
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    if (checkpoint::decode(random_bytes(rng, 160)).ok()) ++accepted;
  }
  // Magic + version + CRC make random acceptance a ~2^-32 event.
  EXPECT_EQ(accepted, 0);
}

TEST_P(CheckpointFuzz, CheckpointDecodeSurvivesBitFlippedFrames) {
  util::Rng rng(GetParam());
  const util::Bytes valid = valid_frame(rng);
  for (int i = 0; i < 5000; ++i) {
    util::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    // Must not crash; must not accept unless the flips round-tripped.
    const auto decoded = checkpoint::decode(mutated);
    if (mutated != valid) {
      EXPECT_FALSE(decoded.ok());
    }
  }
}

TEST_P(CheckpointFuzz, CheckpointDecodeRejectsEveryTruncationAndPadding) {
  util::Rng rng(GetParam());
  const util::Bytes valid = valid_frame(rng);
  // Every prefix is truncated; any appended junk breaks the declared
  // length; both must be rejected without reading out of bounds.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(checkpoint::decode(util::BytesView(valid.data(), len)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    util::Bytes padded = valid;
    const util::Bytes extra = random_bytes(rng, 16);
    padded.insert(padded.end(), extra.begin(), extra.end());
    if (!extra.empty()) {
      EXPECT_FALSE(checkpoint::decode(padded).ok());
    }
  }
}

TEST_P(CheckpointFuzz, CheckpointDecodeRejectsVersionSkew) {
  util::Rng rng(GetParam());
  const util::Bytes valid = valid_frame(rng);
  for (int i = 0; i < 255; ++i) {
    util::Bytes skewed = valid;
    const auto version = static_cast<std::uint8_t>(1 + rng.below(255));
    if (version == checkpoint::kVersion) continue;
    skewed[4] = std::byte{version};  // byte 4 = version, after the magic
    const auto decoded = checkpoint::decode(skewed);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error(), util::DecodeError::kBadVersion);
  }
}

util::Bytes valid_delta_frame(util::Rng& rng) {
  checkpoint::Header header;
  header.service = "fuzzed";
  header.epoch = rng.next();
  header.taken_at = util::SimTime{} + util::Duration::millis(static_cast<std::int64_t>(rng.below(10000)));
  return checkpoint::encode_delta(header, rng.next(), random_bytes(rng, 96));
}

TEST_P(CheckpointFuzz, DecodeAnyNeverAcceptsRandomBytes) {
  util::Rng rng(GetParam());
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    if (checkpoint::decode_any(random_bytes(rng, 160)).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST_P(CheckpointFuzz, DeltaFramesSurviveBitFlipsAndTruncation) {
  util::Rng rng(GetParam());
  const util::Bytes valid = valid_delta_frame(rng);
  for (int i = 0; i < 5000; ++i) {
    util::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    if (mutated != valid) {
      EXPECT_FALSE(checkpoint::decode_any(mutated).ok());
    }
  }
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(checkpoint::decode_any(util::BytesView(valid.data(), len)).ok());
  }
  // The full-only decoder must treat a pristine delta as foreign.
  EXPECT_FALSE(checkpoint::decode(valid).ok());
}

TEST_P(CheckpointFuzz, FilteringApplyDeltaNeverPartiallyApplies) {
  // Delta bodies face the same arbitrary bytes restore_state does; a
  // rejected apply must leave the standby byte-identical, an accepted
  // one must leave it in a state that still round-trips.
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  core::FilteringService standby(scheduler, {});
  for (core::SequenceNo seq = 0; seq < 10; ++seq) standby.note_seen({3, 0}, seq);
  const util::Bytes before = standby.capture_full();

  for (int i = 0; i < 2000; ++i) {
    if (!standby.apply_delta(random_bytes(rng, 128)).ok()) {
      ASSERT_EQ(standby.capture_state(), before) << "partial apply at iteration " << i;
    } else {
      const util::Bytes again = standby.capture_state();
      ASSERT_TRUE(standby.restore_state(again).ok());
      ASSERT_TRUE(standby.restore_state(before).ok());
    }
  }
}

TEST_P(CheckpointFuzz, CatalogApplyDeltaNeverPartiallyApplies) {
  util::Rng rng(GetParam());
  core::StreamCatalog standby;
  standby.advertise({1, 0}, "one", "temperature");
  standby.note_message({2, 2}, util::SimTime{} + util::Duration::millis(3));
  const util::Bytes before = standby.capture_full();

  for (int i = 0; i < 2000; ++i) {
    if (!standby.apply_delta(random_bytes(rng, 128)).ok()) {
      ASSERT_EQ(standby.capture_state(), before) << "partial apply at iteration " << i;
    } else {
      ASSERT_TRUE(standby.restore_state(before).ok());
    }
  }
}

TEST_P(CheckpointFuzz, MutatedValidDeltaBodiesNeverCorruptFiltering) {
  // Flipped bytes inside an otherwise well-formed delta body: parseable
  // mutations may apply (the frame CRC upstream is the integrity guard),
  // but nothing may crash and rejections must not partially apply.
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  core::FilteringService primary(scheduler, {});
  core::FilteringService standby(scheduler, {});
  for (core::SequenceNo seq = 0; seq < 10; ++seq) primary.note_seen({5, 1}, seq);
  ASSERT_TRUE(standby.restore_state(primary.capture_full()).ok());
  primary.note_seen({5, 1}, 10);
  primary.note_seen({8, 0}, 2);
  const util::Bytes valid_delta = primary.capture_delta();
  const util::Bytes before = standby.capture_state();

  for (int i = 0; i < 3000; ++i) {
    util::Bytes mutated = valid_delta;
    const std::size_t flips = 1 + rng.below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    if (!standby.apply_delta(mutated).ok()) {
      ASSERT_EQ(standby.capture_state(), before);
    } else {
      ASSERT_TRUE(standby.restore_state(before).ok());
    }
  }
}

TEST_P(CheckpointFuzz, FilteringRestoreNeverPartiallyApplies) {
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  core::FilteringService filtering(scheduler, {});
  for (core::SequenceNo seq = 0; seq < 10; ++seq) {
    filtering.note_seen({static_cast<core::SensorId>(1 + rng.below(30)), 0}, seq);
  }
  const util::Bytes before = filtering.capture_state();

  for (int i = 0; i < 2000; ++i) {
    const util::Bytes junk = random_bytes(rng, 128);
    if (!filtering.restore_state(junk).ok()) {
      // Rejected input must leave the dedup state byte-identical.
      ASSERT_EQ(filtering.capture_state(), before) << "partial apply at iteration " << i;
    } else {
      // Whatever was accepted must round-trip stably; then put the
      // original back for the next iteration.
      const util::Bytes again = filtering.capture_state();
      ASSERT_TRUE(filtering.restore_state(again).ok());
      ASSERT_TRUE(filtering.restore_state(before).ok());
    }
  }
}

TEST_P(CheckpointFuzz, DispatchRestoreNeverPartiallyApplies) {
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::DispatchingService dispatch(bus, auth, catalog);
  const net::Address subscriber = bus.add_endpoint("fuzz.consumer", [](net::Envelope) {});
  dispatch.subscribe(subscriber, core::StreamPattern::everything());
  const util::Bytes before = dispatch.capture_state();

  for (int i = 0; i < 2000; ++i) {
    const util::Bytes junk = random_bytes(rng, 128);
    if (!dispatch.restore_state(junk).ok()) {
      ASSERT_EQ(dispatch.capture_state(), before) << "partial apply at iteration " << i;
    } else {
      ASSERT_TRUE(dispatch.restore_state(before).ok());
    }
  }
}

TEST_P(CheckpointFuzz, LocationRestoreNeverPartiallyApplies) {
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  core::AuthService auth{{}};
  core::LocationService location(bus, auth, {});
  const util::Bytes before = location.capture_state();

  for (int i = 0; i < 2000; ++i) {
    if (!location.restore_state(random_bytes(rng, 128)).ok()) {
      ASSERT_EQ(location.capture_state(), before) << "partial apply at iteration " << i;
    } else {
      ASSERT_TRUE(location.restore_state(before).ok());
    }
  }
}

TEST_P(CheckpointFuzz, MutatedValidStateBodiesNeverCorruptFiltering) {
  // Bodies lifted out of real frames, then flipped: these are the bytes
  // a corrupted-but-CRC-colliding checkpoint would hand restore_state.
  util::Rng rng(GetParam());
  sim::Scheduler scheduler;
  core::FilteringService filtering(scheduler, {});
  for (core::SequenceNo seq = 0; seq < 20; ++seq) filtering.note_seen({7, 1}, seq);
  const util::Bytes valid_body = filtering.capture_state();
  const util::Bytes before = valid_body;

  for (int i = 0; i < 3000; ++i) {
    util::Bytes mutated = valid_body;
    const std::size_t flips = 1 + rng.below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    }
    if (!filtering.restore_state(mutated).ok()) {
      ASSERT_EQ(filtering.capture_state(), before);
    } else {
      ASSERT_TRUE(filtering.restore_state(before).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzz, ::testing::Values(0xAAAAu, 0xBBBBu, 0xCCCCu));

}  // namespace
}  // namespace garnet
