// Tracer: span lifecycle, flight-recorder eviction, active-trace cap,
// and the stage-latency histograms fed into a bound registry.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace garnet::obs {
namespace {

TEST(TraceKey, PackingSeparatesDomains) {
  const TraceKey data{0x123456, 7, TraceKey::kData};
  const TraceKey act{0x123456, 7, TraceKey::kActuation};
  EXPECT_NE(data.packed(), act.packed());
  EXPECT_EQ(data, (TraceKey{0x123456, 7}));
}

TEST(Tracer, SpanLifecycle) {
  Tracer tracer;
  const TraceKey key{42, 1};
  tracer.begin_span(key, "radio", 100);
  EXPECT_TRUE(tracer.active(key));
  tracer.end_span(key, "radio", 250);
  tracer.begin_span(key, "filter", 250);
  tracer.end_span(key, "filter", 400);
  tracer.complete(key, 400);

  EXPECT_FALSE(tracer.active(key));
  const Trace* trace = tracer.find_completed(key);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->begin_ns, 100);
  EXPECT_EQ(trace->end_ns, 400);
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_STREQ(trace->spans[0].stage, "radio");
  EXPECT_EQ(trace->spans[0].duration_ns(), 150);
  EXPECT_STREQ(trace->spans[1].stage, "filter");
  EXPECT_EQ(trace->spans[1].duration_ns(), 150);
}

TEST(Tracer, CompleteClosesOpenSpans) {
  Tracer tracer;
  const TraceKey key{1, 1};
  tracer.begin_span(key, "radio", 10);
  tracer.complete(key, 90);
  const Trace* trace = tracer.find_completed(key);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->spans[0].end_ns, 90);
}

TEST(Tracer, UnknownKeysAreNoOps) {
  Tracer tracer;
  tracer.end_span({9, 9}, "radio", 10);  // never began
  tracer.complete({9, 9}, 10);
  tracer.discard({9, 9});
  EXPECT_EQ(tracer.stats().completed, 0u);
  EXPECT_EQ(tracer.stats().discarded, 0u);
}

TEST(Tracer, EndSpanMatchesStageName) {
  Tracer tracer;
  const TraceKey key{1, 1};
  tracer.begin_span(key, "radio", 10);
  tracer.end_span(key, "filter", 20);  // wrong stage: no-op
  tracer.complete(key, 30);
  const Trace* trace = tracer.find_completed(key);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->spans[0].end_ns, 30);  // closed by complete, not end_span
}

TEST(Tracer, DiscardDropsWithoutRecording) {
  Tracer tracer;
  const TraceKey key{5, 5};
  tracer.begin_span(key, "dispatch", 10);
  tracer.discard(key);
  EXPECT_FALSE(tracer.active(key));
  EXPECT_EQ(tracer.find_completed(key), nullptr);
  EXPECT_EQ(tracer.stats().discarded, 1u);
}

TEST(Tracer, FlightRecorderEvictsOldestAtCapacity) {
  Tracer::Config config;
  config.recorder_capacity = 4;
  Tracer tracer(config);
  for (std::uint16_t seq = 0; seq < 10; ++seq) {
    const TraceKey key{1, seq};
    tracer.begin_span(key, "radio", seq * 100);
    tracer.end_span(key, "radio", seq * 100 + 50);
    tracer.complete(key, seq * 100 + 50);
  }
  const auto recorded = tracer.completed_snapshot();
  ASSERT_EQ(recorded.size(), 4u);  // bounded: only the newest four remain
  EXPECT_EQ(recorded.front().key.sequence, 6u);
  EXPECT_EQ(recorded.back().key.sequence, 9u);
  EXPECT_EQ(tracer.stats().completed, 10u);
  EXPECT_EQ(tracer.find_completed({1, 0}), nullptr);  // evicted
  EXPECT_NE(tracer.find_completed({1, 9}), nullptr);
}

TEST(Tracer, ActiveCapAbandonsOldest) {
  Tracer::Config config;
  config.max_active = 3;
  Tracer tracer(config);
  for (std::uint16_t seq = 0; seq < 5; ++seq) {
    tracer.begin_span({1, seq}, "radio", seq);
  }
  EXPECT_EQ(tracer.active_count(), 3u);
  EXPECT_EQ(tracer.stats().abandoned, 2u);
  EXPECT_FALSE(tracer.active({1, 0}));  // oldest went first
  EXPECT_FALSE(tracer.active({1, 1}));
  EXPECT_TRUE(tracer.active({1, 4}));
}

TEST(Tracer, DisabledTracerDoesNothing) {
  Tracer::Config config;
  config.enabled = false;
  Tracer tracer(config);
  tracer.begin_span({1, 1}, "radio", 10);
  EXPECT_EQ(tracer.active_count(), 0u);
  EXPECT_EQ(tracer.stats().started, 0u);
}

TEST(Tracer, ClosedSpansFeedStageHistograms) {
  MetricsRegistry registry;
  Tracer tracer;
  tracer.bind_metrics(&registry);

  const TraceKey key{1, 1};
  tracer.begin_span(key, "filter", 1000);
  tracer.end_span(key, "filter", 251000);  // 250us in "filter"
  tracer.complete(key, 251000);

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot* h = snap.histogram(kStageLatencyMetric, {{"stage", "filter"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 250000.0);
  // Spans closed by complete() (still open) do not feed histograms.
  EXPECT_EQ(snap.histogram(kStageLatencyMetric, {{"stage", "radio"}}), nullptr);
}

TEST(Trace, ToStringListsStages) {
  Tracer tracer;
  const TraceKey key{7, 3};
  tracer.begin_span(key, "radio", 0);
  tracer.end_span(key, "radio", 2000000);
  tracer.complete(key, 2000000);
  const std::string text = tracer.find_completed(key)->to_string();
  EXPECT_NE(text.find("7/3"), std::string::npos);
  EXPECT_NE(text.find("radio"), std::string::npos);
}

}  // namespace
}  // namespace garnet::obs
