// MetricsRegistry: instrument identity, histogram bucketing and
// quantile accuracy, collision handling, snapshot/collector semantics.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace garnet::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry registry;
  Counter& c = registry.counter("garnet.test.events");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.snapshot().counter("garnet.test.events"), 42u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("garnet.test.level");
  g.set(10.5);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("garnet.test.level"), 7.5);
}

TEST(Registry, SameIdentityReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x", {{"k", "v"}});
  Counter& b = registry.counter("x", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(Registry, LabelsAreCanonicalised) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x", {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.counter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, DifferentLabelsAreDifferentSeries) {
  MetricsRegistry registry;
  registry.counter("x", {{"stage", "filter"}}).inc(1);
  registry.counter("x", {{"stage", "deliver"}}).inc(2);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("x", {{"stage", "filter"}}), 1u);
  EXPECT_EQ(snap.counter("x", {{"stage", "deliver"}}), 2u);
}

TEST(Registry, KindCollisionThrows) {
  MetricsRegistry registry;
  registry.counter("garnet.test.collide");
  EXPECT_THROW(registry.gauge("garnet.test.collide"), std::logic_error);
  EXPECT_THROW(registry.histogram("garnet.test.collide"), std::logic_error);
}

TEST(Registry, HistogramLayoutCollisionThrows) {
  MetricsRegistry registry;
  registry.histogram("garnet.test.h", Histogram::Layout::latency_ns());
  // Same layout is a create-or-fetch...
  EXPECT_NO_THROW(registry.histogram("garnet.test.h", Histogram::Layout::latency_ns()));
  // ...another layout under the same identity is a wiring bug.
  EXPECT_THROW(registry.histogram("garnet.test.h", Histogram::Layout::bytes()),
               std::logic_error);
}

TEST(Histogram, BucketBoundaries) {
  // Three buckets with bounds 10, 100, 1000 plus overflow. Bucket i
  // covers (bound[i-1], bound[i]]: a value exactly on a bound lands in
  // that bound's bucket.
  Histogram h(Histogram::Layout{10.0, 10.0, 3});
  h.observe(10.0);    // bucket 0 (at bound)
  h.observe(10.001);  // bucket 1 (just above)
  h.observe(100.0);   // bucket 1
  h.observe(1000.0);  // bucket 2
  h.observe(1001.0);  // overflow
  h.observe(0.5);     // bucket 0

  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_DOUBLE_EQ(snap.bounds[0], 10.0);
  EXPECT_DOUBLE_EQ(snap.bounds[1], 100.0);
  EXPECT_DOUBLE_EQ(snap.bounds[2], 1000.0);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 10.0 + 10.001 + 100.0 + 1000.0 + 1001.0 + 0.5, 1e-9);
}

TEST(Histogram, QuantilesTrackExactGroundTruth) {
  // Log-normal-ish latencies: the histogram's interpolated quantiles
  // must stay within one bucket's relative width (growth factor ~1.33,
  // so ~35%) of util::Quantiles' exact nearest-rank answers.
  Histogram h(Histogram::Layout::latency_ns());
  util::Quantiles exact;
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    // exp() of a normal gives the heavy right tail real delivery
    // latencies have; centred around 200us.
    const double sample = 2e5 * std::exp(0.8 * rng.normal());
    h.observe(sample);
    exact.add(sample);
  }
  const HistogramSnapshot snap = h.snapshot();
  for (const double q : {0.5, 0.9, 0.99}) {
    const double truth = exact.quantile(q);
    EXPECT_NEAR(snap.quantile(q), truth, truth * 0.35)
        << "quantile " << q << " diverged from ground truth";
  }
  EXPECT_NEAR(snap.mean(), exact.mean(), exact.mean() * 0.05);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h(Histogram::Layout{10.0, 10.0, 3});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);  // empty
  h.observe(50.0);
  const HistogramSnapshot snap = h.snapshot();
  // One sample in (10, 100]: every quantile interpolates inside it.
  EXPECT_GT(snap.quantile(0.0), 0.0);
  EXPECT_LE(snap.quantile(1.0), 100.0);
}

TEST(Snapshot, CollectorsAppendSamples) {
  MetricsRegistry registry;
  registry.counter("native").inc(5);
  std::uint64_t pulled = 17;
  registry.add_collector([&pulled](SnapshotBuilder& out) {
    out.counter("pulled", pulled);
    out.gauge("depth", 3.0, {{"queue", "held"}});
  });
  MetricsSnapshot snap = registry.snapshot(123);
  EXPECT_EQ(snap.captured_at_ns, 123u);
  EXPECT_EQ(snap.counter("native"), 5u);
  EXPECT_EQ(snap.counter("pulled"), 17u);
  EXPECT_DOUBLE_EQ(snap.gauge("depth", {{"queue", "held"}}), 3.0);

  // Pull-style: the next snapshot sees the new value, no re-wiring.
  pulled = 18;
  EXPECT_EQ(registry.snapshot().counter("pulled"), 18u);
}

TEST(Snapshot, SamplesSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.counter("b").inc();
  registry.counter("a", {{"x", "2"}}).inc();
  registry.counter("a", {{"x", "1"}}).inc();
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "a");
  EXPECT_EQ(snap.samples[0].labels, (Labels{{"x", "1"}}));
  EXPECT_EQ(snap.samples[1].labels, (Labels{{"x", "2"}}));
  EXPECT_EQ(snap.samples[2].name, "b");
}

}  // namespace
}  // namespace garnet::obs
