// Exposition formats: aligned text, JSON, Prometheus text v0.0.4.
#include "obs/export.hpp"

#include <gtest/gtest.h>

namespace garnet::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsRegistry registry;
  registry.counter("garnet.bus.posted").inc(12);
  registry.gauge("garnet.field.sensors").set(3);
  Histogram& h = registry.histogram("garnet.stage_latency_ns",
                                    Histogram::Layout::latency_ns(), {{"stage", "filter"}});
  h.observe(2e5);
  h.observe(4e5);
  return registry.snapshot(1500000000);
}

TEST(RenderText, AlignedSeriesPerLine) {
  const std::string text = render_text(sample_snapshot());
  EXPECT_NE(text.find("garnet.bus.posted"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("garnet.stage_latency_ns{stage=filter}"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);
}

TEST(RenderJson, CarriesKindsValuesAndQuantiles) {
  const std::string json = render_json(sample_snapshot());
  EXPECT_NE(json.find("\"captured_at_ns\":1500000000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"garnet.bus.posted\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\",\"value\":12"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\",\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"stage\":\"filter\"}"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\",\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
  // No traces array unless traces are passed.
  EXPECT_EQ(json.find("\"traces\""), std::string::npos);
}

TEST(RenderJson, AppendsTraces) {
  Tracer tracer;
  const TraceKey key{66051, 9};  // 0x010203
  tracer.begin_span(key, "radio", 100);
  tracer.end_span(key, "radio", 300);
  tracer.complete(key, 300);

  const std::string json = render_json(sample_snapshot(), tracer.completed_snapshot());
  EXPECT_NE(json.find("\"traces\":[{\"stream\":66051,\"sequence\":9,\"domain\":\"data\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"radio\",\"begin_ns\":100,\"end_ns\":300"), std::string::npos);
}

TEST(RenderPrometheus, SanitisedNamesAndCumulativeBuckets) {
  const std::string prom = render_prometheus(sample_snapshot());
  EXPECT_NE(prom.find("# TYPE garnet_bus_posted counter"), std::string::npos);
  EXPECT_NE(prom.find("garnet_bus_posted 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE garnet_field_sensors gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE garnet_stage_latency_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("garnet_stage_latency_ns_bucket{stage=\"filter\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("garnet_stage_latency_ns_sum{stage=\"filter\"} 600000"),
            std::string::npos);
  EXPECT_NE(prom.find("garnet_stage_latency_ns_count{stage=\"filter\"} 2"), std::string::npos);
  // Dots never survive into metric names.
  EXPECT_EQ(prom.find("garnet.bus"), std::string::npos);
}

}  // namespace
}  // namespace garnet::obs
