#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace garnet::util {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 3; ++i) EXPECT_FALSE(rb.push(i));
  EXPECT_EQ(rb.front(), 1);
  rb.pop();
  EXPECT_EQ(rb.front(), 2);
  rb.pop();
  EXPECT_EQ(rb.front(), 3);
}

TEST(RingBuffer, EvictsOldestWhenFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_TRUE(rb.push(4));  // evicts 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(1), 3);
  EXPECT_EQ(rb.at(2), 4);
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 100; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(rb.at(i), 95 + static_cast<int>(i));
}

TEST(RingBuffer, InterleavedPushPop) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.pop();
  rb.push(3);
  rb.push(4);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 2);
  rb.pop();
  rb.pop();
  rb.pop();
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, CapacityOne) {
  RingBuffer<std::string> rb(1);
  EXPECT_FALSE(rb.push("a"));
  EXPECT_TRUE(rb.push("b"));
  EXPECT_EQ(rb.front(), "b");
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, MoveOnlyFriendly) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(5));
  rb.push(std::make_unique<int>(6));
  rb.push(std::make_unique<int>(7));
  EXPECT_EQ(*rb.front(), 6);
}

}  // namespace
}  // namespace garnet::util
