#include "util/log.hpp"

#include <gtest/gtest.h>

namespace garnet::util {
namespace {

struct LogLevelGuard {
  LogLevel saved = log_level();
  ~LogLevelGuard() { set_log_level(saved); }
};

TEST(Log, DefaultThresholdIsWarn) {
  const LogLevelGuard guard;
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetLevelRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, BelowThresholdDoesNotFormat) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Would crash printf if evaluated with a mismatched format at runtime;
  // the threshold gate must short-circuit before formatting.
  log_debug("test", "%d %s", 1, "ok");
  log_info("test", "%u", 42u);
  log_warn("test", "plain message");
}

TEST(Log, EmitsAtOrAboveThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  // Writes to stderr; this test just exercises the live path end-to-end
  // (no crash, no UB under the format pragma) at every level.
  log_info("component", "value=%d", 7);
  log_warn("component", "warned");
  log(LogLevel::kError, "component", "errored with %s", "detail");
}

TEST(Log, NoArgumentFormIsLiteral) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  // A literal containing % must be safe in the zero-arg overload.
  log_info("component", "100% literal percent");
}

}  // namespace
}  // namespace garnet::util
