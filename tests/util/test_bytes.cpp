#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace garnet::util {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u24(0x00ABCDEF);
  w.u32(0xDEADBEEF);
  const Bytes out = std::move(w).take();
  ASSERT_EQ(out.size(), 1u + 2 + 3 + 4);
  EXPECT_EQ(static_cast<unsigned>(out[0]), 0xABu);
  EXPECT_EQ(static_cast<unsigned>(out[1]), 0x12u);
  EXPECT_EQ(static_cast<unsigned>(out[2]), 0x34u);
  EXPECT_EQ(static_cast<unsigned>(out[3]), 0xABu);
  EXPECT_EQ(static_cast<unsigned>(out[4]), 0xCDu);
  EXPECT_EQ(static_cast<unsigned>(out[5]), 0xEFu);
  EXPECT_EQ(static_cast<unsigned>(out[6]), 0xDEu);
}

TEST(ByteRoundTrip, AllPrimitives) {
  ByteWriter w;
  w.u8(0x7F);
  w.u16(0xFFFF);
  w.u24(0xFFFFFF);
  w.u32(0x12345678);
  w.u64(0xFEDCBA9876543210ull);
  w.i64(-123456789);
  w.f64(3.14159);
  w.str("garnet");

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u16(), 0xFFFF);
  EXPECT_EQ(r.u24(), 0xFFFFFFu);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_EQ(r.u64(), 0xFEDCBA9876543210ull);
  EXPECT_EQ(r.i64(), -123456789);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "garnet");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteRoundTrip, FloatSpecials) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  ByteReader r(w.view());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(ByteReader, TruncationSticks) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.view());
  (void)r.u32();  // needs 4, only 2 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // subsequent reads keep failing safely
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, EmptyInput) {
  ByteReader r(BytesView{});
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, RawReadsExact) {
  ByteWriter w;
  w.raw(to_bytes("hello world"));
  ByteReader r(w.view());
  EXPECT_EQ(to_string(r.raw(5)), "hello");
  EXPECT_EQ(r.remaining(), 6u);
}

TEST(ByteReader, StrTruncatedLength) {
  ByteWriter w;
  w.u16(100);  // claims 100 bytes, provides none
  ByteReader r(w.view());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, StringHelpersRoundTrip) {
  const Bytes b = to_bytes("abc\0def");
  EXPECT_EQ(to_string(b), std::string("abc"));  // string_view stops at NUL here
  const Bytes full = to_bytes(std::string_view("abc\0def", 7));
  EXPECT_EQ(to_string(full).size(), 7u);
}

TEST(ByteWriter, ConsumedTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.view());
  (void)r.u32();
  EXPECT_EQ(r.consumed(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace garnet::util
