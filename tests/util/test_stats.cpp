#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace garnet::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 42.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 42.0);
  EXPECT_EQ(acc.max(), 42.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-5.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), -5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Quantiles, EmptyIsZero) {
  const Quantiles q;
  EXPECT_EQ(q.quantile(0.5), 0.0);
  EXPECT_EQ(q.mean(), 0.0);
  EXPECT_EQ(q.max(), 0.0);
}

TEST(Quantiles, MedianOfOddSet) {
  Quantiles q;
  for (const double x : {9.0, 1.0, 5.0}) q.add(x);
  EXPECT_EQ(q.median(), 5.0);
}

TEST(Quantiles, ExtremesAndOrder) {
  Quantiles q;
  for (int i = 100; i >= 1; --i) q.add(static_cast<double>(i));
  EXPECT_EQ(q.quantile(0.0), 1.0);
  EXPECT_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.9), 90.0, 1.0);
  EXPECT_EQ(q.max(), 100.0);
  EXPECT_NEAR(q.mean(), 50.5, 1e-9);
}

TEST(Quantiles, ClampsOutOfRangeQ) {
  Quantiles q;
  q.add(3.0);
  EXPECT_EQ(q.quantile(-1.0), 3.0);
  EXPECT_EQ(q.quantile(2.0), 3.0);
}

TEST(Quantiles, AddAfterQueryStillSorted) {
  Quantiles q;
  q.add(10.0);
  EXPECT_EQ(q.median(), 10.0);
  q.add(0.0);
  q.add(20.0);
  EXPECT_EQ(q.median(), 10.0);
  EXPECT_EQ(q.quantile(0.0), 0.0);
}

TEST(Quantiles, AcceptsDurations) {
  Quantiles q;
  q.add(Duration::millis(5));
  q.add(Duration::millis(15));
  EXPECT_NEAR(q.mean(), 10e6, 1e-3);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bucket 0
  h.add(9.99);  // bucket 9
  h.add(5.0);   // bucket 5
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.5);
  h.add(1.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('2'), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace garnet::util
