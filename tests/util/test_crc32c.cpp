#include "util/crc32c.hpp"

#include <gtest/gtest.h>

namespace garnet::util {
namespace {

// Published CRC-32C check values.
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc32c(to_bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(to_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32c(to_bytes("a")), 0xC1D04330u);
  EXPECT_EQ(crc32c(to_bytes("abc")), 0x364B3FB7u);
}

TEST(Crc32c, AllZeros32Bytes) {
  const Bytes zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);  // RFC 3720 B.4 test vector
}

TEST(Crc32c, AllOnes32Bytes) {
  const Bytes ones(32, std::byte{0xFF});
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);  // RFC 3720 B.4 test vector
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  Crc32c crc;
  crc.update(BytesView(data).first(10));
  crc.update(BytesView(data).subspan(10));
  EXPECT_EQ(crc.value(), crc32c(data));
}

TEST(Crc32c, DetectsSingleBitFlip) {
  Bytes data = to_bytes("sensor payload");
  const std::uint32_t before = crc32c(data);
  data[5] ^= std::byte{0x01};
  EXPECT_NE(crc32c(data), before);
}

TEST(Crc32c, DetectsTransposition) {
  const std::uint32_t a = crc32c(to_bytes("ab"));
  const std::uint32_t b = crc32c(to_bytes("ba"));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace garnet::util
