#include "util/time.hpp"

#include <gtest/gtest.h>

namespace garnet::util {
namespace {

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::nanos(7).ns, 7);
  EXPECT_EQ(Duration::micros(3).ns, 3'000);
  EXPECT_EQ(Duration::millis(2).ns, 2'000'000);
  EXPECT_EQ(Duration::seconds(1).ns, 1'000'000'000);
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::seconds(2).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(300);
  const Duration b = Duration::millis(200);
  EXPECT_EQ((a + b).ns, Duration::millis(500).ns);
  EXPECT_EQ((a - b).ns, Duration::millis(100).ns);
  EXPECT_EQ((b - a).ns, Duration::millis(-100).ns);
  EXPECT_EQ((a * 3).ns, Duration::millis(900).ns);
  EXPECT_EQ((a / 3).ns, Duration::millis(100).ns);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::micros(1000), Duration::millis(1));
  EXPECT_GE(Duration::seconds(1), Duration::millis(1000));
}

TEST(SimTime, Arithmetic) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::seconds(5);
  EXPECT_EQ(t1.ns, 5'000'000'000);
  EXPECT_EQ((t1 - t0).ns, Duration::seconds(5).ns);
  EXPECT_EQ((t1 - Duration::seconds(2)).ns, Duration::seconds(3).ns);
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 5.0);
}

TEST(SimTime, Ordering) {
  const SimTime early{10};
  const SimTime late{20};
  EXPECT_LT(early, late);
  EXPECT_EQ(early, SimTime{10});
  EXPECT_GT(late - early, Duration::nanos(5));
}

TEST(SimTime, NegativeSentinelComparable) {
  // Services use SimTime{-1} as "never"; it must order before zero.
  EXPECT_LT(SimTime{-1}, SimTime::zero());
}

}  // namespace
}  // namespace garnet::util
