// SharedBytes is the ownership primitive under the zero-copy payload
// path: adopt counts one allocation, handle copies and sub-views count
// nothing, and every escape back to owned bytes counts one copy. The
// accounting discipline is what the integration guard and the dispatch
// bench pin against, so it gets its own unit coverage here.
#include "util/shared_bytes.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "util/bytes.hpp"

namespace garnet::util {
namespace {

Bytes pattern(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::byte>(i & 0xFF);
  return out;
}

TEST(SharedBytesTest, DefaultIsEmptyWithNoAllocation) {
  const PayloadStats before = payload_stats();
  const SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.use_count(), 0);
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.copies, before.copies);
}

TEST(SharedBytesTest, AdoptCountsOneAllocationAndNoCopy) {
  const PayloadStats before = payload_stats();
  const SharedBytes shared{pattern(64)};
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations - before.allocations, 1u);
  EXPECT_EQ(after.allocation_bytes - before.allocation_bytes, 64u);
  EXPECT_EQ(after.copies - before.copies, 0u);
  EXPECT_EQ(shared.size(), 64u);
  EXPECT_EQ(shared.use_count(), 1);
}

TEST(SharedBytesTest, AdoptingEmptyBytesCountsNothing) {
  const PayloadStats before = payload_stats();
  const SharedBytes shared{Bytes{}};
  EXPECT_TRUE(shared.empty());
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations, before.allocations);
}

TEST(SharedBytesTest, CopyOfCountsOneAllocationAndOneCopy) {
  const Bytes source = pattern(32);
  const PayloadStats before = payload_stats();
  const SharedBytes shared = SharedBytes::copy_of(source);
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations - before.allocations, 1u);
  EXPECT_EQ(after.copies - before.copies, 1u);
  // A real copy: different storage, same contents.
  EXPECT_NE(shared.data(), source.data());
  EXPECT_TRUE(std::equal(source.begin(), source.end(), shared.data()));
}

TEST(SharedBytesTest, HandleCopiesShareTheAllocationUncounted) {
  const SharedBytes original{pattern(16)};
  const PayloadStats before = payload_stats();
  const SharedBytes copy = original;               // NOLINT(performance-unnecessary-copy-initialization)
  const SharedBytes moved = SharedBytes{original};  // copy then move
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.copies, before.copies);
  EXPECT_EQ(copy.data(), original.data());
  EXPECT_EQ(moved.data(), original.data());
  EXPECT_EQ(original.use_count(), 3);
}

TEST(SharedBytesTest, ViewAliasesSubrangeOfSameAllocation) {
  const SharedBytes whole{pattern(100)};
  const PayloadStats before = payload_stats();
  const SharedBytes middle = whole.view(10, 20);
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.copies, before.copies);
  EXPECT_EQ(middle.size(), 20u);
  EXPECT_EQ(middle.data(), whole.data() + 10);
  EXPECT_EQ(middle.span()[0], static_cast<std::byte>(10));
  EXPECT_EQ(whole.use_count(), 2);
}

TEST(SharedBytesTest, BufferSurvivesOriginalHandleDestruction) {
  // The fan-out / retry property in miniature: the last surviving view
  // keeps the allocation alive after the handle that created it is gone.
  SharedBytes view;
  const std::byte* data = nullptr;
  {
    const SharedBytes original{pattern(48)};
    data = original.data();
    view = original.view(8, 8);
  }
  EXPECT_EQ(view.use_count(), 1);
  EXPECT_EQ(view.data(), data + 8);
  EXPECT_EQ(view.span()[0], static_cast<std::byte>(8));
}

TEST(SharedBytesTest, ToOwnedCopyCountsOneCopy) {
  const SharedBytes shared{pattern(24)};
  const PayloadStats before = payload_stats();
  const Bytes owned = shared.to_owned_copy();
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.copies - before.copies, 1u);
  EXPECT_EQ(after.allocations, before.allocations);  // owned escape, not a shared entry
  EXPECT_EQ(owned.size(), shared.size());
  EXPECT_NE(owned.data(), shared.data());
}

TEST(SharedBytesTest, TakeSharedAdoptsWriterBuffer) {
  ByteWriter w(8);
  w.u32(0xDEADBEEFu);
  w.u32(0x01020304u);
  const PayloadStats before = payload_stats();
  const SharedBytes frame = take_shared(std::move(w));
  const PayloadStats after = payload_stats();
  EXPECT_EQ(after.allocations - before.allocations, 1u);
  EXPECT_EQ(after.copies - before.copies, 0u);
  ByteReader r(frame);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u32(), 0x01020304u);
}

TEST(SharedBytesTest, CountedCopyCountsUnlessEmpty) {
  const Bytes source = pattern(12);
  const PayloadStats before = payload_stats();
  const Bytes copied = counted_copy(source);
  EXPECT_EQ(payload_stats().copies - before.copies, 1u);
  EXPECT_EQ(copied, source);
  const Bytes nothing = counted_copy(BytesView{});
  EXPECT_TRUE(nothing.empty());
  EXPECT_EQ(payload_stats().copies - before.copies, 1u);  // empty copy not counted
}

TEST(SharedBytesTest, ImplicitBytesViewConversion) {
  const SharedBytes shared{pattern(10)};
  const BytesView view = shared;
  EXPECT_EQ(view.data(), shared.data());
  EXPECT_EQ(view.size(), 10u);
}

}  // namespace
}  // namespace garnet::util
