#include "util/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace garnet::util {
namespace {

enum class TestError { kBad, kWorse };

TEST(Result, HoldsValue) {
  const Result<int, TestError> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  const Result<int, TestError> r(Err{TestError::kWorse});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), TestError::kWorse);
}

TEST(Result, ValueOrFallsBack) {
  const Result<int, TestError> ok(7);
  const Result<int, TestError> bad(Err{TestError::kBad});
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string, TestError> r(std::string("payload"));
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, SameValueAndErrorTypesDisambiguated) {
  const Result<int, int> ok(5);
  const Result<int, int> bad(Err{9});
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), 9);
}

TEST(Status, DefaultIsOk) {
  const Status<TestError> s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  const Status<TestError> s(Err{TestError::kBad});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error(), TestError::kBad);
}

}  // namespace
}  // namespace garnet::util
