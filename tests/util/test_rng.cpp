#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace garnet::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShifted) {
  Rng rng(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  // Reference value of splitmix64 starting from state 0.
  EXPECT_EQ(first, 0xE220A8397B1DCDAFull);
}

}  // namespace
}  // namespace garnet::util
