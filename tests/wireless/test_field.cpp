#include "wireless/field.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace garnet::wireless {
namespace {

using util::Duration;

/// The medium exports its counters through the registry now; tests read
/// them the way operators do.
std::uint64_t radio_counter(obs::MetricsRegistry& registry, std::string_view name) {
  return registry.snapshot().counter(name);
}

SensorField::Config small_field() {
  SensorField::Config config;
  config.area = {{0, 0}, {500, 500}};
  config.radio.base_loss = 0.0;
  config.radio.edge_loss = 0.0;
  config.seed = 11;
  return config;
}

struct FieldFixture : ::testing::Test {
  sim::Scheduler scheduler;
};

TEST_F(FieldFixture, ReceiverGridCoversArea) {
  SensorField field(scheduler, small_field());
  field.add_receiver_grid(9, 150);
  ASSERT_EQ(field.medium().receivers().size(), 9u);
  for (const Receiver& rx : field.medium().receivers()) {
    EXPECT_TRUE(field.area().contains(rx.position));
    EXPECT_EQ(rx.range_m, 150);
  }
}

TEST_F(FieldFixture, ReceiverIdsUnique) {
  SensorField field(scheduler, small_field());
  field.add_receiver_grid(16, 100);
  std::set<ReceiverId> ids;
  for (const Receiver& rx : field.medium().receivers()) ids.insert(rx.id);
  EXPECT_EQ(ids.size(), 16u);
}

TEST_F(FieldFixture, TransmitterGrid) {
  SensorField field(scheduler, small_field());
  field.add_transmitter_grid(4, 200);
  EXPECT_EQ(field.medium().transmitters().size(), 4u);
}

TEST_F(FieldFixture, PopulationCreatesSensorsWithSequentialIds) {
  SensorField field(scheduler, small_field());
  SensorField::PopulationSpec spec;
  spec.first_id = 100;
  spec.count = 12;
  field.add_population(spec);
  EXPECT_EQ(field.sensor_count(), 12u);
  for (core::SensorId id = 100; id < 112; ++id) {
    EXPECT_NE(field.find_sensor(id), nullptr) << id;
  }
  EXPECT_EQ(field.find_sensor(99), nullptr);
}

TEST_F(FieldFixture, PopulationSensorsStayInsideArea) {
  SensorField field(scheduler, small_field());
  SensorField::PopulationSpec spec;
  spec.count = 10;
  field.add_population(spec);
  field.start_all();
  scheduler.run_until(util::SimTime{} + Duration::seconds(120));
  for (std::size_t i = 0; i < field.sensor_count(); ++i) {
    EXPECT_TRUE(field.area().contains(field.sensor_at(i).position()));
  }
}

TEST_F(FieldFixture, StartAllProducesTraffic) {
  obs::MetricsRegistry registry;
  SensorField field(scheduler, small_field());
  field.medium().set_metrics(registry);
  field.add_receiver_grid(4, 400);
  SensorField::PopulationSpec spec;
  spec.count = 5;
  spec.interval_ms = 200;
  field.add_population(spec);

  std::size_t frames = 0;
  field.medium().set_uplink_sink([&](const ReceptionReport&) { ++frames; });
  field.start_all();
  scheduler.run_until(util::SimTime{} + Duration::seconds(5));

  EXPECT_GT(frames, 50u);  // 5 sensors * ~25 samples, likely duplicated
  EXPECT_GT(radio_counter(registry, "garnet.radio.uplink_frames"), 100u);
}

TEST_F(FieldFixture, StopAllSilencesField) {
  obs::MetricsRegistry registry;
  SensorField field(scheduler, small_field());
  field.medium().set_metrics(registry);
  field.add_receiver_grid(4, 400);
  SensorField::PopulationSpec spec;
  spec.count = 3;
  field.add_population(spec);
  field.start_all();
  scheduler.run_until(util::SimTime{} + Duration::seconds(2));
  field.stop_all();
  const auto frames = radio_counter(registry, "garnet.radio.uplink_frames");
  scheduler.run_until(util::SimTime{} + Duration::seconds(10));
  EXPECT_EQ(radio_counter(registry, "garnet.radio.uplink_frames"), frames);
}

TEST_F(FieldFixture, DeterministicAcrossRuns) {
  const auto run_once = [] {
    sim::Scheduler scheduler;
    SensorField field(scheduler, small_field());
    field.add_receiver_grid(4, 300);
    SensorField::PopulationSpec spec;
    spec.count = 4;
    field.add_population(spec);
    std::vector<std::int64_t> trace;
    field.medium().set_uplink_sink(
        [&](const ReceptionReport& r) { trace.push_back(r.received_at.ns); });
    field.start_all();
    scheduler.run_until(util::SimTime{} + Duration::seconds(10));
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(FieldFixture, ExplicitSensorPlacement) {
  SensorField field(scheduler, small_field());
  SensorNode::Config config;
  config.id = 77;
  config.streams.push_back({});
  SensorNode& sensor =
      field.add_sensor(std::move(config), std::make_unique<sim::StaticMobility>(sim::Vec2{9, 9}));
  EXPECT_EQ(sensor.id(), 77u);
  EXPECT_EQ(sensor.position(), (sim::Vec2{9, 9}));
  EXPECT_EQ(field.find_sensor(77), &sensor);
}

}  // namespace
}  // namespace garnet::wireless
