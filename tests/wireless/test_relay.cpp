// Multi-hop relaying (paper §8): relay-capable sensors overhear
// neighbours and re-transmit frames tagged kRelayed; the filter treats
// relayed copies as duplicates of the original and keeps them out of
// location inference.
#include <gtest/gtest.h>

#include "core/filtering.hpp"
#include "wireless/sensor.hpp"

namespace garnet::wireless {
namespace {

using util::Duration;
using util::SimTime;

RadioMedium::Config perfect_radio() {
  RadioMedium::Config config;
  config.base_loss = 0.0;
  config.edge_loss = 0.0;
  config.max_jitter = Duration::nanos(0);
  return config;
}

struct RelayFixture : ::testing::Test {
  sim::Scheduler scheduler;
  RadioMedium medium{scheduler, perfect_radio(), util::Rng(1)};
  std::vector<core::DataMessage> heard;

  void add_receiver_at(sim::Vec2 pos, double range) {
    medium.add_receiver({static_cast<ReceiverId>(medium.receivers().size() + 1), pos, range});
  }

  void attach_sink() {
    medium.set_uplink_sink([this](const ReceptionReport& r) {
      const auto decoded = core::decode(r.frame);
      ASSERT_TRUE(decoded.ok());
      heard.push_back(decoded.value());
    });
  }

  std::unique_ptr<SensorNode> make_node(core::SensorId id, sim::Vec2 pos, bool relay,
                                        bool sampling = true) {
    SensorNode::Config config;
    config.id = id;
    config.capabilities.relay_capable = relay;
    config.relay_overhear_range_m = 200;
    if (sampling) {
      StreamSpec spec;
      spec.interval_ms = 100;
      config.streams.push_back(spec);
    }
    return std::make_unique<SensorNode>(scheduler, medium, std::move(config),
                                        std::make_unique<sim::StaticMobility>(pos),
                                        util::Rng(id));
  }
};

TEST_F(RelayFixture, RelayExtendsCoverage) {
  // Receiver covers only the relay's position (150m away, range 160m);
  // the source is out of its range (300m) but within the relay's
  // overhear range.
  add_receiver_at({400, 0}, 160);
  attach_sink();

  auto source = make_node(1, {100, 0}, /*relay=*/false);
  auto relay = make_node(2, {250, 0}, /*relay=*/true, /*sampling=*/false);

  source->start();
  relay->start();
  scheduler.run_until(SimTime{} + Duration::seconds(2));

  // Direct frames from the source never reach the receiver (300m away,
  // range 100m); everything heard must be a relayed copy.
  ASSERT_FALSE(heard.empty());
  for (const core::DataMessage& msg : heard) {
    EXPECT_EQ(msg.stream_id.sensor, 1u);
    EXPECT_TRUE(msg.header.has(core::HeaderFlag::kRelayed));
  }
  EXPECT_GT(relay->frames_relayed(), 0u);
}

TEST_F(RelayFixture, RelayedFramesNotReRelayed) {
  // Chain: source -> relayA -> relayB. B must not forward A's relays.
  add_receiver_at({1000, 0}, 50);  // out of everyone's reach
  attach_sink();

  auto source = make_node(1, {0, 0}, false);
  auto relay_a = make_node(2, {150, 0}, true, false);
  auto relay_b = make_node(3, {300, 0}, true, false);

  source->start();
  relay_a->start();
  relay_b->start();
  scheduler.run_until(SimTime{} + Duration::seconds(2));

  EXPECT_GT(relay_a->frames_relayed(), 0u);
  // B only ever hears A's already-relayed frames (source is 300m away,
  // overhear range 200m): it must forward none of them.
  EXPECT_EQ(relay_b->frames_relayed(), 0u);
}

TEST_F(RelayFixture, RelayDoesNotForwardOwnOrDuplicateFrames) {
  add_receiver_at({0, 0}, 1000);
  attach_sink();

  auto relay = make_node(2, {100, 0}, true);  // relay that also samples
  relay->start();
  scheduler.run_until(SimTime{} + Duration::seconds(2));

  // It heard only its own transmissions; nothing to relay.
  EXPECT_EQ(relay->frames_relayed(), 0u);
  EXPECT_GT(relay->messages_sent(), 0u);
}

TEST_F(RelayFixture, TwoRelaysForwardOnceEach) {
  add_receiver_at({400, 0}, 120);
  attach_sink();

  auto source = make_node(1, {100, 0}, false);
  auto relay_a = make_node(2, {250, 0}, true, false);
  auto relay_b = make_node(3, {280, 0}, true, false);
  source->start();
  relay_a->start();
  relay_b->start();
  scheduler.run_until(SimTime{} + Duration::millis(500));

  // Each relay forwards each source frame at most once (fingerprint
  // dedup); the receiver may hear up to two relayed copies per frame.
  const auto frames = source->messages_sent();
  EXPECT_LE(relay_a->frames_relayed(), frames);
  EXPECT_LE(relay_b->frames_relayed(), frames);
}

TEST_F(RelayFixture, FilterDedupsDirectAndRelayedCopies) {
  // Receiver hears BOTH the source directly and the relayed copy; the
  // consumer must still see each message once.
  add_receiver_at({200, 0}, 300);

  sim::Scheduler& sched = scheduler;
  core::FilteringService filter(sched, {});
  std::size_t out = 0;
  filter.set_message_sink([&](const core::DataMessage&, SimTime) { ++out; });
  medium.set_uplink_sink([&](const ReceptionReport& r) { filter.ingest(r); });

  auto source = make_node(1, {100, 0}, false);
  auto relay = make_node(2, {250, 0}, true, false);
  source->start();
  relay->start();
  scheduler.run_until(SimTime{} + Duration::seconds(2));

  EXPECT_GT(relay->frames_relayed(), 0u);
  EXPECT_EQ(out, source->messages_sent());
  EXPECT_GT(filter.stats().duplicates_dropped, 0u);
  EXPECT_GT(filter.stats().relayed_copies, 0u);
}

TEST_F(RelayFixture, RelayedCopiesExcludedFromLocationEvidence) {
  add_receiver_at({400, 0}, 160);  // hears only the relay (150m away)

  core::FilteringService filter(scheduler, {});
  std::size_t reception_events = 0;
  filter.set_reception_sink([&](const core::ReceptionEvent&) { ++reception_events; });
  medium.set_uplink_sink([&](const ReceptionReport& r) { filter.ingest(r); });

  auto source = make_node(1, {100, 0}, false);
  auto relay = make_node(2, {250, 0}, true, false);
  source->start();
  relay->start();
  scheduler.run_until(SimTime{} + Duration::seconds(2));

  // All copies reaching the fixed network were relayed: zero location
  // evidence may be derived from them (the receiver heard the relay at
  // 250m, not the source at 100m).
  EXPECT_GT(filter.stats().relayed_copies, 0u);
  EXPECT_EQ(reception_events, 0u);
}

TEST_F(RelayFixture, RelayingSpendsRelayBattery) {
  add_receiver_at({400, 0}, 120);
  attach_sink();

  auto source = make_node(1, {100, 0}, false);
  SensorNode::Config relay_config;
  relay_config.id = 2;
  relay_config.capabilities.relay_capable = true;
  relay_config.relay_overhear_range_m = 200;
  relay_config.battery_joules = 1.0;
  relay_config.tx_cost_joules_per_byte = 1e-4;
  auto relay = std::make_unique<SensorNode>(scheduler, medium, std::move(relay_config),
                                            std::make_unique<sim::StaticMobility>(sim::Vec2{250, 0}),
                                            util::Rng(2));
  source->start();
  relay->start();
  scheduler.run_until(SimTime{} + Duration::seconds(5));

  EXPECT_LT(relay->battery_joules(), 1.0);  // relaying is not free
  EXPECT_GT(relay->frames_relayed(), 0u);
}

}  // namespace
}  // namespace garnet::wireless
