#include "wireless/radio.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace garnet::wireless {
namespace {

using util::Duration;

RadioMedium::Config perfect_radio() {
  RadioMedium::Config config;
  config.base_loss = 0.0;
  config.edge_loss = 0.0;
  config.max_jitter = Duration::nanos(0);
  return config;
}

struct RadioFixture : ::testing::Test {
  sim::Scheduler scheduler;
};

TEST_F(RadioFixture, DeliversToReceiverInRange) {
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.add_receiver({1, {0, 0}, 100});
  std::vector<ReceptionReport> reports;
  medium.set_uplink_sink([&](const ReceptionReport& r) { reports.push_back(r); });

  medium.uplink({50, 0}, util::to_bytes("frame"));
  scheduler.run();

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].receiver, 1u);
  EXPECT_EQ(util::to_string(reports[0].frame), "frame");
  EXPECT_GE(reports[0].received_at.ns, perfect_radio().hop_latency.ns);
}

TEST_F(RadioFixture, OutOfRangeFrameUnheard) {
  obs::MetricsRegistry registry;
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.set_metrics(registry);
  medium.add_receiver({1, {0, 0}, 100});
  int heard = 0;
  medium.set_uplink_sink([&](const ReceptionReport&) { ++heard; });

  medium.uplink({500, 0}, util::to_bytes("frame"));
  scheduler.run();

  EXPECT_EQ(heard, 0);
  EXPECT_EQ(registry.snapshot().counter("garnet.radio.uplink_unheard"), 1u);
}

TEST_F(RadioFixture, OverlappingReceiversDuplicate) {
  // Paper §4.2: overlapping coverage "causes potential duplication of
  // data messages".
  obs::MetricsRegistry registry;
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.set_metrics(registry);
  medium.add_receiver({1, {-10, 0}, 100});
  medium.add_receiver({2, {10, 0}, 100});
  medium.add_receiver({3, {0, 10}, 100});
  int heard = 0;
  medium.set_uplink_sink([&](const ReceptionReport&) { ++heard; });

  medium.uplink({0, 0}, util::to_bytes("frame"));
  scheduler.run();

  EXPECT_EQ(heard, 3);
  EXPECT_EQ(registry.snapshot().counter("garnet.radio.uplink_duplicates"), 2u);
}

TEST_F(RadioFixture, LossModelDropsFrames) {
  RadioMedium::Config lossy = perfect_radio();
  lossy.base_loss = 0.5;
  RadioMedium medium(scheduler, lossy, util::Rng(7));
  medium.add_receiver({1, {0, 0}, 100});
  int heard = 0;
  medium.set_uplink_sink([&](const ReceptionReport&) { ++heard; });

  for (int i = 0; i < 1000; ++i) medium.uplink({10, 0}, util::Bytes(4));
  scheduler.run();

  EXPECT_GT(heard, 400);
  EXPECT_LT(heard, 600);
}

TEST_F(RadioFixture, EdgeLossExceedsCenterLoss) {
  RadioMedium::Config config = perfect_radio();
  config.edge_loss = 0.4;
  RadioMedium medium(scheduler, config, util::Rng(9));
  medium.add_receiver({1, {0, 0}, 100});
  int heard_near = 0;
  int heard_far = 0;
  int* counter = &heard_near;
  medium.set_uplink_sink([&](const ReceptionReport&) { ++*counter; });

  for (int i = 0; i < 2000; ++i) medium.uplink({5, 0}, util::Bytes(1));
  scheduler.run();
  counter = &heard_far;
  for (int i = 0; i < 2000; ++i) medium.uplink({99, 0}, util::Bytes(1));
  scheduler.run();

  EXPECT_GT(heard_near, heard_far + 300);
}

TEST_F(RadioFixture, RssiDecreasesWithDistance) {
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(3));
  medium.add_receiver({1, {0, 0}, 1000});
  std::vector<double> rssi;
  medium.set_uplink_sink([&](const ReceptionReport& r) { rssi.push_back(r.rssi_dbm); });

  for (int i = 0; i < 50; ++i) medium.uplink({10, 0}, util::Bytes(1));
  for (int i = 0; i < 50; ++i) medium.uplink({900, 0}, util::Bytes(1));
  scheduler.run();

  ASSERT_EQ(rssi.size(), 100u);
  double near_mean = 0;
  double far_mean = 0;
  for (int i = 0; i < 50; ++i) near_mean += rssi[static_cast<std::size_t>(i)] / 50;
  for (int i = 50; i < 100; ++i) far_mean += rssi[static_cast<std::size_t>(i)] / 50;
  EXPECT_GT(near_mean, far_mean + 20);  // ~2.4*10*log10(90) ≈ 47 dB apart
}

TEST_F(RadioFixture, DownlinkReachesEndpointInRange) {
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.add_transmitter({1, {0, 0}, 200});
  std::vector<std::string> delivered;
  medium.add_downlink_endpoint({42, [] { return sim::Vec2{100, 0}; },
                                [&](util::BytesView frame) {
                                  delivered.push_back(util::to_string(frame));
                                }});

  const std::size_t scheduled = medium.downlink(1, util::to_bytes("ctl"));
  scheduler.run();

  EXPECT_EQ(scheduled, 1u);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], "ctl");
}

TEST_F(RadioFixture, DownlinkSkipsOutOfRangeEndpoint) {
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.add_transmitter({1, {0, 0}, 200});
  medium.add_downlink_endpoint({42, [] { return sim::Vec2{900, 0}; }, [](util::BytesView) {
                                  FAIL() << "out of range";
                                }});
  EXPECT_EQ(medium.downlink(1, util::Bytes(4)), 0u);
  scheduler.run();
}

TEST_F(RadioFixture, DownlinkPositionSampledAtSendTime) {
  // A mobile endpoint that has wandered away no longer hears broadcasts.
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.add_transmitter({1, {0, 0}, 200});
  sim::Vec2 position{100, 0};
  int heard = 0;
  medium.add_downlink_endpoint({42, [&] { return position; },
                                [&](util::BytesView) { ++heard; }});

  medium.downlink(1, util::Bytes(1));
  scheduler.run();
  position = {5000, 0};
  medium.downlink(1, util::Bytes(1));
  scheduler.run();

  EXPECT_EQ(heard, 1);
}

TEST_F(RadioFixture, RemovedEndpointNotDelivered) {
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.add_transmitter({1, {0, 0}, 200});
  medium.add_downlink_endpoint({42, [] { return sim::Vec2{0, 0}; }, [](util::BytesView) {
                                  FAIL() << "endpoint was removed";
                                }});
  medium.downlink(1, util::Bytes(1));  // delivery scheduled...
  medium.remove_downlink_endpoint(42); // ...but endpoint leaves first
  scheduler.run();
}

TEST_F(RadioFixture, StatsExportedThroughRegistry) {
  obs::MetricsRegistry registry;
  RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
  medium.set_metrics(registry);
  medium.add_receiver({1, {0, 0}, 100});
  medium.add_transmitter({1, {0, 0}, 100});
  medium.set_uplink_sink([](const ReceptionReport&) {});
  medium.add_downlink_endpoint({1, [] { return sim::Vec2{0, 0}; }, [](util::BytesView) {}});

  medium.uplink({0, 0}, util::Bytes(10));
  medium.downlink(1, util::Bytes(20));
  scheduler.run();

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("garnet.radio.uplink_frames"), 1u);
  EXPECT_EQ(snapshot.counter("garnet.radio.uplink_bytes_sent"), 10u);
  EXPECT_EQ(snapshot.counter("garnet.radio.downlink_broadcasts"), 1u);
  EXPECT_EQ(snapshot.counter("garnet.radio.downlink_bytes_sent"), 20u);
  EXPECT_EQ(snapshot.counter("garnet.radio.downlink_deliveries"), 1u);
}

TEST_F(RadioFixture, CollectorSurvivesMediumTeardown) {
  obs::MetricsRegistry registry;
  {
    RadioMedium medium(scheduler, perfect_radio(), util::Rng(1));
    medium.set_metrics(registry);
    medium.add_receiver({1, {0, 0}, 100});
    medium.set_uplink_sink([](const ReceptionReport&) {});
    medium.uplink({0, 0}, util::Bytes(4));
    scheduler.run();
    EXPECT_EQ(registry.snapshot().counter("garnet.radio.uplink_frames"), 1u);
  }
  // The medium deregistered its collector on destruction: snapshotting
  // must not touch freed state, and the counter is simply gone.
  EXPECT_EQ(registry.snapshot().counter("garnet.radio.uplink_frames"), 0u);
}

TEST_F(RadioFixture, JitterVariesDeliveryTimes) {
  RadioMedium::Config config = perfect_radio();
  config.max_jitter = Duration::millis(5);
  RadioMedium medium(scheduler, config, util::Rng(5));
  medium.add_receiver({1, {0, 0}, 100});
  std::set<std::int64_t> arrival_times;
  medium.set_uplink_sink([&](const ReceptionReport& r) { arrival_times.insert(r.received_at.ns); });

  for (int i = 0; i < 20; ++i) medium.uplink({0, 0}, util::Bytes(1));
  scheduler.run();

  EXPECT_GT(arrival_times.size(), 10u);  // distinct arrival instants
}

}  // namespace
}  // namespace garnet::wireless
