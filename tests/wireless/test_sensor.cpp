#include "wireless/sensor.hpp"

#include <gtest/gtest.h>

#include <set>

namespace garnet::wireless {
namespace {

using util::Duration;
using util::SimTime;

RadioMedium::Config perfect_radio() {
  RadioMedium::Config config;
  config.base_loss = 0.0;
  config.edge_loss = 0.0;
  config.max_jitter = Duration::nanos(0);
  return config;
}

struct SensorFixture : ::testing::Test {
  sim::Scheduler scheduler;
  RadioMedium medium{scheduler, perfect_radio(), util::Rng(1)};
  std::vector<core::DataMessage> heard;

  SensorFixture() {
    medium.add_receiver({1, {0, 0}, 10000});
    medium.set_uplink_sink([this](const ReceptionReport& r) {
      const auto decoded = core::decode(r.frame);
      ASSERT_TRUE(decoded.ok());
      heard.push_back(decoded.value());
    });
  }

  SensorNode::Config basic_config(core::SensorId id = 7, bool receive = true) {
    SensorNode::Config config;
    config.id = id;
    config.capabilities.receive_capable = receive;
    StreamSpec spec;
    spec.id = 0;
    spec.interval_ms = 100;
    spec.constraints = {.min_interval_ms = 20, .max_interval_ms = 10000, .max_payload = 64};
    config.streams.push_back(spec);
    return config;
  }

  std::unique_ptr<SensorNode> make_sensor(SensorNode::Config config) {
    return std::make_unique<SensorNode>(scheduler, medium, std::move(config),
                                        std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                                        util::Rng(42));
  }
};

TEST_F(SensorFixture, SamplesAtConfiguredInterval) {
  auto sensor = make_sensor(basic_config());
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::seconds(1));
  // 100ms nominal interval with up to 5% phase jitter: expect ~9-10.
  EXPECT_GE(heard.size(), 8u);
  EXPECT_LE(heard.size(), 11u);
  EXPECT_EQ(sensor->messages_sent(), heard.size());
}

TEST_F(SensorFixture, SequencesIncrease) {
  auto sensor = make_sensor(basic_config());
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::seconds(1));
  ASSERT_GE(heard.size(), 2u);
  for (std::size_t i = 0; i < heard.size(); ++i) {
    EXPECT_EQ(heard[i].sequence, static_cast<core::SequenceNo>(i));
  }
}

TEST_F(SensorFixture, StreamIdCarriesSensorAndStream) {
  auto config = basic_config(123);
  config.streams[0].id = 9;
  auto sensor = make_sensor(std::move(config));
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::millis(300));
  ASSERT_FALSE(heard.empty());
  EXPECT_EQ(heard[0].stream_id.sensor, 123u);
  EXPECT_EQ(heard[0].stream_id.stream, 9u);
}

TEST_F(SensorFixture, MultipleInternalStreamsIndependent) {
  auto config = basic_config();
  StreamSpec second;
  second.id = 1;
  second.interval_ms = 50;
  config.streams.push_back(second);
  auto sensor = make_sensor(std::move(config));
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::seconds(1));

  std::size_t fast = 0;
  std::size_t slow = 0;
  for (const auto& msg : heard) (msg.stream_id.stream == 1 ? fast : slow)++;
  EXPECT_GT(fast, slow);
  EXPECT_GT(slow, 0u);
}

TEST_F(SensorFixture, StopHaltsSampling) {
  auto sensor = make_sensor(basic_config());
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::millis(500));
  const std::size_t at_stop = heard.size();
  sensor->stop();
  scheduler.run_until(SimTime{} + Duration::seconds(2));
  EXPECT_EQ(heard.size(), at_stop);
}

TEST_F(SensorFixture, SetIntervalUpdateChangesCadence) {
  auto sensor = make_sensor(basic_config());
  sensor->start();

  core::StreamUpdateRequest request;
  request.request_id = 55;
  request.target = {7, 0};
  request.action = core::UpdateAction::kSetIntervalMs;
  request.value = 500;
  EXPECT_EQ(sensor->apply_update(request), UpdateOutcome::kApplied);

  scheduler.run_until(SimTime{} + Duration::seconds(2));
  // ~4 messages at 500ms instead of ~20 at 100ms.
  EXPECT_LE(heard.size(), 6u);
  EXPECT_GE(heard.size(), 2u);
  EXPECT_EQ(sensor->stream(0)->interval_ms, 500u);
}

TEST_F(SensorFixture, IntervalClampedToDeviceConstraints) {
  auto sensor = make_sensor(basic_config());
  core::StreamUpdateRequest request;
  request.target = {7, 0};
  request.action = core::UpdateAction::kSetIntervalMs;
  request.value = 1;  // below the 20ms floor
  EXPECT_EQ(sensor->apply_update(request), UpdateOutcome::kClamped);
  EXPECT_EQ(sensor->stream(0)->interval_ms, 20u);
}

TEST_F(SensorFixture, DisableAndReEnableStream) {
  auto sensor = make_sensor(basic_config());
  sensor->start();

  core::StreamUpdateRequest disable;
  disable.target = {7, 0};
  disable.action = core::UpdateAction::kDisableStream;
  EXPECT_EQ(sensor->apply_update(disable), UpdateOutcome::kApplied);
  scheduler.run_until(SimTime{} + Duration::seconds(1));
  EXPECT_TRUE(heard.empty());

  core::StreamUpdateRequest enable;
  enable.target = {7, 0};
  enable.action = core::UpdateAction::kEnableStream;
  EXPECT_EQ(sensor->apply_update(enable), UpdateOutcome::kApplied);
  scheduler.run_until(SimTime{} + Duration::seconds(2));
  EXPECT_FALSE(heard.empty());
}

TEST_F(SensorFixture, UnknownStreamRejected) {
  auto sensor = make_sensor(basic_config());
  core::StreamUpdateRequest request;
  request.target = {7, 99};
  request.action = core::UpdateAction::kSetIntervalMs;
  request.value = 100;
  EXPECT_EQ(sensor->apply_update(request), UpdateOutcome::kRejected);
  EXPECT_EQ(sensor->updates_rejected(), 1u);
}

TEST_F(SensorFixture, SimpleSensorRejectsUpdates) {
  auto sensor = make_sensor(basic_config(7, /*receive=*/false));
  core::StreamUpdateRequest request;
  request.target = {7, 0};
  request.action = core::UpdateAction::kSetIntervalMs;
  request.value = 100;
  EXPECT_EQ(sensor->apply_update(request), UpdateOutcome::kNotReceiveCapable);
}

TEST_F(SensorFixture, AppliedUpdateAcknowledgedInNextMessage) {
  auto sensor = make_sensor(basic_config());
  sensor->start();

  core::StreamUpdateRequest request;
  request.request_id = 0xCAFE;
  request.target = {7, 0};
  request.action = core::UpdateAction::kSetMode;
  request.value = 3;
  sensor->apply_update(request);

  scheduler.run_until(SimTime{} + Duration::millis(300));
  ASSERT_FALSE(heard.empty());
  ASSERT_TRUE(heard[0].ack_request_id.has_value());
  EXPECT_EQ(*heard[0].ack_request_id, 0xCAFEu);
  // Only the first message carries the ack.
  if (heard.size() > 1) {
    EXPECT_FALSE(heard[1].ack_request_id.has_value());
  }
}

TEST_F(SensorFixture, DownlinkFrameAppliesUpdate) {
  medium.add_transmitter({1, {0, 0}, 1000});
  auto sensor = make_sensor(basic_config());
  sensor->start();

  core::StreamUpdateRequest request;
  request.request_id = 9;
  request.target = {7, 0};
  request.action = core::UpdateAction::kSetMode;
  request.value = 5;
  medium.downlink(1, core::encode(request));
  scheduler.run_until(SimTime{} + Duration::millis(50));

  EXPECT_EQ(sensor->updates_applied(), 1u);
  EXPECT_EQ(sensor->stream(0)->mode, 5u);
}

TEST_F(SensorFixture, DownlinkFrameForOtherSensorIgnored) {
  medium.add_transmitter({1, {0, 0}, 1000});
  auto sensor = make_sensor(basic_config(7));
  sensor->start();

  core::StreamUpdateRequest request;
  request.target = {8, 0};  // someone else
  request.action = core::UpdateAction::kSetMode;
  request.value = 5;
  medium.downlink(1, core::encode(request));
  scheduler.run_until(SimTime{} + Duration::millis(50));

  EXPECT_EQ(sensor->updates_applied(), 0u);
}

TEST_F(SensorFixture, GarbageDownlinkIgnored) {
  medium.add_transmitter({1, {0, 0}, 1000});
  auto sensor = make_sensor(basic_config());
  sensor->start();
  medium.downlink(1, util::to_bytes("not a valid control frame"));
  scheduler.run_until(SimTime{} + Duration::millis(50));
  EXPECT_EQ(sensor->updates_applied(), 0u);
  EXPECT_EQ(sensor->updates_rejected(), 0u);  // dropped before accounting
}

TEST_F(SensorFixture, BatteryExhaustionStopsSensor) {
  auto config = basic_config();
  config.battery_joules = 0.01;  // enough for a handful of frames
  config.tx_cost_joules_per_byte = 100e-6;
  auto sensor = make_sensor(std::move(config));
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::seconds(60));

  EXPECT_FALSE(sensor->alive());
  EXPECT_EQ(sensor->battery_joules(), 0.0);
  EXPECT_LT(heard.size(), 10u);  // died long before 600 samples
}

TEST_F(SensorFixture, PayloadGeneratorUsed) {
  auto config = basic_config();
  config.streams[0].generate = [](SimTime, util::Rng&) { return util::to_bytes("custom!"); };
  auto sensor = make_sensor(std::move(config));
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::millis(300));
  ASSERT_FALSE(heard.empty());
  EXPECT_EQ(util::to_string(heard[0].payload), "custom!");
}

TEST_F(SensorFixture, PayloadClampedToConstraint) {
  auto config = basic_config();
  config.streams[0].generate = [](SimTime, util::Rng&) { return util::Bytes(1000); };
  auto sensor = make_sensor(std::move(config));  // max_payload = 64
  sensor->start();
  scheduler.run_until(SimTime{} + Duration::millis(300));
  ASSERT_FALSE(heard.empty());
  EXPECT_EQ(heard[0].payload.size(), 64u);
}

TEST_F(SensorFixture, SyntheticGeneratorProducesPlausibleReadings) {
  auto gen = synthetic_reading_generator(20.0, 2.0, 60.0);
  util::Rng rng(1);
  std::set<std::uint64_t> distinct;
  for (int i = 0; i < 20; ++i) {
    const util::Bytes payload = gen(SimTime{} + Duration::seconds(i * 3), rng);
    ASSERT_EQ(payload.size(), 8u);
    util::ByteReader r(payload);
    const double value = r.f64();
    EXPECT_GT(value, 15.0);
    EXPECT_LT(value, 25.0);
    distinct.insert(std::bit_cast<std::uint64_t>(value));
  }
  EXPECT_GT(distinct.size(), 10u);  // values vary over time
}

}  // namespace
}  // namespace garnet::wireless
