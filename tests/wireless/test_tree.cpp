// Self-organizing tree routing: wire codec, sink decisions, formation
// over the lossy medium, repair journalling, and the router's defensive
// behaviour against duplicates, loops, and TTL abuse.
#include "wireless/tree.hpp"

#include <gtest/gtest.h>

#include "core/message.hpp"
#include "wireless/field.hpp"

namespace garnet::wireless::tree {
namespace {

using util::Duration;
using util::SimTime;

util::Bytes sample_frame(core::SensorId sensor, core::SequenceNo seq) {
  core::DataMessage msg;
  msg.stream_id = {sensor, 0};
  msg.sequence = seq;
  msg.payload = util::to_bytes("reading");
  return core::encode(msg);
}

// --- wire format ----------------------------------------------------------

TEST(TreeCodec, BeaconRoundTrip) {
  const Beacon beacon{root_key(3), 0, root_key(3)};
  const util::Bytes wire = encode_beacon(beacon);
  EXPECT_TRUE(is_tree_frame(wire));
  const auto decoded = decode_beacon(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, root_key(3));
  EXPECT_EQ(decoded->hop, 0);
  EXPECT_EQ(decoded->root, root_key(3));
}

TEST(TreeCodec, DataRoundTripInnerPreserved) {
  const util::Bytes inner = sample_frame(7, 42);
  const util::Bytes wire = encode_data(DataFrame{8, 2, 11, 7, inner});
  EXPECT_TRUE(is_tree_frame(wire));
  const auto decoded = decode_data(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ttl, 8);
  EXPECT_EQ(decoded->hop, 2);
  EXPECT_EQ(decoded->next_hop, 11u);
  EXPECT_EQ(decoded->origin, 7u);
  EXPECT_TRUE(std::equal(decoded->inner.begin(), decoded->inner.end(), inner.begin(),
                         inner.end()));
}

TEST(TreeCodec, CorruptedFramesRejected) {
  util::Bytes beacon = encode_beacon(Beacon{root_key(1), 0, root_key(1)});
  beacon[5] ^= std::byte{0x40};
  EXPECT_FALSE(decode_beacon(beacon).has_value());

  util::Bytes data = encode_data(DataFrame{4, 1, 2, 3, sample_frame(3, 1)});
  data[data.size() - 1] ^= std::byte{0x01};
  EXPECT_FALSE(decode_data(data).has_value());
}

TEST(TreeCodec, MagicByteCannotCollideWithFigure2) {
  // A Figure-2 frame's first byte carries version 1 in bits 7..6
  // (0b01xxxxxx); the tree magic is 0b10110111.
  const util::Bytes figure2 = sample_frame(1, 0);
  EXPECT_FALSE(is_tree_frame(figure2));
  EXPECT_EQ(static_cast<std::uint8_t>(figure2[0]) >> 6, 0b01);
  EXPECT_EQ(kTreeMagic >> 6, 0b10);
}

TEST(TreeCodec, RootKeysNeverCollideWithSensorKeys) {
  EXPECT_TRUE(is_root_key(root_key(1)));
  EXPECT_FALSE(is_root_key(core::kMaxSensorId));
  EXPECT_EQ(key_name(root_key(4)), "root-4");
  EXPECT_EQ(key_name(17), "sensor-17");
}

// --- sink decisions -------------------------------------------------------

TEST(TreeSink, BeaconsDropDataDecapsulatesPlainPassesThrough) {
  const util::Bytes beacon = encode_beacon(Beacon{root_key(1), 0, root_key(1)});
  EXPECT_EQ(decide_at_sink(beacon).verdict, SinkDecision::Verdict::kBeacon);

  const util::Bytes inner = sample_frame(9, 3);
  const util::Bytes wrapped = encode_data(DataFrame{8, 1, root_key(1), 5, inner});
  const SinkDecision data = decide_at_sink(wrapped);
  EXPECT_EQ(data.verdict, SinkDecision::Verdict::kInner);
  EXPECT_EQ(data.inner, inner);

  EXPECT_EQ(decide_at_sink(inner).verdict, SinkDecision::Verdict::kPassThrough);

  util::Bytes corrupt = wrapped;
  corrupt[3] ^= std::byte{0xFF};
  EXPECT_EQ(decide_at_sink(corrupt).verdict, SinkDecision::Verdict::kCorrupt);
}

// --- journal --------------------------------------------------------------

TEST(TreeJournalTest, RendersDeterministicTextAndHonoursLimit) {
  TreeJournal journal(2);
  journal.record(SimTime{1000}, "attach", 5, root_key(1));
  journal.record(SimTime{2000}, "orphan", 5, root_key(1));
  journal.record(SimTime{3000}, "attach", 5, 6);  // over limit: dropped
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.text(), "1000 attach sensor-5->root-1\n2000 orphan sensor-5->root-1\n");
}

// --- router unit behaviour ------------------------------------------------

struct RouterFixture : ::testing::Test {
  sim::Scheduler scheduler;
  TreeConfig config;
  std::vector<util::Bytes> sent;

  std::unique_ptr<TreeRouter> make_router(std::uint32_t key) {
    auto router = std::make_unique<TreeRouter>(scheduler, config, key);
    router->set_transmit([this](util::Bytes frame) { sent.push_back(std::move(frame)); });
    router->start();
    return router;
  }
};

TEST_F(RouterFixture, AttachesToRootBeaconAndBeaconsBack) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  EXPECT_TRUE(router->attached());
  EXPECT_EQ(router->parent_key(), root_key(1));
  EXPECT_EQ(router->depth(), 1);
  // Attach announces the new depth immediately (cascade convergence).
  ASSERT_EQ(sent.size(), 1u);
  const auto beacon = decode_beacon(sent[0]);
  ASSERT_TRUE(beacon.has_value());
  EXPECT_EQ(beacon->origin, 5u);
  EXPECT_EQ(beacon->hop, 1);
}

TEST_F(RouterFixture, SendOwnPlainWhenParentIsRoot) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  sent.clear();
  router->send_own(sample_frame(5, 0));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_FALSE(is_tree_frame(sent[0]));  // final hop is a plain Figure-2 frame
}

TEST_F(RouterFixture, SendOwnWrapsTowardRelayParent) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{9, 1, root_key(1)}), -40.0);
  sent.clear();
  router->send_own(sample_frame(5, 0));
  ASSERT_EQ(sent.size(), 1u);
  const auto data = decode_data(sent[0]);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->next_hop, 9u);
  EXPECT_EQ(data->origin, 5u);
  EXPECT_EQ(data->ttl, config.max_ttl);
}

TEST_F(RouterFixture, NeverAttachedSendsPlainLegacyUplink) {
  auto router = make_router(5);
  router->send_own(sample_frame(5, 0));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_FALSE(is_tree_frame(sent[0]));
}

TEST_F(RouterFixture, ForwardsAddressedDataTaggedRelayed) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  sent.clear();

  const util::Bytes inner = sample_frame(9, 7);
  router->on_frame(encode_data(DataFrame{8, 2, 5, 9, inner}), -60.0);
  ASSERT_EQ(sent.size(), 1u);
  const auto forwarded = core::decode(sent[0]);
  ASSERT_TRUE(forwarded.ok());
  EXPECT_TRUE(forwarded.value().header.has(core::HeaderFlag::kRelayed));
  EXPECT_EQ(forwarded.value().stream_id.sensor, 9u);
  EXPECT_EQ(router->stats().forwarded, 1u);
}

TEST_F(RouterFixture, DropsDataAddressedElsewhere) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  sent.clear();
  router->on_frame(encode_data(DataFrame{8, 2, 6, 9, sample_frame(9, 0)}), -60.0);
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(router->stats().forwarded, 0u);
}

TEST_F(RouterFixture, DuplicateSuppressionForwardsOnce) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  sent.clear();
  const util::Bytes wire = encode_data(DataFrame{8, 2, 5, 9, sample_frame(9, 7)});
  router->on_frame(wire, -60.0);
  router->on_frame(wire, -61.0);
  router->on_frame(wire, -59.0);
  EXPECT_EQ(sent.size(), 1u);
  EXPECT_EQ(router->stats().dup_dropped, 2u);
}

TEST_F(RouterFixture, TtlZeroAndForgedTtlBounded) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{9, 1, root_key(1)}), -40.0);  // relay parent
  sent.clear();

  router->on_frame(encode_data(DataFrame{0, 2, 5, 9, sample_frame(9, 1)}), -60.0);
  EXPECT_EQ(router->stats().ttl_dropped, 1u);
  EXPECT_TRUE(sent.empty());

  // A forged TTL of 255 is clamped to max_ttl before the hop is spent.
  router->on_frame(encode_data(DataFrame{255, 2, 5, 9, sample_frame(9, 2)}), -60.0);
  ASSERT_EQ(sent.size(), 1u);
  const auto data = decode_data(sent[0]);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->ttl, config.max_ttl - 1);
}

TEST_F(RouterFixture, OwnFrameComingBackIsLoopDropped) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  sent.clear();
  router->on_frame(encode_data(DataFrame{8, 2, 5, 5, sample_frame(9, 0)}), -60.0);
  router->on_frame(encode_data(DataFrame{8, 2, 5, 9, sample_frame(5, 0)}), -60.0);
  EXPECT_EQ(router->stats().loop_dropped, 2u);
  EXPECT_TRUE(sent.empty());
}

TEST_F(RouterFixture, ImplausibleHopCountRejected) {
  auto router = make_router(5);
  // hop 0xFFFF would wrap hop+1 to depth 0 and hijack parent selection.
  router->on_frame(encode_beacon(Beacon{9, 0xFFFF, root_key(1)}), -10.0);
  EXPECT_FALSE(router->attached());
  EXPECT_EQ(router->stats().corrupt_dropped, 1u);
}

TEST_F(RouterFixture, OrphanedFramesBufferAndFlushOnReattach) {
  config.beacon_interval = Duration::millis(100);
  config.orphan_capacity = 4;
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{9, 1, root_key(1)}), -40.0);
  ASSERT_TRUE(router->attached());

  // Parent goes silent; the missed-beacon timeout orphans the router.
  scheduler.run_until(scheduler.now() + Duration::millis(1000));
  EXPECT_FALSE(router->attached());
  EXPECT_EQ(router->stats().orphan_events, 1u);

  sent.clear();
  for (core::SequenceNo seq = 0; seq < 3; ++seq) router->send_own(sample_frame(5, seq));
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(router->orphan_backlog(), 3u);

  // Backoff passes; a new parent appears; the backlog drains to it.
  scheduler.run_until(scheduler.now() + Duration::millis(500));
  router->on_frame(encode_beacon(Beacon{root_key(2), 0, root_key(2)}), -45.0);
  EXPECT_TRUE(router->attached());
  EXPECT_EQ(router->orphan_backlog(), 0u);
  // 1 attach beacon + 3 flushed data frames (plain: parent is a root).
  EXPECT_EQ(sent.size(), 4u);
}

TEST_F(RouterFixture, OrphanOverflowSpillsOldestAsPlain) {
  config.beacon_interval = Duration::millis(100);
  config.orphan_capacity = 2;
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{9, 1, root_key(1)}), -40.0);
  scheduler.run_until(scheduler.now() + Duration::millis(1000));
  ASSERT_FALSE(router->attached());

  sent.clear();
  for (core::SequenceNo seq = 0; seq < 4; ++seq) router->send_own(sample_frame(5, seq));
  EXPECT_EQ(router->orphan_backlog(), 2u);
  EXPECT_EQ(router->stats().spilled, 2u);
  ASSERT_EQ(sent.size(), 2u);  // spilled frames went out plain
  EXPECT_FALSE(is_tree_frame(sent[0]));
}

TEST_F(RouterFixture, StopWipesRoutingState) {
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  ASSERT_TRUE(router->attached());
  router->stop();
  EXPECT_FALSE(router->attached());
  EXPECT_EQ(router->neighbor_count(), 0u);
  // Restarted cold: it needs a fresh beacon to rejoin.
  router->start();
  EXPECT_FALSE(router->attached());
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  EXPECT_TRUE(router->attached());
}

TEST_F(RouterFixture, BeaconDeafLosesParentViaTimeout) {
  config.beacon_interval = Duration::millis(100);
  auto router = make_router(5);
  router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  router->set_beacon_deaf(true);
  for (int i = 0; i < 12; ++i) {
    scheduler.run_until(scheduler.now() + Duration::millis(100));
    router->on_frame(encode_beacon(Beacon{root_key(1), 0, root_key(1)}), -40.0);
  }
  EXPECT_FALSE(router->attached());
  EXPECT_EQ(router->stats().orphan_events, 1u);
}

// --- formation over the real medium --------------------------------------

SensorField::Config chain_field() {
  SensorField::Config config;
  config.area = {{0, 0}, {600, 100}};
  config.radio.base_loss = 0.0;
  config.radio.edge_loss = 0.0;
  config.seed = 7;
  config.tree_beacons = true;
  config.tree.beacon_interval = Duration::millis(200);
  config.tree_journal_limit = 1024;
  return config;
}

SensorNode::Config chain_node(core::SensorId id, const SensorField::Config& field,
                              bool sampling) {
  SensorNode::Config config;
  config.id = id;
  config.capabilities.relay_capable = true;
  config.relay_overhear_range_m = 150;
  config.tree = field.tree;
  if (sampling) {
    StreamSpec spec;
    spec.interval_ms = 500;
    config.streams.push_back(spec);
  }
  return config;
}

struct ChainResult {
  std::uint16_t relay_depth = 0;
  std::uint16_t source_depth = 0;
  std::uint32_t source_parent = 0;
  std::uint64_t inner_heard = 0;
  std::uint64_t relayed_heard = 0;
  std::string journal;
};

ChainResult run_chain(std::uint64_t seed) {
  sim::Scheduler scheduler;
  SensorField::Config config = chain_field();
  config.seed = seed;
  SensorField field(scheduler, config);
  field.medium().add_receiver({1, {0, 0}, 120});

  SensorNode& relay =
      field.add_sensor(chain_node(1, config, /*sampling=*/false),
                       std::make_unique<sim::StaticMobility>(sim::Vec2{100, 0}));
  SensorNode& source =
      field.add_sensor(chain_node(2, config, /*sampling=*/true),
                       std::make_unique<sim::StaticMobility>(sim::Vec2{220, 0}));

  ChainResult result;
  field.medium().set_uplink_sink([&](const ReceptionReport& r) {
    auto decision = tree::decide_at_sink(r.frame);
    if (decision.verdict == SinkDecision::Verdict::kBeacon) return;
    const util::BytesView frame = decision.verdict == SinkDecision::Verdict::kInner
                                      ? util::BytesView(decision.inner)
                                      : util::BytesView(r.frame);
    const auto decoded = core::decode_view(frame);
    if (!decoded.ok()) return;
    if (decoded.value().stream_id.sensor != 2) return;
    ++result.inner_heard;
    if (decoded.value().header.has(core::HeaderFlag::kRelayed)) ++result.relayed_heard;
  });

  field.start_all();
  scheduler.run_until(SimTime{} + Duration::seconds(20));

  result.relay_depth = relay.router()->depth();
  result.source_depth = source.router()->depth();
  result.source_parent = source.router()->parent_key();
  result.journal = field.tree_journal().text();
  return result;
}

TEST(TreeFormation, ChainFormsAndDeliversThroughRelay) {
  const ChainResult result = run_chain(7);
  EXPECT_EQ(result.relay_depth, 1);
  EXPECT_EQ(result.source_depth, 2);
  EXPECT_EQ(result.source_parent, 1u);  // source attached to the relay
  // The receiver is out of the source's direct range: every source frame
  // it heard came through the relay, tagged kRelayed.
  EXPECT_GT(result.inner_heard, 30u);
  EXPECT_EQ(result.relayed_heard, result.inner_heard);
  EXPECT_NE(result.journal.find("attach sensor-1->root-1"), std::string::npos);
  EXPECT_NE(result.journal.find("attach sensor-2->sensor-1"), std::string::npos);
}

TEST(TreeFormation, SameSeedSameJournalAndTopology) {
  const ChainResult a = run_chain(21);
  const ChainResult b = run_chain(21);
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.inner_heard, b.inner_heard);
  EXPECT_EQ(a.source_parent, b.source_parent);
}

}  // namespace
}  // namespace garnet::wireless::tree
