// FrameAssembler: TCP chunk boundaries are adversarial by nature — the
// peer's write sizes, the kernel's coalescing and the reader's chunk
// size all slice the stream differently. Reassembly must be exact for
// every slicing, and the length-prefix bound must trip before any
// oversized body is buffered.
#include <gtest/gtest.h>

#include "gw/framing.hpp"
#include "util/rng.hpp"

namespace garnet::gw {
namespace {

util::Bytes framed(std::size_t body_len, std::byte fill = std::byte{0xAB}) {
  util::Bytes out(kLengthPrefixBytes + body_len, fill);
  put_length_prefix(static_cast<std::uint32_t>(body_len), out.data());
  return out;
}

TEST(Framing, LengthPrefixRoundTrips) {
  std::byte prefix[kLengthPrefixBytes];
  put_length_prefix(0xDEADBEEF, prefix);
  EXPECT_EQ(std::to_integer<unsigned>(prefix[0]), 0xDEu);
  EXPECT_EQ(std::to_integer<unsigned>(prefix[1]), 0xADu);
  EXPECT_EQ(std::to_integer<unsigned>(prefix[2]), 0xBEu);
  EXPECT_EQ(std::to_integer<unsigned>(prefix[3]), 0xEFu);
}

TEST(Framing, WholeFrameInOneChunk) {
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.push(framed(10)));
  const auto frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 10u);
  assembler.pop();
  EXPECT_FALSE(assembler.frame().has_value());
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(Framing, ByteAtATimeReassembly) {
  FrameAssembler assembler;
  const util::Bytes wire = framed(37);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(assembler.frame().has_value()) << "complete too early at byte " << i;
    ASSERT_TRUE(assembler.push(util::BytesView(&wire[i], 1)));
  }
  const auto frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 37u);
}

TEST(Framing, BackToBackFramesInOneChunk) {
  FrameAssembler assembler;
  util::Bytes wire = framed(5, std::byte{1});
  const util::Bytes second = framed(9, std::byte{2});
  wire.insert(wire.end(), second.begin(), second.end());
  ASSERT_TRUE(assembler.push(wire));

  auto frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 5u);
  EXPECT_EQ((*frame)[0], std::byte{1});
  assembler.pop();

  frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 9u);
  EXPECT_EQ((*frame)[0], std::byte{2});
  assembler.pop();
  EXPECT_FALSE(assembler.frame().has_value());
}

TEST(Framing, ZeroLengthFrameIsLegal) {
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.push(framed(0)));
  const auto frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 0u);
  assembler.pop();
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(Framing, OversizedDeclarationPoisonsImmediately) {
  FrameAssembler assembler;
  std::byte prefix[kLengthPrefixBytes];
  put_length_prefix(static_cast<std::uint32_t>(kMaxFrameBody) + 1, prefix);
  EXPECT_FALSE(assembler.push(util::BytesView(prefix, sizeof prefix)));
  EXPECT_TRUE(assembler.poisoned());
  EXPECT_FALSE(assembler.frame().has_value());
  // Once poisoned, nothing is accepted — the stream is unrecoverable.
  EXPECT_FALSE(assembler.push(framed(1)));
}

TEST(Framing, OversizedSecondFramePoisonsAfterPop) {
  FrameAssembler assembler;
  util::Bytes wire = framed(3);
  std::byte prefix[kLengthPrefixBytes];
  put_length_prefix(0xFFFFFFFF, prefix);
  wire.insert(wire.end(), prefix, prefix + sizeof prefix);
  // The push succeeds: the readable prefix (the first frame's) is sane,
  // and the valid first frame is still served...
  ASSERT_TRUE(assembler.push(wire));
  const auto frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 3u);
  // ...but popping it exposes the hostile second prefix and poisons.
  assembler.pop();
  EXPECT_TRUE(assembler.poisoned());
  EXPECT_FALSE(assembler.frame().has_value());
}

TEST(Framing, MaxSizeBodyAccepted) {
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.push(framed(kMaxFrameBody)));
  const auto frame = assembler.frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), kMaxFrameBody);
}

TEST(Framing, RandomSlicingsAlwaysReassembleExactly) {
  util::Rng rng(0xF4A317);
  for (int round = 0; round < 50; ++round) {
    FrameAssembler assembler;
    util::Bytes wire;
    std::size_t expected = 1 + rng.below(8);
    for (std::size_t f = 0; f < expected; ++f) {
      const util::Bytes one = framed(rng.below(300), static_cast<std::byte>(f));
      wire.insert(wire.end(), one.begin(), one.end());
    }
    std::size_t seen = 0;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t chunk = std::min(wire.size() - pos, 1 + rng.below(64));
      ASSERT_TRUE(assembler.push(util::BytesView(wire.data() + pos, chunk)));
      pos += chunk;
      while (const auto frame = assembler.frame()) {
        EXPECT_TRUE(frame->empty() || (*frame)[0] == static_cast<std::byte>(seen));
        assembler.pop();
        ++seen;
      }
    }
    EXPECT_EQ(seen, expected);
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

}  // namespace
}  // namespace garnet::gw
