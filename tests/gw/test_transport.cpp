// Transport seam contract tests: the LoopbackTransport's semantics must
// match what the gateway state machine assumes (and what PosixTransport
// provides), because every loopback-driven gateway test leans on them.
// A small PosixTransport section exercises the real-socket basics the
// bigger integration suite builds on.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "gw/transport.hpp"

namespace garnet::gw {
namespace {

util::Bytes bytes_of(std::string_view text) {
  util::Bytes out(text.size());
  std::transform(text.begin(), text.end(), out.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return out;
}

std::vector<TransportEvent> poll_all(Transport& transport) {
  std::vector<TransportEvent> events;
  transport.poll(events);
  return events;
}

TEST(LoopbackTransport, ConnectAnnouncesOnceThenReadable) {
  LoopbackTransport transport;
  const ConnId id = transport.connect(Listener::kStream);

  auto events = poll_all(transport);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TransportEvent::Kind::kAccepted);
  EXPECT_EQ(events[0].conn, id);
  EXPECT_EQ(events[0].listener, Listener::kStream);

  EXPECT_TRUE(poll_all(transport).empty());  // announced only once

  const util::Bytes hello = bytes_of("hi");
  transport.peer_send(id, hello);
  events = poll_all(transport);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TransportEvent::Kind::kReadable);

  std::byte buf[16];
  EXPECT_EQ(transport.read(id, buf), 2);
  EXPECT_EQ(transport.read(id, buf), 0);  // drained: would-block
}

TEST(LoopbackTransport, PeerCloseDrainsThenEof) {
  LoopbackTransport transport;
  const ConnId id = transport.connect(Listener::kIngest);
  poll_all(transport);
  transport.peer_send(id, bytes_of("abc"));
  transport.peer_close(id);

  std::byte buf[2];
  EXPECT_EQ(transport.read(id, buf), 2);  // queued bytes still served
  EXPECT_EQ(transport.read(id, buf), 1);
  EXPECT_EQ(transport.read(id, buf), -1);  // then EOF
}

TEST(LoopbackTransport, WriteLimitForcesShortWrites) {
  LoopbackTransport transport;
  const ConnId id = transport.connect(Listener::kStream);
  poll_all(transport);
  transport.set_write_limit(id, 3);

  const util::Bytes head = bytes_of("0123");
  const util::Bytes body = bytes_of("4567");
  const util::IoSlice slices[2] = {util::IoSlice::of(head), util::IoSlice::of(body)};
  EXPECT_EQ(transport.writev(id, slices), 3);  // capped mid-slice
  EXPECT_EQ(transport.writev(id, slices), 3);
  const util::Bytes got = transport.peer_take(id);
  EXPECT_EQ(got, bytes_of("012012"));
}

TEST(LoopbackTransport, WriteWindowBlocksAndWritableResumes) {
  LoopbackTransport transport;
  const ConnId id = transport.connect(Listener::kStream);
  poll_all(transport);
  transport.set_write_window(id, 2);

  const util::Bytes data = bytes_of("abcdef");
  const util::IoSlice slice = util::IoSlice::of(data);
  EXPECT_EQ(transport.writev(id, {&slice, 1}), 2);
  EXPECT_EQ(transport.writev(id, {&slice, 1}), 0);  // window exhausted

  transport.want_writable(id, true);
  EXPECT_TRUE(poll_all(transport).empty());  // still no room
  transport.open_write_window(id, 100);
  const auto events = poll_all(transport);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TransportEvent::Kind::kWritable);
  EXPECT_TRUE(poll_all(transport).empty());  // edge-style: armed once
}

TEST(LoopbackTransport, WritevToClosedPeerFails) {
  LoopbackTransport transport;
  const ConnId id = transport.connect(Listener::kStream);
  poll_all(transport);
  transport.peer_close(id);
  const util::Bytes data = bytes_of("x");
  const util::IoSlice slice = util::IoSlice::of(data);
  EXPECT_EQ(transport.writev(id, {&slice, 1}), -1);
}

TEST(LoopbackTransport, GatewayCloseKeepsPeerBuffersInspectable) {
  LoopbackTransport transport;
  const ConnId id = transport.connect(Listener::kCache);
  poll_all(transport);
  const util::Bytes data = bytes_of("bye");
  const util::IoSlice slice = util::IoSlice::of(data);
  EXPECT_EQ(transport.writev(id, {&slice, 1}), 3);
  transport.close(id);
  EXPECT_TRUE(transport.gateway_closed(id));
  EXPECT_EQ(transport.open_connections(), 0u);
  EXPECT_EQ(transport.peer_take(id), bytes_of("bye"));  // test can still assert on output
  EXPECT_TRUE(poll_all(transport).empty());             // closed conns emit nothing
}

TEST(LoopbackTransport, ConnIdsNeverRecycled) {
  LoopbackTransport transport;
  const ConnId a = transport.connect(Listener::kStream);
  transport.close(a);
  const ConnId b = transport.connect(Listener::kStream);
  EXPECT_NE(a, b);
}

// --- PosixTransport on real loopback sockets --------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(PosixTransport, BindsEphemeralPortsAndAccepts) {
  PosixTransport transport({});
  EXPECT_NE(transport.port(Listener::kIngest), 0);
  EXPECT_NE(transport.port(Listener::kStream), 0);
  EXPECT_NE(transport.port(Listener::kCache), 0);

  const int fd = connect_to(transport.port(Listener::kStream));
  ASSERT_GE(fd, 0);

  std::vector<TransportEvent> events;
  for (int spin = 0; spin < 100 && events.empty(); ++spin) transport.poll(events);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, TransportEvent::Kind::kAccepted);
  EXPECT_EQ(events[0].listener, Listener::kStream);
  EXPECT_EQ(transport.open_connections(), 1u);
  ::close(fd);
}

TEST(PosixTransport, ReadWriteRoundTrip) {
  PosixTransport transport({});
  const int fd = connect_to(transport.port(Listener::kIngest));
  ASSERT_GE(fd, 0);
  std::vector<TransportEvent> events;
  for (int spin = 0; spin < 100 && events.empty(); ++spin) transport.poll(events);
  ASSERT_FALSE(events.empty());
  const ConnId id = events[0].conn;

  ASSERT_EQ(::send(fd, "ping", 4, 0), 4);
  std::byte buf[8];
  std::ptrdiff_t n = 0;
  for (int spin = 0; spin < 1000 && n == 0; ++spin) n = transport.read(id, buf);
  EXPECT_EQ(n, 4);

  const util::Bytes head = bytes_of("po");
  const util::Bytes tail = bytes_of("ng");
  const util::IoSlice slices[2] = {util::IoSlice::of(head), util::IoSlice::of(tail)};
  EXPECT_EQ(transport.writev(id, slices), 4);  // scatter-gather in one syscall
  char reply[4];
  ASSERT_EQ(::recv(fd, reply, 4, MSG_WAITALL), 4);
  EXPECT_EQ(std::string_view(reply, 4), "pong");

  ::close(fd);
  // Peer hangup eventually surfaces as readable + read() == -1.
  n = 0;
  for (int spin = 0; spin < 1000 && n == 0; ++spin) n = transport.read(id, buf);
  EXPECT_EQ(n, -1);
  transport.close(id);
  EXPECT_EQ(transport.open_connections(), 0u);
}

}  // namespace
}  // namespace garnet::gw
