// Gateway daemon core, driven deterministically through the loopback
// transport: ingest framing → runtime injection → fan-out → shedding →
// URI cache → metrics, with the PR-3 zero-copy invariant asserted
// across the whole path via the payload accounting counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "garnet/runtime.hpp"
#include "gw/framing.hpp"
#include "gw/gateway.hpp"
#include "gw/transport.hpp"
#include "obs/export.hpp"
#include "util/shared_bytes.hpp"

namespace garnet::gw {
namespace {

using util::Duration;

util::Bytes bytes_of(std::string_view text) {
  util::Bytes out(text.size());
  std::transform(text.begin(), text.end(), out.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return out;
}

std::string text_of(util::BytesView bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

core::DataMessage message(core::StreamId id, core::SequenceNo seq, double value) {
  core::DataMessage msg;
  msg.stream_id = id;
  msg.sequence = seq;
  util::ByteWriter payload(8);
  payload.f64(value);
  msg.payload = std::move(payload).take();
  return msg;
}

util::Bytes framed(const core::DataMessage& msg) {
  const util::Bytes body = core::encode(msg);
  util::Bytes out(kLengthPrefixBytes);
  put_length_prefix(static_cast<std::uint32_t>(body.size()), out.data());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

/// Splits a peer byte stream into length-prefixed delivery frames.
std::vector<core::Delivery> parse_deliveries(util::BytesView wire) {
  std::vector<core::Delivery> out;
  FrameAssembler assembler;
  EXPECT_TRUE(assembler.push(wire));
  while (const auto frame = assembler.frame()) {
    const auto decoded = core::decode_delivery(*frame);
    EXPECT_TRUE(decoded.ok()) << "corrupt delivery frame";
    if (decoded.ok()) out.push_back(decoded.value());
    assembler.pop();
  }
  EXPECT_EQ(assembler.buffered(), 0u) << "trailing partial frame";
  return out;
}

struct Harness {
  Runtime runtime;
  LoopbackTransport transport;
  std::unique_ptr<Gateway> gateway;

  explicit Harness(GatewayConfig config = {}, Runtime::Config runtime_config = {})
      : runtime(runtime_config) {
    gateway = std::make_unique<Gateway>(runtime, transport, config);
    gateway->step(Duration::millis(20));  // settle the subscribe RPC
  }

  /// One full turn: transport events + virtual time for deliveries.
  void turn(int rounds = 1) {
    for (int i = 0; i < rounds; ++i) gateway->step(Duration::millis(10));
  }

  ConnId ingest() { return open(Listener::kIngest); }

  ConnId subscriber(const std::string& pattern) {
    const ConnId id = open(Listener::kStream);
    transport.peer_send(id, bytes_of("SUB " + pattern + "\n"));
    turn();
    const std::string ack = text_of(transport.peer_take(id));
    EXPECT_EQ(ack.rfind("OK SUB", 0), 0u) << ack;
    return id;
  }

  ConnId open(Listener listener) {
    const ConnId id = transport.connect(listener);
    turn();
    return id;
  }

  void push_message(ConnId conn, const core::DataMessage& msg) {
    transport.peer_send(conn, framed(msg));
    turn(2);
  }
};

TEST(Gateway, IngestFlowsToSubscribersAndCache) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId matching = h.subscriber("42/*");
  const ConnId other = h.subscriber("7/0");

  h.push_message(producer, message({42, 1}, 9, 23.5));

  const auto deliveries = parse_deliveries(h.transport.peer_take(matching));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].message.stream_id, (core::StreamId{42, 1}));
  EXPECT_EQ(deliveries[0].message.sequence, 9);
  util::ByteReader r(deliveries[0].message.payload);
  EXPECT_DOUBLE_EQ(r.f64(), 23.5);

  EXPECT_EQ(h.transport.peer_pending(other), 0u);  // pattern did not match

  const ConnId reader = h.open(Listener::kCache);
  h.transport.peer_send(reader, bytes_of("GET 42/1\n"));
  h.turn();
  const std::string reply = text_of(h.transport.peer_take(reader));
  EXPECT_EQ(reply.rfind("VALUE 42/1 9 ", 0), 0u) << reply;
  EXPECT_EQ(reply.substr(reply.size() - 12),
            " 8\n" + text_of(deliveries[0].message.payload) + "\n");

  EXPECT_EQ(h.gateway->stats().ingest_frames, 1u);
  EXPECT_EQ(h.runtime.external_in(), 1u);
}

TEST(Gateway, ByteAtATimeIngestStillDelivers) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("*");
  const util::Bytes wire = framed(message({5, 0}, 1, 1.0));
  for (std::size_t i = 0; i < wire.size(); ++i) {
    h.transport.peer_send(producer, util::BytesView(&wire[i], 1));
    h.gateway->pump();
  }
  h.turn(2);
  EXPECT_EQ(parse_deliveries(h.transport.peer_take(sub)).size(), 1u);
}

TEST(Gateway, MalformedFrameSkippedStreamSurvives) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("*");

  // A well-framed but CRC-broken body, then a valid message.
  util::Bytes bad_body = core::encode(message({3, 0}, 1, 1.0));
  bad_body[bad_body.size() - 1] ^= std::byte{0xFF};
  util::Bytes wire(kLengthPrefixBytes);
  put_length_prefix(static_cast<std::uint32_t>(bad_body.size()), wire.data());
  wire.insert(wire.end(), bad_body.begin(), bad_body.end());
  h.transport.peer_send(producer, wire);
  h.push_message(producer, message({3, 0}, 2, 2.0));

  EXPECT_EQ(h.gateway->stats().ingest_malformed, 1u);
  EXPECT_EQ(h.gateway->stats().ingest_frames, 1u);
  EXPECT_FALSE(h.transport.gateway_closed(producer));  // framing stayed aligned
  const auto deliveries = parse_deliveries(h.transport.peer_take(sub));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].message.sequence, 2);
}

TEST(Gateway, OversizedDeclarationCutsProducer) {
  Harness h;
  const ConnId producer = h.ingest();
  std::byte prefix[kLengthPrefixBytes];
  put_length_prefix(static_cast<std::uint32_t>(kMaxFrameBody) + 1, prefix);
  h.transport.peer_send(producer, util::BytesView(prefix, sizeof prefix));
  h.turn();
  EXPECT_EQ(h.gateway->stats().ingest_oversized, 1u);
  EXPECT_TRUE(h.transport.gateway_closed(producer));
  EXPECT_EQ(h.gateway->connections(Listener::kIngest), 0u);
}

TEST(Gateway, SlowConsumerShedsDataNeverControl) {
  GatewayConfig config;
  config.outbox_frames = 4;
  Harness h(config);
  const ConnId producer = h.ingest();
  const ConnId sub = h.open(Listener::kStream);

  // Window 0 from the start: even the SUB ack stays queued.
  h.transport.set_write_window(sub, 0);
  h.transport.peer_send(sub, bytes_of("SUB 9/*\n"));
  h.turn();
  EXPECT_EQ(h.transport.peer_pending(sub), 0u);  // nothing got through

  for (int i = 0; i < 10; ++i) h.push_message(producer, message({9, 0}, i, i));

  // A control reply arrives while 4 data frames queue: it must jump them.
  h.transport.peer_send(sub, bytes_of("UNSUB\n"));
  h.turn();

  const GatewayStats& stats = h.gateway->stats();
  EXPECT_EQ(stats.shed.data_drop_newest, 6u);  // 10 in, bound 4
  EXPECT_EQ(stats.shed.control_total(), 0u);

  h.transport.open_write_window(sub, 1 << 20);
  h.turn(2);
  const std::string out = text_of(h.transport.peer_take(sub));
  EXPECT_EQ(out.rfind("OK SUB 9/*\nOK UNSUB\n", 0), 0u) << out.substr(0, 40);
  const auto deliveries =
      parse_deliveries(bytes_of(out.substr(std::string("OK SUB 9/*\nOK UNSUB\n").size())));
  ASSERT_EQ(deliveries.size(), 4u);  // the surviving bounded outbox
  EXPECT_EQ(deliveries[0].message.sequence, 0);
}

TEST(GatewayAdmission, OutboxBoundDerivesFromTheDataPoolSize) {
  // With admission enabled in the embedding runtime, the per-subscriber
  // outbox bound follows the probed pool: clamp(pool x per_ticket, 1,
  // outbox_frames). A static pool of 2 with one frame per ticket bounds
  // the queue at 2, far below the configured 64.
  Runtime::Config runtime_config;
  runtime_config.admission.enabled = true;
  runtime_config.admission.probing = false;
  runtime_config.admission.probe.initial_concurrency = 2;
  GatewayConfig config;
  config.outbox_frames = 64;
  config.outbox_frames_per_ticket = 1;
  Harness h(config, runtime_config);
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("9/*");
  h.transport.set_write_window(sub, 0);

  for (int i = 0; i < 8; ++i) h.push_message(producer, message({9, 0}, i, i));
  EXPECT_EQ(h.gateway->stats().shed.data_drop_newest, 6u);  // 8 in, bound 2

  h.transport.open_write_window(sub, 1 << 20);
  h.turn(2);
  const auto deliveries = parse_deliveries(h.transport.peer_take(sub));
  ASSERT_EQ(deliveries.size(), 2u);  // the admission-derived outbox
  EXPECT_EQ(deliveries[0].message.sequence, 0);
}

TEST(GatewayAdmission, ZeroPerTicketKeepsTheStaticBound) {
  // outbox_frames_per_ticket = 0 opts out: the bound stays at the
  // configured outbox_frames even though the runtime gates admission.
  Runtime::Config runtime_config;
  runtime_config.admission.enabled = true;
  runtime_config.admission.probing = false;
  runtime_config.admission.probe.initial_concurrency = 2;
  GatewayConfig config;
  config.outbox_frames = 4;
  config.outbox_frames_per_ticket = 0;
  Harness h(config, runtime_config);
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("9/*");
  h.transport.set_write_window(sub, 0);

  for (int i = 0; i < 8; ++i) h.push_message(producer, message({9, 0}, i, i));
  EXPECT_EQ(h.gateway->stats().shed.data_drop_newest, 4u);  // static bound 4

  h.transport.open_write_window(sub, 1 << 20);
  h.turn(2);
  EXPECT_EQ(parse_deliveries(h.transport.peer_take(sub)).size(), 4u);
}

TEST(Gateway, DropOldestKeepsNewestFrames) {
  GatewayConfig config;
  config.outbox_frames = 3;
  config.shed_policy = net::OverflowPolicy::kDropOldest;
  Harness h(config);
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("*");
  h.transport.set_write_window(sub, 0);

  for (int i = 0; i < 8; ++i) h.push_message(producer, message({1, 0}, i, i));
  EXPECT_EQ(h.gateway->stats().shed.data_drop_oldest, 5u);

  h.transport.open_write_window(sub, 1 << 20);
  h.turn(2);
  const auto deliveries = parse_deliveries(h.transport.peer_take(sub));
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].message.sequence, 5);  // oldest were evicted
  EXPECT_EQ(deliveries[2].message.sequence, 7);
}

TEST(Gateway, DeadSubscriberDoesNotBlockOthers) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId doomed = h.subscriber("*");
  const ConnId healthy = h.subscriber("*");

  h.transport.peer_close(doomed);
  h.push_message(producer, message({2, 0}, 1, 1.0));

  EXPECT_TRUE(h.transport.gateway_closed(doomed));
  EXPECT_EQ(parse_deliveries(h.transport.peer_take(healthy)).size(), 1u);
  EXPECT_EQ(h.gateway->subscribers(), 1u);
}

TEST(Gateway, ShortWritesReassembleAtThePeer) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("*");
  h.transport.set_write_limit(sub, 3);  // every writev comes up short

  for (int i = 0; i < 4; ++i) h.push_message(producer, message({6, 2}, i, i * 1.5));
  h.turn(40);  // each turn moves at most a few bytes

  const auto deliveries = parse_deliveries(h.transport.peer_take(sub));
  ASSERT_EQ(deliveries.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(deliveries[i].message.sequence, i);
  EXPECT_GT(h.gateway->stats().partial_writes, 0u);
}

TEST(Gateway, ZeroCopyFromDecodeToWritev) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId a = h.subscriber("*");
  const ConnId b = h.subscriber("*");
  const ConnId c = h.subscriber("*");
  h.turn(2);

  const util::PayloadStats before = util::payload_stats();
  h.push_message(producer, message({8, 3}, 1, 42.0));
  const util::PayloadStats after = util::payload_stats();

  // One shared delivery frame allocated by the dispatcher; the socket
  // ingest decode, the cache update, and all three subscriber writes
  // alias it — zero payload copies across the kernel boundary.
  EXPECT_EQ(after.allocations - before.allocations, 1u);
  EXPECT_EQ(after.copies - before.copies, 0u);

  for (const ConnId conn : {a, b, c}) {
    EXPECT_EQ(parse_deliveries(h.transport.peer_take(conn)).size(), 1u);
  }
  const auto* entry = h.gateway->cache().peek({8, 3});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->payload.size(), 8u);
}

TEST(Gateway, CacheProtocolMissListQuit) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId reader = h.open(Listener::kCache);

  h.transport.peer_send(reader, bytes_of("GET 1/0\n"));
  h.turn();
  EXPECT_EQ(text_of(h.transport.peer_take(reader)), "MISS 1/0\n");

  h.push_message(producer, message({1, 0}, 3, 1.0));
  h.push_message(producer, message({2, 0}, 7, 2.0));

  h.transport.peer_send(reader, bytes_of("LIST\n"));
  h.turn();
  const std::string list = text_of(h.transport.peer_take(reader));
  EXPECT_EQ(list, "STREAMS 2\n1/0 3 8\n2/0 7 8\n");

  h.transport.peer_send(reader, bytes_of("QUIT\n"));
  h.turn();
  EXPECT_EQ(text_of(h.transport.peer_take(reader)), "BYE\n");
  EXPECT_TRUE(h.transport.gateway_closed(reader));
}

TEST(Gateway, BadLinesCountedAndOverflowCuts) {
  Harness h;
  const ConnId sub = h.open(Listener::kStream);
  h.transport.peer_send(sub, bytes_of("FROBNICATE\n"));
  h.turn();
  EXPECT_EQ(text_of(h.transport.peer_take(sub)), "ERR unknown command\n");
  h.transport.peer_send(sub, bytes_of("SUB not-a-pattern\n"));
  h.turn();
  EXPECT_EQ(text_of(h.transport.peer_take(sub)), "ERR bad pattern\n");
  EXPECT_EQ(h.gateway->stats().bad_requests, 2u);
  EXPECT_FALSE(h.transport.gateway_closed(sub));

  // A line that never ends is a resource attack: cut at the bound.
  const util::Bytes runaway(2048, std::byte{'A'});
  h.transport.peer_send(sub, runaway);
  h.turn();
  EXPECT_TRUE(h.transport.gateway_closed(sub));
  EXPECT_EQ(h.gateway->stats().bad_requests, 3u);
}

TEST(Gateway, CapacityLimitRejectsExtraConnections) {
  GatewayConfig config;
  config.max_connections = 2;
  Harness h(config);
  h.open(Listener::kStream);
  h.open(Listener::kStream);
  const ConnId third = h.open(Listener::kStream);
  EXPECT_TRUE(h.transport.gateway_closed(third));
  EXPECT_EQ(h.gateway->stats().rejected_capacity, 1u);
  EXPECT_EQ(h.gateway->connections(), 2u);
}

TEST(Gateway, MetricsExposedThroughPrometheus) {
  Harness h;
  const ConnId producer = h.ingest();
  const ConnId sub = h.subscriber("*");
  h.push_message(producer, message({4, 0}, 1, 5.0));
  (void)h.transport.peer_take(sub);

  const std::string exposition = obs::render_prometheus(
      h.runtime.telemetry().registry.snapshot(0));
  EXPECT_NE(exposition.find("garnet_gw_ingest_frames 1"), std::string::npos) << exposition;
  EXPECT_NE(exposition.find("garnet_gw_egress_frames 1"), std::string::npos);
  EXPECT_NE(exposition.find("garnet_gw_cache_entries 1"), std::string::npos);
  EXPECT_NE(exposition.find("garnet_gw_connections{listener=\"stream\"} 1"), std::string::npos);
  // The control-shed zero must be *present* — it is the invariant.
  EXPECT_NE(exposition.find("garnet_gw_shed{class=\"control\",policy=\"drop_newest\"} 0"),
            std::string::npos);
  EXPECT_NE(exposition.find("garnet_gw_delivery_latency_ns"), std::string::npos);

  // The cache port serves the same exposition over the wire.
  const ConnId reader = h.open(Listener::kCache);
  h.transport.peer_send(reader, bytes_of("METRICS\n"));
  h.turn();
  const std::string reply = text_of(h.transport.peer_take(reader));
  EXPECT_EQ(reply.rfind("METRICS ", 0), 0u);
  EXPECT_NE(reply.find("garnet_gw_ingest_frames"), std::string::npos);
}

}  // namespace
}  // namespace garnet::gw
