// SID/TAG URI parsing and the sensd-style last-value cache.
#include <gtest/gtest.h>

#include "gw/gateway.hpp"
#include "gw/uri_cache.hpp"

namespace garnet::gw {
namespace {

util::SharedBytes shared_payload(std::initializer_list<int> values) {
  util::Bytes bytes;
  for (int v : values) bytes.push_back(static_cast<std::byte>(v));
  return util::SharedBytes(std::move(bytes));
}

TEST(StreamUri, ParsesValidUris) {
  const auto id = parse_stream_uri("42/7");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->sensor, 42u);
  EXPECT_EQ(id->stream, 7);
  EXPECT_EQ(stream_uri(*id), "42/7");

  const auto max = parse_stream_uri("16777215/255");
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(max->sensor, core::kMaxSensorId);
  EXPECT_EQ(max->stream, 255);
}

TEST(StreamUri, RejectsMalformedUris) {
  EXPECT_FALSE(parse_stream_uri("").has_value());
  EXPECT_FALSE(parse_stream_uri("42").has_value());
  EXPECT_FALSE(parse_stream_uri("42/").has_value());
  EXPECT_FALSE(parse_stream_uri("/7").has_value());
  EXPECT_FALSE(parse_stream_uri("42/7/1").has_value());
  EXPECT_FALSE(parse_stream_uri("42/7 ").has_value());
  EXPECT_FALSE(parse_stream_uri("-1/7").has_value());
  EXPECT_FALSE(parse_stream_uri("a/b").has_value());
  EXPECT_FALSE(parse_stream_uri("16777216/0").has_value());  // sensor > 24 bits
  EXPECT_FALSE(parse_stream_uri("1/256").has_value());       // stream > 8 bits
  EXPECT_FALSE(parse_stream_uri("999999999999999999999/0").has_value());
}

TEST(StreamPatternText, ParsesWildcards) {
  const auto all = parse_stream_pattern("*");
  ASSERT_TRUE(all.has_value());
  EXPECT_FALSE(all->sensor.has_value());
  EXPECT_FALSE(all->stream.has_value());
  EXPECT_EQ(pattern_uri(*all), "*/*");

  const auto sensor_only = parse_stream_pattern("42/*");
  ASSERT_TRUE(sensor_only.has_value());
  EXPECT_EQ(sensor_only->sensor, 42u);
  EXPECT_FALSE(sensor_only->stream.has_value());

  const auto stream_only = parse_stream_pattern("*/3");
  ASSERT_TRUE(stream_only.has_value());
  EXPECT_FALSE(stream_only->sensor.has_value());
  EXPECT_EQ(stream_only->stream, 3);

  const auto exact = parse_stream_pattern("7/1");
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(exact->matches({7, 1}));
  EXPECT_FALSE(exact->matches({7, 2}));
}

TEST(StreamPatternText, RejectsGarbage) {
  EXPECT_FALSE(parse_stream_pattern("").has_value());
  EXPECT_FALSE(parse_stream_pattern("**").has_value());
  EXPECT_FALSE(parse_stream_pattern("*/").has_value());
  EXPECT_FALSE(parse_stream_pattern("4 2/*").has_value());
  EXPECT_FALSE(parse_stream_pattern("42/x").has_value());
}

TEST(LastValueCache, StoresLatestPerStream) {
  LastValueCache cache;
  EXPECT_EQ(cache.get({1, 0}), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.update({1, 0}, 5, 0, util::SimTime{} + util::Duration::millis(10), shared_payload({1}));
  cache.update({1, 0}, 6, 0, util::SimTime{} + util::Duration::millis(20), shared_payload({2}));
  cache.update({2, 1}, 1, 0, util::SimTime{} + util::Duration::millis(30), shared_payload({3}));

  const auto* entry = cache.get({1, 0});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->sequence, 6);
  EXPECT_EQ(entry->payload.size(), 1u);
  EXPECT_EQ(entry->payload.data()[0], std::byte{2});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().updates, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(LastValueCache, PeekDoesNotCount) {
  LastValueCache cache;
  cache.update({1, 0}, 1, 0, {}, {});
  EXPECT_NE(cache.peek({1, 0}), nullptr);
  EXPECT_EQ(cache.peek({9, 9}), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(LastValueCache, EntriesSortedByPackedId) {
  LastValueCache cache;
  cache.update({2, 0}, 1, 0, {}, {});
  cache.update({1, 5}, 1, 0, {}, {});
  cache.update({1, 2}, 1, 0, {}, {});
  std::uint32_t previous = 0;
  for (const auto& [packed, entry] : cache.entries()) {
    EXPECT_GE(packed, previous);
    previous = packed;
  }
}

TEST(LastValueCache, PayloadSharesAllocation) {
  LastValueCache cache;
  const util::SharedBytes payload = shared_payload({1, 2, 3});
  const long before = payload.use_count();
  cache.update({1, 0}, 1, 0, {}, payload);
  EXPECT_EQ(payload.use_count(), before + 1);  // refcount bump, no copy
}

}  // namespace
}  // namespace garnet::gw
