// Gateway integration on real loopback sockets: everything here goes
// through PosixTransport, the kernel's TCP buffers, and genuinely
// nonblocking client file descriptors. The loopback-transport suite
// proves the state machine; this one proves it against an actual
// kernel boundary — accept backlogs, coalesced reads, short writes,
// RST on close, and flow control via SO_RCVBUF.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "garnet/runtime.hpp"
#include "gw/framing.hpp"
#include "gw/gateway.hpp"
#include "gw/transport.hpp"

namespace garnet::gw {
namespace {

using util::Duration;

core::DataMessage message(core::StreamId id, core::SequenceNo seq, double value) {
  core::DataMessage msg;
  msg.stream_id = id;
  msg.sequence = seq;
  util::ByteWriter payload(8);
  payload.f64(value);
  msg.payload = std::move(payload).take();
  return msg;
}

util::Bytes framed(const core::DataMessage& msg) {
  const util::Bytes body = core::encode(msg);
  util::Bytes out(kLengthPrefixBytes);
  put_length_prefix(static_cast<std::uint32_t>(body.size()), out.data());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

/// A nonblocking TCP client with its own receive buffer. Tests drain it
/// between gateway pump iterations, exactly like a real peer would.
class Client {
 public:
  Client() = default;
  ~Client() { disconnect(); }
  Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)), rx_(std::move(other.rx_)) {}
  Client& operator=(Client&&) = delete;

  bool connect(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      disconnect();
      return false;
    }
    ::fcntl(fd_, F_SETFL, ::fcntl(fd_, F_GETFL, 0) | O_NONBLOCK);
    return true;
  }

  void disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return fd_ >= 0; }

  bool send(util::BytesView bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send(std::string_view text) {
    return send(util::BytesView(reinterpret_cast<const std::byte*>(text.data()), text.size()));
  }

  /// Pulls whatever the kernel has; returns false once the peer hung up.
  bool drain() {
    if (fd_ < 0) return false;
    std::byte buf[16384];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n > 0) {
        rx_.insert(rx_.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // EOF or error
    }
  }

  /// Strips and returns the first newline-terminated line, if complete.
  std::optional<std::string> take_line() {
    const auto it = std::find(rx_.begin(), rx_.end(), std::byte{'\n'});
    if (it == rx_.end()) return std::nullopt;
    std::string line(reinterpret_cast<const char*>(rx_.data()),
                     static_cast<std::size_t>(it - rx_.begin()));
    rx_.erase(rx_.begin(), it + 1);
    return line;
  }

  /// Decodes every complete delivery frame buffered so far.
  std::vector<core::Delivery> take_deliveries() {
    std::vector<core::Delivery> out;
    FrameAssembler assembler;
    EXPECT_TRUE(assembler.push(rx_));
    std::size_t consumed = rx_.size();
    while (const auto frame = assembler.frame()) {
      const auto decoded = core::decode_delivery(*frame);
      EXPECT_TRUE(decoded.ok()) << "corrupt frame on the wire";
      if (decoded.ok()) out.push_back(decoded.value());
      assembler.pop();
    }
    consumed -= assembler.buffered();  // keep any trailing partial frame
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(consumed));
    return out;
  }

  std::size_t buffered() const { return rx_.size(); }

 private:
  int fd_ = -1;
  util::Bytes rx_;
};

struct Harness {
  Runtime runtime;
  PosixTransport transport{{}};  // ephemeral ports on loopback
  std::unique_ptr<Gateway> gateway;

  explicit Harness(GatewayConfig config = {}) {
    gateway = std::make_unique<Gateway>(runtime, transport, config);
    gateway->step(Duration::millis(20));
  }

  std::uint16_t port(Listener listener) { return transport.port(listener); }

  /// Pumps the gateway and the clients until `done` holds or the
  /// iteration budget runs out. Clients are drained every round so
  /// kernel buffers keep moving.
  template <typename Pred>
  [[nodiscard]] bool pump_until(std::vector<Client*> clients, Pred done, int rounds = 4000) {
    for (int i = 0; i < rounds; ++i) {
      gateway->step(Duration::millis(2));
      for (Client* client : clients) {
        if (client->connected()) (void)client->drain();
      }
      if (done()) return true;
      if (i % 16 == 15) ::usleep(500);  // let the kernel move bytes
    }
    return false;
  }

  Client subscriber(const std::string& pattern) {
    Client client;
    EXPECT_TRUE(client.connect(port(Listener::kStream)));
    EXPECT_TRUE(client.send("SUB " + pattern + "\n"));
    std::optional<std::string> ack;
    EXPECT_TRUE(pump_until({&client}, [&] { return (ack = client.take_line()).has_value(); }));
    EXPECT_EQ(ack.value_or("").rfind("OK SUB", 0), 0u) << ack.value_or("<none>");
    return client;
  }
};

TEST(GatewaySockets, IngestDispatchFanOutRoundTrip) {
  Harness h;
  Client producer;
  ASSERT_TRUE(producer.connect(h.port(Listener::kIngest)));
  Client sub = h.subscriber("11/*");

  ASSERT_TRUE(producer.send(framed(message({11, 2}, 4, 2.75))));
  std::vector<core::Delivery> got;
  ASSERT_TRUE(h.pump_until({&producer, &sub}, [&] {
    auto batch = sub.take_deliveries();
    got.insert(got.end(), batch.begin(), batch.end());
    return !got.empty();
  }));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message.stream_id, (core::StreamId{11, 2}));
  EXPECT_EQ(got[0].message.sequence, 4);
  util::ByteReader r(got[0].message.payload);
  EXPECT_DOUBLE_EQ(r.f64(), 2.75);

  // The same message is now addressable as a URI on the cache port.
  Client reader;
  ASSERT_TRUE(reader.connect(h.port(Listener::kCache)));
  ASSERT_TRUE(reader.send("GET 11/2\n"));
  std::optional<std::string> reply;
  ASSERT_TRUE(h.pump_until({&reader}, [&] { return (reply = reader.take_line()).has_value(); }));
  EXPECT_EQ(reply->rfind("VALUE 11/2 4 ", 0), 0u) << *reply;
}

TEST(GatewaySockets, HundredSubscribersWithJoinLeaveChurn) {
  Harness h;
  Client producer;
  ASSERT_TRUE(producer.connect(h.port(Listener::kIngest)));

  constexpr int kSubscribers = 104;
  constexpr int kFirstWave = 5;
  constexpr int kSecondWave = 5;
  std::vector<Client> subs;
  subs.reserve(kSubscribers);
  std::vector<Client*> everyone{&producer};
  for (int i = 0; i < kSubscribers; ++i) {
    subs.push_back(h.subscriber("*"));
    everyone.push_back(&subs.back());
  }
  ASSERT_EQ(h.gateway->subscribers(), static_cast<std::size_t>(kSubscribers));

  std::vector<std::size_t> received(kSubscribers, 0);
  const auto drain_counts = [&] {
    for (int i = 0; i < kSubscribers; ++i) {
      if (subs[i].connected()) received[i] += subs[i].take_deliveries().size();
    }
  };

  for (int seq = 0; seq < kFirstWave; ++seq) {
    ASSERT_TRUE(producer.send(framed(message({30, 0}, seq, seq))));
  }
  ASSERT_TRUE(h.pump_until(everyone, [&] {
    drain_counts();
    return std::all_of(received.begin(), received.end(),
                       [](std::size_t n) { return n >= kFirstWave; });
  }));

  // Half the fleet leaves abruptly; the gateway must notice and the
  // remaining half must keep receiving without interruption.
  for (int i = 0; i < kSubscribers; i += 2) subs[i].disconnect();
  for (int seq = 0; seq < kSecondWave; ++seq) {
    ASSERT_TRUE(producer.send(framed(message({30, 0}, kFirstWave + seq, seq))));
  }
  ASSERT_TRUE(h.pump_until(everyone, [&] {
    drain_counts();
    for (int i = 1; i < kSubscribers; i += 2) {
      if (received[i] < kFirstWave + kSecondWave) return false;
    }
    return true;
  }));
  for (int i = 1; i < kSubscribers; i += 2) {
    EXPECT_EQ(received[i], static_cast<std::size_t>(kFirstWave + kSecondWave));
  }

  // The departed connections are reaped once their hangup is seen.
  ASSERT_TRUE(h.pump_until({&producer}, [&] {
    return h.gateway->subscribers() == kSubscribers / 2;
  }));
  EXPECT_EQ(h.gateway->stats().shed.control_total(), 0u);
}

TEST(GatewaySockets, SlowReaderShedsWithoutHeadOfLineBlocking) {
  GatewayConfig config;
  config.outbox_frames = 4;
  Harness h(config);
  Client producer;
  ASSERT_TRUE(producer.connect(h.port(Listener::kIngest)));

  // The slow reader asks for a tiny receive buffer and then never
  // drains it; the kernel window closes and the gateway's bounded
  // outbox must shed data for this connection only.
  Client slow;
  ASSERT_TRUE(slow.connect(h.port(Listener::kStream), /*rcvbuf=*/1));
  ASSERT_TRUE(slow.send("SUB *\n"));
  Client healthy = h.subscriber("*");

  // The kernel grows a blocked connection's send buffer up to
  // tcp_wmem[2] (4 MiB here) before writes come back short, so the
  // total pushed must clear that with room to spare.
  constexpr int kMessages = 112;
  core::DataMessage big = message({21, 0}, 0, 1.0);
  big.payload.resize(60 * 1024, std::byte{0x5A});
  std::size_t healthy_received = 0;
  for (int seq = 0; seq < kMessages; ++seq) {
    big.sequence = seq;
    ASSERT_TRUE(producer.send(framed(big)));
    // Drain only the healthy reader; the slow one stays frozen.
    ASSERT_TRUE(h.pump_until({&producer, &healthy}, [&] {
      healthy_received += healthy.take_deliveries().size();
      return healthy_received >= static_cast<std::size_t>(seq + 1);
    }));
  }

  EXPECT_EQ(healthy_received, static_cast<std::size_t>(kMessages));
  const GatewayStats& stats = h.gateway->stats();
  EXPECT_GT(stats.shed.data_total(), 0u) << "slow reader never overflowed its outbox";
  EXPECT_EQ(stats.shed.control_total(), 0u);
  EXPECT_GT(stats.partial_writes, 0u);  // the kernel pushed back mid-frame
}

TEST(GatewaySockets, CacheServesLatestAcrossReconnect) {
  Harness h;
  Client producer;
  ASSERT_TRUE(producer.connect(h.port(Listener::kIngest)));

  const auto get = [&](Client& reader) -> std::string {
    EXPECT_TRUE(reader.send("GET 9/1\n"));
    std::optional<std::string> line;
    EXPECT_TRUE(h.pump_until({&producer, &reader},
                             [&] { return (line = reader.take_line()).has_value(); }));
    if (line && line->rfind("VALUE", 0) == 0) {
      // Swallow the payload + trailing newline so the buffer stays aligned.
      EXPECT_TRUE(h.pump_until({&reader}, [&] { return reader.take_line().has_value(); }));
    }
    return line.value_or("<none>");
  };

  const auto publish = [&](core::SequenceNo seq, double value) {
    const std::uint64_t before = h.gateway->stats().ingest_frames;
    ASSERT_TRUE(producer.send(framed(message({9, 1}, seq, value))));
    ASSERT_TRUE(h.pump_until({&producer}, [&] {
      return h.gateway->stats().ingest_frames > before && h.gateway->cache().peek({9, 1});
    }));
  };

  Client first;
  ASSERT_TRUE(first.connect(h.port(Listener::kCache)));
  EXPECT_EQ(get(first), "MISS 9/1");

  publish(1, 10.0);
  EXPECT_EQ(get(first).rfind("VALUE 9/1 1 ", 0), 0u);
  first.disconnect();

  // The value advances while nobody is watching; a fresh connection
  // must see the newest sample, not a stale snapshot bound to the
  // previous session.
  publish(2, 20.0);
  publish(3, 30.0);
  Client second;
  ASSERT_TRUE(second.connect(h.port(Listener::kCache)));
  EXPECT_EQ(get(second).rfind("VALUE 9/1 3 ", 0), 0u);
  EXPECT_EQ(h.gateway->cache().peek({9, 1})->sequence, 3u);
}

}  // namespace
}  // namespace garnet::gw
