// Experiment E4 — inferred location cuts control-message transmission
// cost (paper §5: "Access to location data is a refinement which is
// required to reduce transmission costs when forwarding control messages
// to sensors").
//
// A full Runtime is driven in virtual time. Each measured scenario sends
// control messages to sensors either cold (no location evidence: the
// Message Replicator floods every transmitter) or warm (reception
// evidence accumulated: the replicator activates only transmitters
// covering the estimate). Reported counters are the experiment's table:
// transmitter activations per control message, downlink bytes, and
// delivery success. Expected shape: activations/message falls from
// "all transmitters" to a small constant as the grid densifies, while
// delivery success stays comparable.
#include <benchmark/benchmark.h>

#include "garnet/runtime.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

struct Outcome {
  double activations_per_send = 0;
  double downlink_bytes_per_send = 0;
  double delivery_success = 0;
  double targeted_fraction = 0;
};

/// Runs one virtual scenario: `sensors` mobile nodes, `grid` transmitters
/// and receivers; sends one mode-change per sensor, warmed or cold.
Outcome run_scenario(std::size_t grid, std::size_t sensors, bool warm, std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {1000, 1000}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.02;
  config.field.radio.edge_loss = 0.2;
  Runtime runtime(config);
  runtime.deploy_receivers(grid, 1100.0 / static_cast<double>(grid) + 220);
  runtime.deploy_transmitters(grid, 1100.0 / static_cast<double>(grid) + 220);

  wireless::SensorField::PopulationSpec spec;
  spec.first_id = 1;
  spec.count = sensors;
  spec.interval_ms = 500;
  runtime.deploy_population(spec);
  runtime.start_sensors();

  core::Consumer consumer(runtime.bus(), "consumer.ops");
  runtime.provision(consumer, "ops");

  if (warm) {
    runtime.run_for(Duration::seconds(10));  // accumulate reception evidence
  }

  std::uint64_t applied_before = 0;
  for (std::size_t i = 0; i < sensors; ++i) {
    applied_before += runtime.field().sensor_at(i).updates_applied();
  }

  for (core::SensorId id = 1; id <= sensors; ++id) {
    consumer.request_update({id, 0}, core::UpdateAction::kSetMode, 42, {});
  }
  runtime.run_for(Duration::seconds(15));  // admission + retries + delivery

  std::uint64_t applied = 0;
  for (std::size_t i = 0; i < sensors; ++i) {
    applied += runtime.field().sensor_at(i).updates_applied();
  }

  const auto snap = runtime.telemetry().registry.snapshot();
  const auto sends = snap.counter("garnet.replicator.sends");
  const auto activations = snap.counter("garnet.replicator.transmitter_activations");
  const auto targeted = snap.counter("garnet.replicator.targeted_sends");
  const auto downlink_bytes = snap.counter("garnet.radio.downlink_bytes_sent");
  Outcome outcome;
  outcome.activations_per_send =
      sends ? static_cast<double>(activations) / static_cast<double>(sends) : 0;
  outcome.downlink_bytes_per_send =
      sends ? static_cast<double>(downlink_bytes) / static_cast<double>(sends) : 0;
  outcome.delivery_success =
      static_cast<double>(applied - applied_before) / static_cast<double>(sensors);
  outcome.targeted_fraction =
      sends ? static_cast<double>(targeted) / static_cast<double>(sends) : 0;
  return outcome;
}

/// Args: transmitter/receiver grid size, warm (1) vs cold (0).
void BM_ControlDelivery(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  const bool warm = state.range(1) != 0;

  Outcome outcome;
  for (auto _ : state) {
    outcome = run_scenario(grid, /*sensors=*/12, warm, /*seed=*/17);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["tx_activations_per_msg"] = outcome.activations_per_send;
  state.counters["downlink_bytes_per_msg"] = outcome.downlink_bytes_per_send;
  state.counters["delivery_success"] = outcome.delivery_success;
  state.counters["targeted_fraction"] = outcome.targeted_fraction;
  state.counters["transmitters"] = static_cast<double>(grid);
}
BENCHMARK(BM_ControlDelivery)
    ->ArgsProduct({{4, 9, 16, 25}, {0, 1}})
    ->ArgNames({"grid", "warm"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
