// Experiment E10 — end-to-end encryption overhead.
//
// Paper §9 names "a high-level abstraction of data streams supporting
// end-to-end encryption" among Garnet's novel features, enabled by the
// opaque payload (§4.3). The middleware cost is identical either way (it
// never interprets payloads); the *endpoint* cost is what a producer and
// consumer pay to seal and open. Reported: raw cipher throughput, sealed
// vs plain codec pipeline cost per message, and the constant 16-byte
// size overhead. Expected shape: ChaCha20-Poly1305 runs at hundreds of
// MB/s even scalar; per-message overhead is dominated by fixed costs for
// sensor-sized payloads.
#include "bench/common.hpp"
#include "crypto/sealed.hpp"

namespace garnet::bench {
namespace {

void BM_Seal(benchmark::State& state) {
  util::Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  const util::Bytes payload = random_payload(rng, size);
  const crypto::Key key = crypto::key_from_seed(7);

  std::uint64_t counter = 0;
  for (auto _ : state) {
    const util::Bytes sealed = crypto::seal(key, crypto::nonce_from_counter(++counter), payload);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * size));
  state.counters["size_overhead_bytes"] = static_cast<double>(crypto::kSealOverhead);
}
BENCHMARK(BM_Seal)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65535);

void BM_Open(benchmark::State& state) {
  util::Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  const crypto::Key key = crypto::key_from_seed(7);
  const crypto::Nonce nonce = crypto::nonce_from_counter(9);
  const util::Bytes sealed = crypto::seal(key, nonce, random_payload(rng, size));

  for (auto _ : state) {
    const auto opened = crypto::open(key, nonce, sealed);
    benchmark::DoNotOptimize(&opened);
    if (!opened.ok()) state.SkipWithError("open failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Open)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65535);

/// Producer-to-consumer message cost, plain: encode + decode only.
void BM_PipelinePlain(benchmark::State& state) {
  util::Rng rng(3);
  const auto size = static_cast<std::size_t>(state.range(0));
  core::DataMessage msg = make_message(rng, size);

  for (auto _ : state) {
    const util::Bytes wire = core::encode(msg);
    const auto decoded = core::decode(wire);
    benchmark::DoNotOptimize(&decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelinePlain)->Arg(8)->Arg(64)->Arg(1024);

/// Producer-to-consumer message cost, sealed: seal + encode + decode +
/// open. The delta against BM_PipelinePlain is E10's headline number.
void BM_PipelineSealed(benchmark::State& state) {
  util::Rng rng(4);
  const auto size = static_cast<std::size_t>(state.range(0));
  const crypto::Key key = crypto::key_from_seed(11);
  const util::Bytes reading = random_payload(rng, size);
  core::DataMessage msg = make_message(rng, 0);
  msg.header.set(core::HeaderFlag::kEncrypted);

  std::uint64_t nonce_counter = 0;
  for (auto _ : state) {
    const crypto::Nonce nonce = crypto::nonce_from_counter(++nonce_counter);
    msg.payload = crypto::seal(key, nonce, reading);  // producer
    const util::Bytes wire = core::encode(msg);       // sensor radio + fixed net
    const auto decoded = core::decode(wire);          // filtering
    if (!decoded.ok()) state.SkipWithError("decode failed");
    const auto opened = crypto::open(key, nonce, decoded.value().payload);  // consumer
    benchmark::DoNotOptimize(&opened);
    if (!opened.ok()) state.SkipWithError("open failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["wire_overhead_bytes"] = static_cast<double>(crypto::kSealOverhead);
}
BENCHMARK(BM_PipelineSealed)->Arg(8)->Arg(64)->Arg(1024);

/// Tamper-rejection cost: what the consumer pays to throw away a frame
/// the (untrusted) middleware corrupted.
void BM_OpenReject(benchmark::State& state) {
  util::Rng rng(5);
  const crypto::Key key = crypto::key_from_seed(13);
  const crypto::Nonce nonce = crypto::nonce_from_counter(1);
  util::Bytes sealed = crypto::seal(key, nonce, random_payload(rng, 64));
  sealed[10] ^= std::byte{0x01};

  for (auto _ : state) {
    const auto opened = crypto::open(key, nonce, sealed);
    benchmark::DoNotOptimize(&opened);
    if (opened.ok()) state.SkipWithError("tampered frame accepted");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OpenReject);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
