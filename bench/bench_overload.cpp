// Experiment A5 — overload control under flood.
//
// Sweeps offered load (1x / 4x / 10x the healthy 2ms cadence) against
// one straggling subscriber (healthy / 20x / 100x per-message service
// time) and reports what the overload layer buys: the healthy consumer's
// goodput, the control-plane (catalog discovery) tail latency, shed and
// quarantine counts. The harshest cell's full telemetry snapshot is
// persisted to BENCH_overload.json; scripts/ci.sh gates on it — the
// control-plane shed counters must stay zero while data was shed.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "garnet/runtime.hpp"
#include "obs/export.hpp"

namespace garnet::bench {
namespace {

using util::Duration;
using util::SimTime;

struct FloodOutcome {
  double fast_received = 0;
  double slow_received = 0;
  double control_p99_ms = 0;
  double discoveries_unanswered = 0;
  double data_sheds = 0;
  double control_sheds = 0;
  double quarantines = 0;
  double messages_offered = 0;
};

/// One virtual second of flood: messages injected into the dispatcher on
/// a fixed cadence, a healthy subscriber, a configurable straggler, and a
/// catalog-discovery prober supplying the control-plane traffic. When
/// `json_out` is set, the full telemetry snapshot (plus the headline
/// bench.overload.* gauges) is rendered before teardown.
FloodOutcome run_flood(std::int64_t message_interval_us, std::int64_t slow_service_us,
                       std::string* json_out = nullptr) {
  Runtime::Config config;
  config.overload.credit_window = 32;
  config.overload.shed_journal_limit = 1 << 14;
  {
    net::InboxConfig fast;
    fast.capacity = 64;
    fast.policy = net::OverflowPolicy::kDropOldest;
    fast.service_time = Duration::micros(20);
    config.overload.inboxes["consumer.fast"] = fast;
    net::InboxConfig slow = fast;
    slow.capacity = 8;
    slow.service_time = Duration::micros(slow_service_us);
    config.overload.inboxes["consumer.slow"] = slow;
  }
  Runtime runtime(config);

  core::Consumer fast(runtime.bus(), "consumer.fast");
  runtime.provision(fast, "fast");
  fast.subscribe(core::StreamPattern::everything());
  core::Consumer slow(runtime.bus(), "consumer.slow");
  runtime.provision(slow, "slow");
  slow.subscribe(core::StreamPattern::everything());
  core::Consumer prober(runtime.bus(), "consumer.prober");
  runtime.provision(prober, "prober");
  runtime.run_for(Duration::millis(20));

  FloodOutcome outcome;
  std::vector<Duration> control_latencies;
  std::uint64_t issued = 0;
  std::uint64_t answered = 0;
  sim::Scheduler& scheduler = runtime.scheduler();
  const SimTime flood_end = scheduler.now() + Duration::seconds(1);

  core::SequenceNo next_seq = 0;
  std::function<void()> inject = [&] {
    core::DataMessage msg;
    msg.stream_id = {1, 0};
    msg.sequence = next_seq++;
    msg.payload = util::Bytes(24);
    runtime.dispatch().on_filtered(msg, scheduler.now());
    outcome.messages_offered += 1;
    if (scheduler.now() < flood_end) {
      scheduler.schedule_after(Duration::micros(message_interval_us), inject);
    }
  };
  std::function<void()> probe = [&] {
    ++issued;
    const SimTime asked = scheduler.now();
    prober.discover({}, [&, asked](std::vector<core::StreamInfo>) {
      ++answered;
      control_latencies.push_back(scheduler.now() - asked);
    });
    if (scheduler.now() < flood_end) scheduler.schedule_after(Duration::millis(20), probe);
  };
  inject();
  probe();
  runtime.run_for(Duration::seconds(2));  // flood + drain

  outcome.fast_received = static_cast<double>(fast.received());
  outcome.slow_received = static_cast<double>(slow.received());
  outcome.discoveries_unanswered = static_cast<double>(issued - answered);
  if (!control_latencies.empty()) {
    std::sort(control_latencies.begin(), control_latencies.end(),
              [](Duration a, Duration b) { return a.ns < b.ns; });
    outcome.control_p99_ms =
        control_latencies[(control_latencies.size() * 99) / 100].to_millis();
  }
  outcome.data_sheds = static_cast<double>(runtime.bus().shed_stats().data_total());
  outcome.control_sheds = static_cast<double>(runtime.bus().shed_stats().control_total());
  outcome.quarantines = static_cast<double>(runtime.dispatch().stats().quarantines);

  if (json_out != nullptr) {
    obs::MetricsRegistry& registry = runtime.telemetry().registry;
    registry.add_collector([&outcome](obs::SnapshotBuilder& out) {
      out.gauge("bench.overload.goodput_fast", outcome.fast_received);
      out.gauge("bench.overload.goodput_slow", outcome.slow_received);
      out.gauge("bench.overload.control_p99_ms", outcome.control_p99_ms);
      out.gauge("bench.overload.discoveries_unanswered", outcome.discoveries_unanswered);
      out.gauge("bench.overload.messages_offered", outcome.messages_offered);
    });
    *json_out = obs::render_json(registry.snapshot());
  }
  return outcome;
}

/// Args: message interval (us) — 2000 is the healthy cadence; slow
/// consumer per-message service time (us) — 20 matches the healthy one.
void BM_OverloadFlood(benchmark::State& state) {
  const auto interval_us = state.range(0);
  const auto slow_service_us = state.range(1);

  FloodOutcome outcome;
  for (auto _ : state) {
    outcome = run_flood(interval_us, slow_service_us);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["goodput_fast"] = outcome.fast_received;
  state.counters["goodput_slow"] = outcome.slow_received;
  state.counters["control_p99_ms"] = outcome.control_p99_ms;
  state.counters["discoveries_unanswered"] = outcome.discoveries_unanswered;
  state.counters["data_sheds"] = outcome.data_sheds;
  state.counters["control_sheds"] = outcome.control_sheds;
  state.counters["quarantines"] = outcome.quarantines;

  // Machine-readable exposition for the harshest cell: 10x load with the
  // 100x straggler. scripts/ci.sh asserts the priority invariant on it.
  if (interval_us == 200 && slow_service_us == 2000) {
    std::string json;
    run_flood(interval_us, slow_service_us, &json);
    write_bench_report("overload", json);
  }
}
BENCHMARK(BM_OverloadFlood)
    ->ArgsProduct({{2000, 500, 200}, {20, 400, 2000}})
    ->ArgNames({"interval_us", "slow_svc_us"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
