// Experiment A5 — overload control under flood.
//
// Sweeps offered load (1x / 4x / 10x the healthy 2ms cadence) against
// one straggling subscriber (healthy / 20x / 100x per-message service
// time) and reports what the overload layer buys: the healthy consumer's
// goodput, the control-plane (catalog discovery) tail latency, shed and
// quarantine counts. The harshest cell's full telemetry snapshot is
// persisted to BENCH_overload.json; scripts/ci.sh gates on it — the
// control-plane shed counters must stay zero while data was shed.
//
// Experiment A5b — adaptive admission (net/admission.hpp). For each
// payload size in a 10× spread, a fixed 20k msg/s flood is pushed at a
// consumer whose per-message cost scales with the payload, once per
// static ticket-pool size and once with the throughput prober on. The
// probed run starts from the same initial pool everywhere — no per-run
// hand tuning — and the gate (scripts/check_overload_report.py) requires
// its goodput to reach ≥ 0.9× the best static setting at every payload
// size with zero control-plane shed. Flags (stripped before
// google-benchmark sees them): `--probe` runs only this sweep,
// `--admission=static` freezes the pools (the pre-admission behaviour).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "garnet/runtime.hpp"
#include "obs/export.hpp"

namespace garnet::bench {
namespace {

using util::Duration;
using util::SimTime;

/// Defined with the A5b sweep below; appends the probed-vs-static
/// admission comparison to the persisted report.
void append_probe_metrics(obs::SnapshotBuilder& out);

struct FloodOutcome {
  double fast_received = 0;
  double slow_received = 0;
  double control_p99_ms = 0;
  double discoveries_unanswered = 0;
  double data_sheds = 0;
  double control_sheds = 0;
  double quarantines = 0;
  double messages_offered = 0;
};

/// One virtual second of flood: messages injected into the dispatcher on
/// a fixed cadence, a healthy subscriber, a configurable straggler, and a
/// catalog-discovery prober supplying the control-plane traffic. When
/// `json_out` is set, the full telemetry snapshot (plus the headline
/// bench.overload.* gauges) is rendered before teardown.
FloodOutcome run_flood(std::int64_t message_interval_us, std::int64_t slow_service_us,
                       std::string* json_out = nullptr) {
  Runtime::Config config;
  config.overload.credit_window = 32;
  config.overload.shed_journal_limit = 1 << 14;
  {
    net::InboxConfig fast;
    fast.capacity = 64;
    fast.policy = net::OverflowPolicy::kDropOldest;
    fast.service_time = Duration::micros(20);
    config.overload.inboxes["consumer.fast"] = fast;
    net::InboxConfig slow = fast;
    slow.capacity = 8;
    slow.service_time = Duration::micros(slow_service_us);
    config.overload.inboxes["consumer.slow"] = slow;
  }
  Runtime runtime(config);

  core::Consumer fast(runtime.bus(), "consumer.fast");
  runtime.provision(fast, "fast");
  fast.subscribe(core::StreamPattern::everything());
  core::Consumer slow(runtime.bus(), "consumer.slow");
  runtime.provision(slow, "slow");
  slow.subscribe(core::StreamPattern::everything());
  core::Consumer prober(runtime.bus(), "consumer.prober");
  runtime.provision(prober, "prober");
  runtime.run_for(Duration::millis(20));

  FloodOutcome outcome;
  std::vector<Duration> control_latencies;
  std::uint64_t issued = 0;
  std::uint64_t answered = 0;
  sim::Scheduler& scheduler = runtime.scheduler();
  const SimTime flood_end = scheduler.now() + Duration::seconds(1);

  core::SequenceNo next_seq = 0;
  std::function<void()> inject = [&] {
    core::DataMessage msg;
    msg.stream_id = {1, 0};
    msg.sequence = next_seq++;
    msg.payload = util::Bytes(24);
    runtime.dispatch().on_filtered(msg, scheduler.now());
    outcome.messages_offered += 1;
    if (scheduler.now() < flood_end) {
      scheduler.schedule_after(Duration::micros(message_interval_us), inject);
    }
  };
  std::function<void()> probe = [&] {
    ++issued;
    const SimTime asked = scheduler.now();
    prober.discover({}, [&, asked](std::vector<core::StreamInfo>) {
      ++answered;
      control_latencies.push_back(scheduler.now() - asked);
    });
    if (scheduler.now() < flood_end) scheduler.schedule_after(Duration::millis(20), probe);
  };
  inject();
  probe();
  runtime.run_for(Duration::seconds(2));  // flood + drain

  outcome.fast_received = static_cast<double>(fast.received());
  outcome.slow_received = static_cast<double>(slow.received());
  outcome.discoveries_unanswered = static_cast<double>(issued - answered);
  if (!control_latencies.empty()) {
    std::sort(control_latencies.begin(), control_latencies.end(),
              [](Duration a, Duration b) { return a.ns < b.ns; });
    outcome.control_p99_ms =
        control_latencies[(control_latencies.size() * 99) / 100].to_millis();
  }
  outcome.data_sheds = static_cast<double>(runtime.bus().shed_stats().data_total());
  outcome.control_sheds = static_cast<double>(runtime.bus().shed_stats().control_total());
  outcome.quarantines = static_cast<double>(runtime.dispatch().stats().quarantines);

  if (json_out != nullptr) {
    obs::MetricsRegistry& registry = runtime.telemetry().registry;
    registry.add_collector([&outcome](obs::SnapshotBuilder& out) {
      out.gauge("bench.overload.goodput_fast", outcome.fast_received);
      out.gauge("bench.overload.goodput_slow", outcome.slow_received);
      out.gauge("bench.overload.control_p99_ms", outcome.control_p99_ms);
      out.gauge("bench.overload.discoveries_unanswered", outcome.discoveries_unanswered);
      out.gauge("bench.overload.messages_offered", outcome.messages_offered);
      append_probe_metrics(out);
    });
    *json_out = obs::render_json(registry.snapshot());
  }
  return outcome;
}

// --- A5b: admission-control probe sweep ------------------------------------

struct ProbeOutcome {
  double goodput = 0;            ///< Deliveries that reached the consumer.
  double data_sheds = 0;         ///< Admitted, then shed downstream.
  double control_sheds = 0;
  double rejected = 0;           ///< Refused at the admission door.
  double discoveries_unanswered = 0;
  double final_tickets = 0;      ///< Data-pool size at the end of the run.
};

/// One virtual second of a fixed 20k msg/s external flood against a
/// consumer whose inbox costs 40ns per payload byte, behind the
/// admission gate. `tickets` is the pool size (static) or the starting
/// point (probed); the lease (500us) makes the pool an admission-rate
/// bound of tickets × 2k msg/s, so the goodput-maximising size moves
/// with the payload and the prober has something real to find.
ProbeOutcome run_probe(std::int64_t payload_bytes, bool probing, std::uint32_t tickets) {
  Runtime::Config config;
  config.admission.enabled = true;
  config.admission.probing = probing;
  config.admission.probe.initial_concurrency = tickets;
  config.admission.probe.min_concurrency = 2;
  config.admission.probe.max_concurrency = 64;
  config.admission.probe.interval = Duration::millis(10);
  config.admission.probe.lease = Duration::micros(500);
  config.overload.shed_journal_limit = 1 << 12;
  {
    net::InboxConfig sink;
    sink.capacity = 16;
    sink.policy = net::OverflowPolicy::kDropNewest;
    sink.service_time = Duration::nanos(40 * payload_bytes);
    config.overload.inboxes["consumer.sink"] = sink;
  }
  Runtime runtime(config);

  core::Consumer sink(runtime.bus(), "consumer.sink");
  runtime.provision(sink, "sink");
  sink.subscribe(core::StreamPattern::everything());
  core::Consumer prober(runtime.bus(), "consumer.prober");
  runtime.provision(prober, "prober");
  runtime.run_for(Duration::millis(20));

  sim::Scheduler& scheduler = runtime.scheduler();
  const SimTime flood_end = scheduler.now() + Duration::seconds(1);
  std::uint64_t issued = 0;
  std::uint64_t answered = 0;

  core::SequenceNo next_seq = 0;
  core::DataMessage msg;
  msg.stream_id = {1, 0};
  msg.payload = util::Bytes(static_cast<std::size_t>(payload_bytes));
  std::function<void()> inject = [&] {
    msg.sequence = next_seq++;
    runtime.inject_external(core::as_view(msg));
    if (scheduler.now() < flood_end) {
      scheduler.schedule_after(Duration::micros(50), inject);
    }
  };
  std::function<void()> probe = [&] {
    ++issued;
    prober.discover({}, [&](std::vector<core::StreamInfo>) { ++answered; });
    if (scheduler.now() < flood_end) scheduler.schedule_after(Duration::millis(20), probe);
  };
  inject();
  probe();
  runtime.run_for(Duration::seconds(2));  // flood + drain

  ProbeOutcome outcome;
  outcome.goodput = static_cast<double>(sink.received());
  outcome.data_sheds = static_cast<double>(runtime.bus().shed_stats().data_total());
  outcome.control_sheds = static_cast<double>(runtime.bus().shed_stats().control_total());
  outcome.rejected = static_cast<double>(runtime.admission()->stats().data_rejected);
  outcome.discoveries_unanswered = static_cast<double>(issued - answered);
  outcome.final_tickets = static_cast<double>(runtime.admission()->data_pool_size());
  return outcome;
}

/// The 10× payload spread and the static pool sizes the prober competes
/// against. The probed run always starts from kInitialTickets.
constexpr std::int64_t kProbePayloads[] = {256, 2560};
constexpr std::uint32_t kStaticTickets[] = {2, 4, 8, 16, 32};
constexpr std::uint32_t kInitialTickets = 16;

/// (payload, "probed"/"static", tickets) -> outcome; filled by the probe
/// benchmark, rendered into BENCH_overload.json by the flood cell below
/// (google-benchmark runs registrations in order, so the sweep has
/// always completed by the time the report is written).
std::map<std::tuple<std::int64_t, std::string, std::uint32_t>, ProbeOutcome>& probe_cells() {
  static std::map<std::tuple<std::int64_t, std::string, std::uint32_t>, ProbeOutcome> cells;
  return cells;
}

void append_probe_metrics(obs::SnapshotBuilder& out) {
  std::map<std::int64_t, double> best_static;
  for (const auto& [key, cell] : probe_cells()) {
    const auto& [payload, mode, tickets] = key;
    const obs::Labels labels{{"mode", mode},
                             {"payload", std::to_string(payload)},
                             {"tickets", std::to_string(tickets)}};
    out.gauge("bench.overload.probe_goodput", cell.goodput, labels);
    out.gauge("bench.overload.probe_control_sheds", cell.control_sheds, labels);
    out.gauge("bench.overload.probe_unanswered", cell.discoveries_unanswered, labels);
    if (mode == "static") {
      auto [it, inserted] = best_static.emplace(payload, cell.goodput);
      if (!inserted) it->second = std::max(it->second, cell.goodput);
    } else {
      out.gauge("bench.overload.probe_final_tickets", cell.final_tickets,
                {{"payload", std::to_string(payload)}});
    }
  }
  for (const auto& [payload, goodput] : best_static) {
    out.gauge("bench.overload.probe_best_static", goodput,
              {{"payload", std::to_string(payload)}});
  }
}

/// Arg: payload bytes. Each iteration runs the full static sweep plus
/// one probed run and reports the headline comparison.
void BM_AdmissionProbe(benchmark::State& state) {
  const std::int64_t payload = state.range(0);
  const bool probing = admission_mode() == AdmissionMode::kProbed;

  double best_static = 0;
  ProbeOutcome probed;
  for (auto _ : state) {
    for (const std::uint32_t tickets : kStaticTickets) {
      const ProbeOutcome cell = run_probe(payload, /*probing=*/false, tickets);
      best_static = std::max(best_static, cell.goodput);
      probe_cells()[{payload, "static", tickets}] = cell;
    }
    probed = run_probe(payload, probing, kInitialTickets);
    probe_cells()[{payload, "probed", kInitialTickets}] = probed;
  }
  state.counters["goodput_probed"] = probed.goodput;
  state.counters["goodput_best_static"] = best_static;
  state.counters["convergence_ratio"] = best_static > 0 ? probed.goodput / best_static : 0;
  state.counters["final_tickets"] = probed.final_tickets;
  state.counters["rejected_at_door"] = probed.rejected;
  state.counters["control_sheds"] = probed.control_sheds;
}
BENCHMARK(BM_AdmissionProbe)
    ->Arg(kProbePayloads[0])
    ->Arg(kProbePayloads[1])
    ->ArgNames({"payload"})
    ->Unit(benchmark::kMillisecond);

// --- A5: static overload flood ---------------------------------------------

/// Args: message interval (us) — 2000 is the healthy cadence; slow
/// consumer per-message service time (us) — 20 matches the healthy one.
void BM_OverloadFlood(benchmark::State& state) {
  const auto interval_us = state.range(0);
  const auto slow_service_us = state.range(1);

  FloodOutcome outcome;
  for (auto _ : state) {
    outcome = run_flood(interval_us, slow_service_us);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["goodput_fast"] = outcome.fast_received;
  state.counters["goodput_slow"] = outcome.slow_received;
  state.counters["control_p99_ms"] = outcome.control_p99_ms;
  state.counters["discoveries_unanswered"] = outcome.discoveries_unanswered;
  state.counters["data_sheds"] = outcome.data_sheds;
  state.counters["control_sheds"] = outcome.control_sheds;
  state.counters["quarantines"] = outcome.quarantines;

  // Machine-readable exposition for the harshest cell: 10x load with the
  // 100x straggler. scripts/ci.sh asserts the priority invariant on it.
  if (interval_us == 200 && slow_service_us == 2000) {
    std::string json;
    run_flood(interval_us, slow_service_us, &json);
    write_bench_report("overload", json);
  }
}
BENCHMARK(BM_OverloadFlood)
    ->ArgsProduct({{2000, 500, 200}, {20, 400, 2000}})
    ->ArgNames({"interval_us", "slow_svc_us"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

int main(int argc, char** argv) {
  bool probe_only = false;
  garnet::bench::parse_garnet_flags(argc, argv, &probe_only);
  std::vector<char*> args(argv, argv + argc);
  char filter_flag[] = "--benchmark_filter=AdmissionProbe";
  if (probe_only) args.push_back(filter_flag);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
