// Experiment E8 — Resource Manager conflict mediation at scale.
//
// Paper §4.2/§6: mutually-unaware consumers issue conflicting stream-
// update requests; the Resource Manager "exercises control over the
// permissible actions which a set of consumers may request". Sweeps the
// number of conflicting consumers under each conflict policy and reports
// evaluation throughput (wall-clock) plus the admission breakdown and the
// mediated value the sensor converges to. Expected shape: throughput
// degrades slowly with demand-set size (linear scan per evaluation);
// most-demanding-wins converges to the minimum demand, merge to the
// median, reject-conflicts denies all but the first.
#include <benchmark/benchmark.h>

#include "core/resource.hpp"
#include "net/bus.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace garnet::bench {
namespace {

struct ConflictRig {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  core::AuthService auth{{}};
  core::ResourceManager resource;
  std::vector<core::ConsumerToken> tokens;

  ConflictRig(core::ConflictPolicy policy, std::size_t consumers)
      : resource(bus, auth,
                 {.policy = policy,
                  .evaluation_delay = util::Duration::millis(1),
                  .allow_trusted_override = true,
                  .demand_ttl = util::Duration::seconds(3600)}) {
    core::SensorProfile profile;
    profile.id = 1;
    profile.constraints[0] = {.min_interval_ms = 10, .max_interval_ms = 100000,
                              .max_payload = 64};
    resource.register_profile(std::move(profile));
    for (std::size_t i = 0; i < consumers; ++i) {
      tokens.push_back(auth
                           .register_consumer("c" + std::to_string(i), net::Address{1},
                                              static_cast<std::uint8_t>(i % 256))
                           .value()
                           .token);
    }
  }
};

/// Args: policy (0..3), consumers.
void BM_ConflictMediation(benchmark::State& state) {
  const auto policy = static_cast<core::ConflictPolicy>(state.range(0));
  const auto consumers = static_cast<std::size_t>(state.range(1));
  ConflictRig rig(policy, consumers);
  util::Rng rng(3);

  // Seed every consumer with a distinct demand (100..100+N*10 ms).
  for (std::size_t i = 0; i < consumers; ++i) {
    (void)rig.resource.evaluate_now(rig.tokens[i], {1, 0}, core::UpdateAction::kSetIntervalMs,
                                    static_cast<std::uint32_t>(100 + 10 * i));
  }

  std::uint64_t denied = 0;
  std::uint64_t modified = 0;
  std::uint32_t converged = 0;
  for (auto _ : state) {
    const std::size_t who = rng.below(consumers);
    const auto asked = static_cast<std::uint32_t>(100 + 10 * who);
    const core::Decision decision =
        rig.resource.evaluate_now(rig.tokens[who], {1, 0}, core::UpdateAction::kSetIntervalMs,
                                  asked);
    benchmark::DoNotOptimize(&decision);
    denied += decision.admission == core::Admission::kDenied ? 1 : 0;
    modified += decision.admission == core::Admission::kModified ? 1 : 0;
    if (decision.admission != core::Admission::kDenied) converged = decision.effective_value;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["denied_rate"] =
      static_cast<double>(denied) / static_cast<double>(state.iterations());
  state.counters["modified_rate"] =
      static_cast<double>(modified) / static_cast<double>(state.iterations());
  state.counters["converged_interval_ms"] = static_cast<double>(converged);
  state.counters["believed_interval_ms"] =
      static_cast<double>(rig.resource.believed_interval({1, 0}).value_or(0));
}
BENCHMARK(BM_ConflictMediation)
    ->ArgsProduct({{0, 1, 2, 3}, {2, 16, 64, 256}})
    ->ArgNames({"policy", "consumers"});

/// Pre-arm fast path vs deliberation path, in events executed: how much
/// scheduler work an admission costs with and without prediction.
void BM_PrearmVsDeliberation(benchmark::State& state) {
  const bool prearmed = state.range(0) != 0;
  ConflictRig rig(core::ConflictPolicy::kMostDemandingWins, 1);

  std::uint64_t decisions = 0;
  for (auto _ : state) {
    if (prearmed) {
      rig.resource.prearm(rig.tokens[0], {1, 0}, core::UpdateAction::kSetIntervalMs, 100);
    }
    rig.resource.evaluate(rig.tokens[0], {1, 0}, core::UpdateAction::kSetIntervalMs, 100,
                          [&](core::Decision) { ++decisions; });
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["decisions"] = static_cast<double>(decisions);
  state.counters["events_per_decision"] =
      static_cast<double>(rig.scheduler.executed()) / static_cast<double>(decisions);
}
BENCHMARK(BM_PrearmVsDeliberation)->Arg(0)->Arg(1)->ArgName("prearmed");

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
