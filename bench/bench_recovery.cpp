// Experiment A6 — crash recovery: checkpoint cadence vs detection
// threshold.
//
// Sweeps the checkpoint interval (how much op-log tail a promotion must
// replay) against the watchdog miss threshold (how long a dead service
// stays undetected) and reports the recovery cost: crash-to-restored
// latency, replayed ops, stash-replayed deliveries — and the invariant
// the whole subsystem exists for, duplicates after promotion, which
// must be zero in every cell. The canonical cell's full telemetry
// snapshot is persisted to BENCH_recovery.json; scripts/ci.sh gates on
// it via scripts/check_recovery_report.py.
#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "bench/common.hpp"
#include "garnet/runtime.hpp"
#include "obs/export.hpp"

namespace garnet::bench {
namespace {

using util::Duration;
using util::SimTime;

struct RecoveryOutcome {
  double latency_ms = 0;
  double ops_replayed = 0;
  double stash_replayed = 0;
  double duplicates_after_promotion = 0;
  double checkpoints_taken = 0;
  double messages_offered = 0;
  double messages_delivered = 0;
};

/// One crash cycle: a 1ms-cadence stream through the filtering service,
/// the dispatcher crash-stopped mid-stream by the fault plan, and the
/// watchdog left to detect and promote it. When `json_out` is set, the
/// full telemetry snapshot (plus the headline bench.recovery.* gauges)
/// is rendered before teardown.
RecoveryOutcome run_crash_cycle(std::int64_t checkpoint_ms, std::uint32_t miss_threshold,
                                std::string* json_out = nullptr) {
  Runtime::Config config;
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval = Duration::millis(checkpoint_ms);
  config.recovery.heartbeat_interval = Duration::millis(100);
  config.recovery.miss_threshold = miss_threshold;
  config.overload.credit_window = 64;
  {
    net::FaultPlan::CrashSpec crash;
    crash.service = "dispatch";
    crash.at = SimTime{} + Duration::millis(520);
    config.faults.crashes.push_back(crash);  // no restart: watchdog promotes
  }
  Runtime runtime(config);

  core::Consumer consumer(runtime.bus(), "consumer.watch");
  runtime.provision(consumer, "watch");
  consumer.subscribe(core::StreamPattern::everything());
  std::map<std::pair<std::uint32_t, core::SequenceNo>, int> counts;
  consumer.set_data_handler([&](const core::DeliveryView& d) {
    ++counts[{d.message.stream_id.packed(), d.message.sequence}];
  });
  runtime.run_for(Duration::millis(20));

  RecoveryOutcome outcome;
  sim::Scheduler& scheduler = runtime.scheduler();
  const SimTime flood_end = scheduler.now() + Duration::millis(1500);
  core::SequenceNo next_seq = 0;
  std::function<void()> inject = [&] {
    core::DataMessage msg;
    msg.stream_id = {1, 0};
    msg.sequence = next_seq++;
    msg.payload = util::Bytes(24);
    runtime.filtering().ingest(
        wireless::ReceptionReport{1, -40.0, scheduler.now(), core::encode(msg)});
    outcome.messages_offered += 1;
    if (scheduler.now() < flood_end) scheduler.schedule_after(Duration::millis(1), inject);
  };
  inject();
  runtime.run_for(Duration::seconds(3));  // flood + crash + promotion + drain

  for (const auto& [key, count] : counts) {
    outcome.messages_delivered += 1;
    if (count > 1) outcome.duplicates_after_promotion += count - 1;
  }
  const obs::MetricsSnapshot snap = runtime.telemetry().registry.snapshot();
  outcome.latency_ms = snap.gauge("garnet.recovery.latency_ns") / 1e6;
  outcome.ops_replayed = static_cast<double>(snap.counter("garnet.recovery.ops_replayed"));
  outcome.stash_replayed =
      static_cast<double>(snap.counter("garnet.dispatch.recovery_replayed"));
  outcome.checkpoints_taken = static_cast<double>(snap.counter("garnet.checkpoint.taken"));

  if (json_out != nullptr) {
    obs::MetricsRegistry& registry = runtime.telemetry().registry;
    registry.add_collector([&outcome](obs::SnapshotBuilder& out) {
      out.gauge("bench.recovery.latency_ms", outcome.latency_ms);
      out.gauge("bench.recovery.duplicates_after_promotion",
                outcome.duplicates_after_promotion);
      out.gauge("bench.recovery.messages_offered", outcome.messages_offered);
      out.gauge("bench.recovery.messages_delivered", outcome.messages_delivered);
    });
    *json_out = obs::render_json(registry.snapshot());
  }
  return outcome;
}

/// Args: checkpoint interval (ms) — shorter means less tail to replay;
/// watchdog miss threshold (beats of 100ms) — smaller detects faster.
void BM_CrashRecovery(benchmark::State& state) {
  const auto checkpoint_ms = state.range(0);
  const auto miss_threshold = static_cast<std::uint32_t>(state.range(1));

  RecoveryOutcome outcome;
  for (auto _ : state) {
    outcome = run_crash_cycle(checkpoint_ms, miss_threshold);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["recovery_latency_ms"] = outcome.latency_ms;
  state.counters["ops_replayed"] = outcome.ops_replayed;
  state.counters["stash_replayed"] = outcome.stash_replayed;
  state.counters["duplicates"] = outcome.duplicates_after_promotion;
  state.counters["checkpoints"] = outcome.checkpoints_taken;
  state.counters["delivered"] = outcome.messages_delivered;

  // Machine-readable exposition for the canonical cell (the defaults:
  // 250ms cadence, 3-miss detection). scripts/ci.sh asserts zero
  // post-promotion duplicates and full recovery on it.
  if (checkpoint_ms == 250 && miss_threshold == 3) {
    std::string json;
    run_crash_cycle(checkpoint_ms, miss_threshold, &json);
    write_bench_report("recovery", json);
  }
}
BENCHMARK(BM_CrashRecovery)
    ->ArgsProduct({{100, 250, 500}, {2, 3, 5}})
    ->ArgNames({"ckpt_ms", "miss_thresh"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
