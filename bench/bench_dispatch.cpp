// Experiment E3 — dispatch fan-out scalability, and ablation A1 —
// address-free (pattern) routing vs routing-table churn.
//
// Paper goals (§1): "low performance overhead, scalable design". The
// Dispatching Service is the hot path of the fixed side: every filtered
// message consults the subscription table and posts one envelope per
// matching consumer. Expected shape: per-message cost grows with the
// number of *matching* consumers (fan-out is real work), while
// non-matching consumers are near-free thanks to the exact-match index;
// wildcard subscriptions cost a linear scan (quantified here).
#include "bench/common.hpp"
#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "net/bus.hpp"
#include "sim/scheduler.hpp"

namespace garnet::bench {
namespace {

struct DispatchRig {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::DispatchingService dispatch{bus, auth, catalog};
  std::uint64_t sink_count = 0;

  net::Address add_consumer(const std::string& name) {
    return bus.add_endpoint(name, [this](net::Envelope) { ++sink_count; });
  }
};

/// Fan-out to N matching subscribers of one stream.
void BM_FanOut(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < consumers; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact({1, 0}));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();  // drain deliveries
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["copies_per_msg"] = static_cast<double>(consumers);
  state.counters["deliveries"] = static_cast<double>(rig.sink_count);
}
BENCHMARK(BM_FanOut)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->ArgName("consumers");

/// Selectivity: N consumers subscribed, but only a fraction match the
/// message's stream. Exact subscriptions make non-matching consumers
/// near-free (hash lookup).
void BM_Selectivity(benchmark::State& state) {
  const std::size_t consumers = 1024;
  const auto matching = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < consumers; ++i) {
    // Matching consumers subscribe to stream {1,0}; the rest to others.
    const core::StreamId target =
        i < matching ? core::StreamId{1, 0}
                     : core::StreamId{static_cast<core::SensorId>(2 + i), 0};
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact(target));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["matching"] = static_cast<double>(matching);
}
BENCHMARK(BM_Selectivity)->Arg(1)->Arg(16)->Arg(256)->Arg(1024)->ArgName("matching");

/// Wildcard subscriptions force a scan; this prices that design choice.
void BM_WildcardScan(benchmark::State& state) {
  const auto wildcards = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < wildcards; ++i) {
    // Wildcards on other sensors: scanned but never matching.
    rig.dispatch.subscribe(rig.add_consumer("w" + std::to_string(i)),
                           core::StreamPattern::all_of(static_cast<core::SensorId>(100 + i)));
  }
  rig.dispatch.subscribe(rig.add_consumer("hit"), core::StreamPattern::exact({1, 0}));
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WildcardScan)->Arg(0)->Arg(16)->Arg(256)->Arg(1024)->ArgName("wildcards");

/// Ablation A1 — churn. Garnet's address-free StreamID routing means a
/// consumer joining/leaving touches one table entry; a sensor-addressed
/// scheme would have to update per-sensor forwarding state. We measure
/// subscribe+unsubscribe cost against table size.
void BM_SubscriptionChurn(benchmark::State& state) {
  const auto resident = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  const net::Address churner = rig.add_consumer("churner");
  for (std::size_t i = 0; i < resident; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("r" + std::to_string(i)),
                           core::StreamPattern::exact({static_cast<core::SensorId>(i + 2), 0}));
  }
  for (auto _ : state) {
    const core::SubscriptionId id =
        rig.dispatch.subscribe(churner, core::StreamPattern::exact({1, 0}));
    benchmark::DoNotOptimize(id);
    rig.dispatch.unsubscribe(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["resident_subs"] = static_cast<double>(resident);
}
BENCHMARK(BM_SubscriptionChurn)->Arg(0)->Arg(64)->Arg(1024)->Arg(16384)->ArgName("resident");

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
