// Experiment E3 — dispatch fan-out scalability, and ablation A1 —
// address-free (pattern) routing vs routing-table churn.
//
// Paper goals (§1): "low performance overhead, scalable design". The
// Dispatching Service is the hot path of the fixed side: every filtered
// message consults the subscription table and posts one envelope per
// matching consumer. The zero-copy payload path makes that fan-out a
// refcount bump per subscriber instead of a wire-image copy, so the
// per-message cost should be dominated by scheduling, not memcpy. The
// fan-out × payload sweep quantifies exactly that; the telemetry
// exposition (BENCH_dispatch.json) pins allocations and copies per
// dispatched message so regressions show up in the perf trajectory.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "garnet/shard_plane.hpp"
#include "net/bus.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace garnet::bench {

/// Shard counts swept by the report benchmark. Overridable with
/// --shards=1,2,4 (stripped before google-benchmark sees the argv) or
/// the GARNET_BENCH_SHARDS env var.
std::vector<std::uint32_t> g_shard_counts = {1, 2, 4, 8, 16};

namespace {

struct DispatchRig {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::DispatchingService dispatch{bus, auth, catalog};
  std::uint64_t sink_count = 0;

  net::Address add_consumer(const std::string& name) {
    return bus.add_endpoint(name, [this](net::Envelope) { ++sink_count; });
  }
};

/// Fan-out to N matching subscribers of one stream.
void BM_FanOut(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < consumers; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact({1, 0}));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();  // drain deliveries
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["copies_per_msg"] = static_cast<double>(consumers);
  state.counters["deliveries"] = static_cast<double>(rig.sink_count);
}
BENCHMARK(BM_FanOut)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->ArgName("consumers");

/// Zero-copy sweep: fan-out N × payload size. One encode per message;
/// every subscriber (and the Orphanage, when unclaimed) shares the same
/// immutable buffer, so throughput should be nearly flat in payload size
/// once fan-out dominates. payload_allocs_per_msg reads the bus's
/// telemetry collector — it must stay at 1.0 regardless of N.
void BM_FanOutPayload(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  const auto payload_bytes = static_cast<std::size_t>(state.range(1));
  obs::MetricsRegistry registry;
  DispatchRig rig;
  rig.bus.set_metrics(registry);
  for (std::size_t i = 0; i < consumers; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact({1, 0}));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, payload_bytes);
  msg.stream_id = {1, 0};

  const std::uint64_t allocs_before = registry.snapshot().counter("garnet.bus.payload_allocs");
  const std::uint64_t copies_before = registry.snapshot().counter("garnet.bus.payload_copies");
  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  const auto iterations = static_cast<double>(state.iterations());
  const obs::MetricsSnapshot snap = registry.snapshot();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    (consumers * payload_bytes)));
  state.counters["payload_allocs_per_msg"] =
      static_cast<double>(snap.counter("garnet.bus.payload_allocs") - allocs_before) / iterations;
  state.counters["payload_copies_per_msg"] =
      static_cast<double>(snap.counter("garnet.bus.payload_copies") - copies_before) / iterations;
}
BENCHMARK(BM_FanOutPayload)
    ->ArgsProduct({{1, 8, 64, 256}, {64, 4096, 65535}})
    ->ArgNames({"consumers", "payload"});

/// Selectivity: N consumers subscribed, but only a fraction match the
/// message's stream. Exact subscriptions make non-matching consumers
/// near-free (hash lookup).
void BM_Selectivity(benchmark::State& state) {
  const std::size_t consumers = 1024;
  const auto matching = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < consumers; ++i) {
    // Matching consumers subscribe to stream {1,0}; the rest to others.
    const core::StreamId target =
        i < matching ? core::StreamId{1, 0}
                     : core::StreamId{static_cast<core::SensorId>(2 + i), 0};
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact(target));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["matching"] = static_cast<double>(matching);
}
BENCHMARK(BM_Selectivity)->Arg(1)->Arg(16)->Arg(256)->Arg(1024)->ArgName("matching");

/// Wildcard subscriptions force a scan; this prices that design choice.
void BM_WildcardScan(benchmark::State& state) {
  const auto wildcards = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < wildcards; ++i) {
    // Wildcards on other sensors: scanned but never matching.
    rig.dispatch.subscribe(rig.add_consumer("w" + std::to_string(i)),
                           core::StreamPattern::all_of(static_cast<core::SensorId>(100 + i)));
  }
  rig.dispatch.subscribe(rig.add_consumer("hit"), core::StreamPattern::exact({1, 0}));
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WildcardScan)->Arg(0)->Arg(16)->Arg(256)->Arg(1024)->ArgName("wildcards");

/// Ablation A1 — churn. Garnet's address-free StreamID routing means a
/// consumer joining/leaving touches one table entry; a sensor-addressed
/// scheme would have to update per-sensor forwarding state. We measure
/// subscribe+unsubscribe cost against table size.
void BM_SubscriptionChurn(benchmark::State& state) {
  const auto resident = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  const net::Address churner = rig.add_consumer("churner");
  for (std::size_t i = 0; i < resident; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("r" + std::to_string(i)),
                           core::StreamPattern::exact({static_cast<core::SensorId>(i + 2), 0}));
  }
  for (auto _ : state) {
    const core::SubscriptionId id =
        rig.dispatch.subscribe(churner, core::StreamPattern::exact({1, 0}));
    benchmark::DoNotOptimize(id);
    rig.dispatch.unsubscribe(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["resident_subs"] = static_cast<double>(resident);
}
BENCHMARK(BM_SubscriptionChurn)->Arg(0)->Arg(64)->Arg(1024)->Arg(16384)->ArgName("resident");

/// One point of the sharded-dispatch scaling sweep.
struct ShardSweepPoint {
  std::uint32_t shards = 1;
  /// Modeled N-core throughput: total messages over the *critical path*
  /// (the slowest shard's thread-CPU time). On a machine with >= N free
  /// cores this is the wall rate; on the 1-core CI runner, where worker
  /// threads timeshare one CPU, it is the honest scaling signal —
  /// thread-CPU time excludes the time a worker spends descheduled.
  double critical_msgs_per_sec = 0.0;
  /// Observed wall rate (partition-overhead check; ~flat on one core).
  double wall_msgs_per_sec = 0.0;
  double data_shed = 0.0;
  double control_shed = 0.0;
  double deliveries = 0.0;
};

/// E3b — shard scaling. 128 streams x fan-out 8, hash-partitioned over N
/// shard pipelines with bounded consumer inboxes (the overload path is
/// active; capacity is sized so nothing sheds). Work per shard tracks
/// its stream share, so critical-path speedup == partition balance minus
/// per-round merge overhead.
ShardSweepPoint run_shard_sweep_point(std::uint32_t shards) {
  constexpr std::size_t kStreams = 128;
  constexpr std::size_t kFanOut = 8;
  constexpr core::SequenceNo kSeqs = 128;
  constexpr core::SequenceNo kBatchSeqs = 8;  // seq rounds injected per merge round
  constexpr std::size_t kPayload = 256;

  ShardPlaneConfig config;
  config.shards = shards;
  config.bus.shed_journal_limit = 64;
  {
    net::InboxConfig inbox;
    inbox.capacity = 8192;
    inbox.policy = net::OverflowPolicy::kDropNewest;
    inbox.service_time = util::Duration::micros(1);
    for (std::size_t s = 0; s < kStreams; ++s) {
      for (std::size_t c = 0; c < kFanOut; ++c) {
        config.bus.inboxes["c" + std::to_string(s) + "_" + std::to_string(c)] = inbox;
      }
    }
  }
  ShardedDispatchPlane plane(config);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const core::StreamId id{static_cast<core::SensorId>(s + 1), 0};
    for (std::size_t c = 0; c < kFanOut; ++c) {
      const PlaneConsumerId consumer = plane.add_consumer(
          "c" + std::to_string(s) + "_" + std::to_string(c),
          [](std::uint32_t, const net::Envelope&) {});
      plane.subscribe(consumer, core::StreamPattern::exact(id));
    }
  }

  util::Rng rng(1);
  std::vector<core::DataMessage> messages;
  messages.reserve(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    core::DataMessage msg = make_message(rng, kPayload);
    msg.stream_id = {static_cast<core::SensorId>(s + 1), 0};
    messages.push_back(std::move(msg));
  }

  const auto start = std::chrono::steady_clock::now();
  for (core::SequenceNo seq = 0; seq < kSeqs; ++seq) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      messages[s].sequence = seq;
      plane.inject(messages[s]);
    }
    if ((seq + 1) % kBatchSeqs == 0) plane.run_round();
  }
  plane.run_until_idle();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

  ShardSweepPoint point;
  point.shards = shards;
  std::uint64_t critical_ns = 0;
  for (std::uint32_t i = 0; i < plane.shard_count(); ++i) {
    critical_ns = std::max(critical_ns, plane.busy_ns(i));
  }
  constexpr double kTotalMsgs = static_cast<double>(kStreams) * kSeqs;
  point.critical_msgs_per_sec =
      critical_ns > 0 ? kTotalMsgs / (static_cast<double>(critical_ns) / 1e9) : 0.0;
  point.wall_msgs_per_sec = wall.count() > 0 ? kTotalMsgs / wall.count() : 0.0;
  const net::ShedStats shed = plane.merged_shed_stats();
  point.data_shed = static_cast<double>(shed.data_total());
  point.control_shed = static_cast<double>(shed.control_total());
  point.deliveries = static_cast<double>(plane.merged_dispatch_stats().copies_delivered);
  return point;
}

/// Machine-readable exposition for the acceptance configuration
/// (fan-out 64 × 4 KB) plus the shard scaling sweep: fixed-size
/// workloads, the telemetry snapshot, and one labelled gauge set per
/// shard count, all in a single BENCH_dispatch.json.
void BM_ReportFanOut64x4K(benchmark::State& state) {
  constexpr std::size_t kConsumers = 64;
  constexpr std::size_t kPayload = 4096;
  constexpr std::uint64_t kMessages = 2000;

  // The shard sweep runs first; its points land in the same report so
  // scripts/check_dispatch_report.py reads one file for both gates.
  std::vector<ShardSweepPoint> sweep;
  for (const std::uint32_t shards : g_shard_counts) {
    sweep.push_back(run_shard_sweep_point(shards));
  }

  double msgs_per_sec = 0.0;
  double allocs_per_msg = 0.0;
  double alloc_bytes_per_msg = 0.0;
  double copies_per_msg = 0.0;
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    DispatchRig rig;
    rig.bus.set_metrics(registry);
    for (std::size_t i = 0; i < kConsumers; ++i) {
      rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                             core::StreamPattern::exact({1, 0}));
    }
    util::Rng rng(1);
    core::DataMessage msg = make_message(rng, kPayload);
    msg.stream_id = {1, 0};

    const std::uint64_t allocs_before = registry.snapshot().counter("garnet.bus.payload_allocs");
    const std::uint64_t bytes_before =
        registry.snapshot().counter("garnet.bus.payload_alloc_bytes");
    const std::uint64_t copies_before = registry.snapshot().counter("garnet.bus.payload_copies");
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      rig.dispatch.on_filtered(msg, rig.scheduler.now());
      rig.scheduler.run();
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    const obs::MetricsSnapshot snap = registry.snapshot();
    msgs_per_sec = static_cast<double>(kMessages) / elapsed.count();
    allocs_per_msg =
        static_cast<double>(snap.counter("garnet.bus.payload_allocs") - allocs_before) / kMessages;
    alloc_bytes_per_msg =
        static_cast<double>(snap.counter("garnet.bus.payload_alloc_bytes") - bytes_before) /
        kMessages;
    copies_per_msg =
        static_cast<double>(snap.counter("garnet.bus.payload_copies") - copies_before) / kMessages;

    {
      // One exposition per run: bus counters plus the headline numbers
      // as gauges (the benchmark is pinned to a single iteration).
      registry.gauge("bench.dispatch.fanout").set(static_cast<double>(kConsumers));
      registry.gauge("bench.dispatch.payload_bytes").set(static_cast<double>(kPayload));
      registry.gauge("bench.dispatch.msgs_per_sec").set(msgs_per_sec);
      registry.gauge("bench.dispatch.payload_allocs_per_msg").set(allocs_per_msg);
      registry.gauge("bench.dispatch.payload_alloc_bytes_per_msg").set(alloc_bytes_per_msg);
      registry.gauge("bench.dispatch.payload_copies_per_msg").set(copies_per_msg);
      const double base = sweep.empty() ? 0.0 : sweep.front().critical_msgs_per_sec;
      for (const ShardSweepPoint& point : sweep) {
        const obs::Labels labels{{"shards", std::to_string(point.shards)}};
        registry.gauge("bench.dispatch.shard.msgs_per_sec", labels)
            .set(point.critical_msgs_per_sec);
        registry.gauge("bench.dispatch.shard.wall_msgs_per_sec", labels)
            .set(point.wall_msgs_per_sec);
        const double speedup = base > 0.0 ? point.critical_msgs_per_sec / base : 0.0;
        registry.gauge("bench.dispatch.shard.speedup", labels).set(speedup);
        registry.gauge("bench.dispatch.shard.efficiency", labels)
            .set(point.shards > 0 ? speedup / point.shards : 0.0);
        registry.gauge("bench.dispatch.shard.data_shed", labels).set(point.data_shed);
        registry.gauge("bench.dispatch.shard.control_shed", labels).set(point.control_shed);
        registry.gauge("bench.dispatch.shard.deliveries", labels).set(point.deliveries);
      }
      write_bench_report("dispatch", obs::render_json(registry.snapshot()));
    }
  }
  state.counters["msgs_per_sec"] = msgs_per_sec;
  state.counters["payload_allocs_per_msg"] = allocs_per_msg;
  state.counters["payload_copies_per_msg"] = copies_per_msg;
  if (!sweep.empty()) {
    const double base = sweep.front().critical_msgs_per_sec;
    for (const ShardSweepPoint& point : sweep) {
      state.counters["shard" + std::to_string(point.shards) + "_speedup"] =
          base > 0.0 ? point.critical_msgs_per_sec / base : 0.0;
    }
  }
}
BENCHMARK(BM_ReportFanOut64x4K)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace garnet::bench

int main(int argc, char** argv) {
  // Strip the bench-specific --shards flag before google-benchmark
  // parses argv (it rejects flags it does not know).
  const auto parse_counts = [](const char* list) {
    std::vector<std::uint32_t> counts;
    for (const char* p = list; *p != '\0';) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) break;
      if (v > 0) counts.push_back(static_cast<std::uint32_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    return counts;
  };
  if (const char* env = std::getenv("GARNET_BENCH_SHARDS"); env != nullptr && *env != '\0') {
    if (auto counts = parse_counts(env); !counts.empty()) {
      garnet::bench::g_shard_counts = std::move(counts);
    }
  }
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--shards=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      if (auto counts = parse_counts(argv[i] + std::strlen(kFlag)); !counts.empty()) {
        garnet::bench::g_shard_counts = std::move(counts);
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
