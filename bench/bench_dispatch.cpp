// Experiment E3 — dispatch fan-out scalability, and ablation A1 —
// address-free (pattern) routing vs routing-table churn.
//
// Paper goals (§1): "low performance overhead, scalable design". The
// Dispatching Service is the hot path of the fixed side: every filtered
// message consults the subscription table and posts one envelope per
// matching consumer. The zero-copy payload path makes that fan-out a
// refcount bump per subscriber instead of a wire-image copy, so the
// per-message cost should be dominated by scheduling, not memcpy. The
// fan-out × payload sweep quantifies exactly that; the telemetry
// exposition (BENCH_dispatch.json) pins allocations and copies per
// dispatched message so regressions show up in the perf trajectory.
#include <chrono>

#include "bench/common.hpp"
#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "net/bus.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace garnet::bench {
namespace {

struct DispatchRig {
  sim::Scheduler scheduler;
  net::MessageBus bus{scheduler, {}};
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::DispatchingService dispatch{bus, auth, catalog};
  std::uint64_t sink_count = 0;

  net::Address add_consumer(const std::string& name) {
    return bus.add_endpoint(name, [this](net::Envelope) { ++sink_count; });
  }
};

/// Fan-out to N matching subscribers of one stream.
void BM_FanOut(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < consumers; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact({1, 0}));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();  // drain deliveries
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["copies_per_msg"] = static_cast<double>(consumers);
  state.counters["deliveries"] = static_cast<double>(rig.sink_count);
}
BENCHMARK(BM_FanOut)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->ArgName("consumers");

/// Zero-copy sweep: fan-out N × payload size. One encode per message;
/// every subscriber (and the Orphanage, when unclaimed) shares the same
/// immutable buffer, so throughput should be nearly flat in payload size
/// once fan-out dominates. payload_allocs_per_msg reads the bus's
/// telemetry collector — it must stay at 1.0 regardless of N.
void BM_FanOutPayload(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  const auto payload_bytes = static_cast<std::size_t>(state.range(1));
  obs::MetricsRegistry registry;
  DispatchRig rig;
  rig.bus.set_metrics(registry);
  for (std::size_t i = 0; i < consumers; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact({1, 0}));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, payload_bytes);
  msg.stream_id = {1, 0};

  const std::uint64_t allocs_before = registry.snapshot().counter("garnet.bus.payload_allocs");
  const std::uint64_t copies_before = registry.snapshot().counter("garnet.bus.payload_copies");
  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  const auto iterations = static_cast<double>(state.iterations());
  const obs::MetricsSnapshot snap = registry.snapshot();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    (consumers * payload_bytes)));
  state.counters["payload_allocs_per_msg"] =
      static_cast<double>(snap.counter("garnet.bus.payload_allocs") - allocs_before) / iterations;
  state.counters["payload_copies_per_msg"] =
      static_cast<double>(snap.counter("garnet.bus.payload_copies") - copies_before) / iterations;
}
BENCHMARK(BM_FanOutPayload)
    ->ArgsProduct({{1, 8, 64, 256}, {64, 4096, 65535}})
    ->ArgNames({"consumers", "payload"});

/// Selectivity: N consumers subscribed, but only a fraction match the
/// message's stream. Exact subscriptions make non-matching consumers
/// near-free (hash lookup).
void BM_Selectivity(benchmark::State& state) {
  const std::size_t consumers = 1024;
  const auto matching = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < consumers; ++i) {
    // Matching consumers subscribe to stream {1,0}; the rest to others.
    const core::StreamId target =
        i < matching ? core::StreamId{1, 0}
                     : core::StreamId{static_cast<core::SensorId>(2 + i), 0};
    rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                           core::StreamPattern::exact(target));
  }
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["matching"] = static_cast<double>(matching);
}
BENCHMARK(BM_Selectivity)->Arg(1)->Arg(16)->Arg(256)->Arg(1024)->ArgName("matching");

/// Wildcard subscriptions force a scan; this prices that design choice.
void BM_WildcardScan(benchmark::State& state) {
  const auto wildcards = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  for (std::size_t i = 0; i < wildcards; ++i) {
    // Wildcards on other sensors: scanned but never matching.
    rig.dispatch.subscribe(rig.add_consumer("w" + std::to_string(i)),
                           core::StreamPattern::all_of(static_cast<core::SensorId>(100 + i)));
  }
  rig.dispatch.subscribe(rig.add_consumer("hit"), core::StreamPattern::exact({1, 0}));
  util::Rng rng(1);
  core::DataMessage msg = make_message(rng, 32);
  msg.stream_id = {1, 0};

  for (auto _ : state) {
    rig.dispatch.on_filtered(msg, rig.scheduler.now());
    rig.scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WildcardScan)->Arg(0)->Arg(16)->Arg(256)->Arg(1024)->ArgName("wildcards");

/// Ablation A1 — churn. Garnet's address-free StreamID routing means a
/// consumer joining/leaving touches one table entry; a sensor-addressed
/// scheme would have to update per-sensor forwarding state. We measure
/// subscribe+unsubscribe cost against table size.
void BM_SubscriptionChurn(benchmark::State& state) {
  const auto resident = static_cast<std::size_t>(state.range(0));
  DispatchRig rig;
  const net::Address churner = rig.add_consumer("churner");
  for (std::size_t i = 0; i < resident; ++i) {
    rig.dispatch.subscribe(rig.add_consumer("r" + std::to_string(i)),
                           core::StreamPattern::exact({static_cast<core::SensorId>(i + 2), 0}));
  }
  for (auto _ : state) {
    const core::SubscriptionId id =
        rig.dispatch.subscribe(churner, core::StreamPattern::exact({1, 0}));
    benchmark::DoNotOptimize(id);
    rig.dispatch.unsubscribe(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["resident_subs"] = static_cast<double>(resident);
}
BENCHMARK(BM_SubscriptionChurn)->Arg(0)->Arg(64)->Arg(1024)->Arg(16384)->ArgName("resident");

/// Machine-readable exposition for the acceptance configuration
/// (fan-out 64 × 4 KB): a fixed-size workload timed with the wall clock,
/// plus the telemetry snapshot, so BENCH_dispatch.json records both the
/// throughput and the allocation/copy discipline per dispatched message.
void BM_ReportFanOut64x4K(benchmark::State& state) {
  constexpr std::size_t kConsumers = 64;
  constexpr std::size_t kPayload = 4096;
  constexpr std::uint64_t kMessages = 2000;

  double msgs_per_sec = 0.0;
  double allocs_per_msg = 0.0;
  double alloc_bytes_per_msg = 0.0;
  double copies_per_msg = 0.0;
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    DispatchRig rig;
    rig.bus.set_metrics(registry);
    for (std::size_t i = 0; i < kConsumers; ++i) {
      rig.dispatch.subscribe(rig.add_consumer("c" + std::to_string(i)),
                             core::StreamPattern::exact({1, 0}));
    }
    util::Rng rng(1);
    core::DataMessage msg = make_message(rng, kPayload);
    msg.stream_id = {1, 0};

    const std::uint64_t allocs_before = registry.snapshot().counter("garnet.bus.payload_allocs");
    const std::uint64_t bytes_before =
        registry.snapshot().counter("garnet.bus.payload_alloc_bytes");
    const std::uint64_t copies_before = registry.snapshot().counter("garnet.bus.payload_copies");
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      rig.dispatch.on_filtered(msg, rig.scheduler.now());
      rig.scheduler.run();
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    const obs::MetricsSnapshot snap = registry.snapshot();
    msgs_per_sec = static_cast<double>(kMessages) / elapsed.count();
    allocs_per_msg =
        static_cast<double>(snap.counter("garnet.bus.payload_allocs") - allocs_before) / kMessages;
    alloc_bytes_per_msg =
        static_cast<double>(snap.counter("garnet.bus.payload_alloc_bytes") - bytes_before) /
        kMessages;
    copies_per_msg =
        static_cast<double>(snap.counter("garnet.bus.payload_copies") - copies_before) / kMessages;

    {
      // One exposition per run: bus counters plus the headline numbers
      // as gauges (the benchmark is pinned to a single iteration).
      registry.gauge("bench.dispatch.fanout").set(static_cast<double>(kConsumers));
      registry.gauge("bench.dispatch.payload_bytes").set(static_cast<double>(kPayload));
      registry.gauge("bench.dispatch.msgs_per_sec").set(msgs_per_sec);
      registry.gauge("bench.dispatch.payload_allocs_per_msg").set(allocs_per_msg);
      registry.gauge("bench.dispatch.payload_alloc_bytes_per_msg").set(alloc_bytes_per_msg);
      registry.gauge("bench.dispatch.payload_copies_per_msg").set(copies_per_msg);
      write_bench_report("dispatch", obs::render_json(registry.snapshot()));
    }
  }
  state.counters["msgs_per_sec"] = msgs_per_sec;
  state.counters["payload_allocs_per_msg"] = allocs_per_msg;
  state.counters["payload_copies_per_msg"] = copies_per_msg;
}
BENCHMARK(BM_ReportFanOut64x4K)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
