// Experiment E9 — end-to-end pipeline scalability.
//
// Paper goal (§1): "Low performance overhead, scalable design". Drives
// the complete system — radio ingest, filtering, dispatch, consumer
// delivery — for a fixed span of virtual time at increasing sensor
// counts, and reports wall-clock message throughput of the middleware
// plus the virtual-time delivery latency consumers observe. Expected
// shape: wall-clock cost per delivered message stays near-constant as
// the field grows (the design goal); virtual-time latency is dominated
// by radio + bus hops, independent of scale.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "garnet/report.hpp"
#include "garnet/runtime.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

struct PipelineOutcome {
  std::uint64_t delivered = 0;
  double latency_mean_ms = 0;
  double latency_p99_ms = 0;
  std::uint64_t radio_frames = 0;
  std::string telemetry_json;  ///< Full exposition incl. stage latencies.
};

PipelineOutcome run_pipeline(std::size_t sensors, util::Duration span, std::uint64_t seed) {
  Runtime::Config config;
  const double side = std::max(400.0, std::sqrt(static_cast<double>(sensors)) * 120.0);
  config.field.area = {{0, 0}, {side, side}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.05;
  config.field.radio.edge_loss = 0.25;
  Runtime runtime(config);

  const auto receiver_count = std::max<std::size_t>(4, sensors / 20);
  runtime.deploy_receivers(receiver_count, side / std::sqrt(static_cast<double>(receiver_count)) + 80);

  wireless::SensorField::PopulationSpec spec;
  spec.first_id = 1;
  spec.count = sensors;
  spec.interval_ms = 1000;
  runtime.deploy_population(spec);

  core::Consumer consumer(runtime.bus(), "consumer.firehose");
  runtime.provision(consumer, "firehose");
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(50));

  runtime.start_sensors();
  runtime.run_for(span);

  PipelineOutcome outcome;
  outcome.delivered = consumer.received();
  outcome.latency_mean_ms = consumer.delivery_latency().mean() / 1e6;
  outcome.latency_p99_ms = consumer.delivery_latency().quantile(0.99) / 1e6;
  outcome.radio_frames =
      runtime.telemetry().registry.snapshot().counter("garnet.radio.uplink_frames");
  outcome.telemetry_json = snapshot(runtime).to_json();
  return outcome;
}

void BM_Pipeline(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  PipelineOutcome outcome;
  for (auto _ : state) {
    outcome = run_pipeline(sensors, Duration::seconds(20), /*seed=*/9);
    benchmark::DoNotOptimize(&outcome);
  }
  // items/sec here = delivered messages per wall second of middleware work.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * outcome.delivered));
  state.counters["sensors"] = static_cast<double>(sensors);
  state.counters["delivered_msgs"] = static_cast<double>(outcome.delivered);
  state.counters["delivery_latency_mean_ms"] = outcome.latency_mean_ms;
  state.counters["delivery_latency_p99_ms"] = outcome.latency_p99_ms;
  state.counters["radio_frames"] = static_cast<double>(outcome.radio_frames);
  // One telemetry exposition per field size — carries the per-stage
  // (radio/filter/dispatch/deliver) latency histogram quantiles.
  write_bench_report("end_to_end_sensors_" + std::to_string(sensors), outcome.telemetry_json);
}
BENCHMARK(BM_Pipeline)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->ArgName("sensors")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
