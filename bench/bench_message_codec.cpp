// Experiment E1 — Figure 2 wire format cost.
//
// The paper claims a compact fixed 72-bit header supporting 16.7M
// sensors / 256 streams / 64K sequences / 64K payloads. This bench
// reports encode and decode throughput across payload sizes (8B sensor
// readings up to the 64KB maximum) plus the per-message header overhead,
// quantifying what the fixed format costs the fixed-network side.
#include "bench/common.hpp"
#include "core/stream_update.hpp"

namespace garnet::bench {
namespace {

void BM_Encode(benchmark::State& state) {
  util::Rng rng(1);
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  const core::DataMessage msg = make_message(rng, payload_size);

  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    const util::Bytes wire = core::encode(msg);
    benchmark::DoNotOptimize(wire.data());
    wire_bytes = wire.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire_bytes));
  state.counters["header_overhead_bytes"] =
      static_cast<double>(wire_bytes - payload_size);
}
BENCHMARK(BM_Encode)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65535);

void BM_Decode(benchmark::State& state) {
  util::Rng rng(2);
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  const util::Bytes wire = core::encode(make_message(rng, payload_size));

  for (auto _ : state) {
    const auto decoded = core::decode(wire);
    benchmark::DoNotOptimize(&decoded);
    if (!decoded.ok()) state.SkipWithError("decode failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_Decode)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65535);

void BM_EncodeWithAckExtension(benchmark::State& state) {
  util::Rng rng(3);
  core::DataMessage msg = make_message(rng, 64);
  msg.header.set(core::HeaderFlag::kAckPresent);
  msg.ack_request_id = 7;
  for (auto _ : state) {
    const util::Bytes wire = core::encode(msg);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeWithAckExtension);

void BM_DecodeRejectCorrupt(benchmark::State& state) {
  // Checksum rejection cost: the filter pays this for every corrupt copy.
  util::Rng rng(4);
  util::Bytes wire = core::encode(make_message(rng, 64));
  wire[wire.size() / 2] ^= std::byte{0x01};
  for (auto _ : state) {
    const auto decoded = core::decode(wire);
    benchmark::DoNotOptimize(&decoded);
    if (decoded.ok()) state.SkipWithError("corrupt frame accepted");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeRejectCorrupt);

void BM_RoundTripStreamUpdate(benchmark::State& state) {
  core::StreamUpdateRequest request;
  request.request_id = 1;
  request.target = {1234, 5};
  request.action = core::UpdateAction::kSetIntervalMs;
  request.value = 250;
  for (auto _ : state) {
    const util::Bytes wire = core::encode(request);
    const auto decoded = core::decode_update(wire);
    benchmark::DoNotOptimize(&decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["control_frame_bytes"] =
      static_cast<double>(core::StreamUpdateRequest::wire_size());
}
BENCHMARK(BM_RoundTripStreamUpdate);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
