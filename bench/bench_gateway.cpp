// Gateway fan-out sweep — subscriber count x payload size.
//
// Drives a full gateway (ingest framing -> runtime injection -> dispatch
// -> per-connection outboxes -> writev) over the deterministic loopback
// transport and reports the egress rate, the zero-copy accounting per
// message, and the shed counters. One cell also carries a slow reader
// (write window pinned to zero) so the bounded-outbox shedding path runs
// under pressure. The harshest cell's telemetry snapshot is persisted to
// BENCH_gateway.json; scripts/ci.sh gates on it — zero corrupt
// deliveries on the wire, zero control-frame shed, and the last-value
// cache serving the newest sample.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/wire_types.hpp"
#include "garnet/runtime.hpp"
#include "gw/framing.hpp"
#include "gw/gateway.hpp"
#include "gw/transport.hpp"
#include "obs/export.hpp"
#include "util/shared_bytes.hpp"

namespace garnet::bench {
namespace {

using gw::ConnId;
using gw::Listener;
using util::Duration;

struct GatewayOutcome {
  double messages_offered = 0;
  double frames_delivered = 0;
  double corrupt_deliveries = 0;
  double bytes_egressed = 0;
  double data_sheds = 0;
  double control_sheds = 0;
  double allocs_per_message = 0;
  double copies_per_message = 0;
  double cache_serves_latest = 0;
};

util::Bytes framed(const core::DataMessage& msg) {
  const util::Bytes body = core::encode(msg);
  util::Bytes out(gw::kLengthPrefixBytes);
  gw::put_length_prefix(static_cast<std::uint32_t>(body.size()), out.data());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

util::Bytes line_bytes(std::string_view text) {
  util::Bytes out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) out[i] = static_cast<std::byte>(text[i]);
  return out;
}

/// One full gateway run: `subscribers` fan-out connections plus one
/// frozen reader, `messages` ingested frames of `payload_bytes` each.
GatewayOutcome run_gateway(int subscribers, std::size_t payload_bytes, int messages,
                           std::string* json_out = nullptr) {
  Runtime runtime;
  gw::LoopbackTransport transport;
  gw::GatewayConfig config;
  config.outbox_frames = 16;  // < messages, so the frozen reader must shed
  gw::Gateway gateway(runtime, transport, config);
  gateway.step(Duration::millis(20));

  const ConnId producer = transport.connect(Listener::kIngest);
  std::vector<ConnId> subs;
  for (int i = 0; i < subscribers; ++i) {
    const ConnId conn = transport.connect(Listener::kStream);
    transport.peer_send(conn, line_bytes("SUB 1/*\n"));
    subs.push_back(conn);
  }
  // The frozen reader subscribes like everyone else but its write
  // window never opens: every data frame beyond the outbox bound must
  // be shed for it, and only for it.
  const ConnId frozen = transport.connect(Listener::kStream);
  transport.peer_send(frozen, line_bytes("SUB 1/*\n"));
  gateway.step(Duration::millis(10));
  transport.set_write_window(frozen, 0);
  // Drain the "OK SUB" acks: they are line text, not length-prefixed
  // frames, and everything after them on the wire must frame exactly.
  for (const ConnId conn : subs) (void)transport.peer_take(conn);

  util::Rng rng(0x9A7E);
  util::Bytes wire;
  for (int seq = 0; seq < messages; ++seq) {
    core::DataMessage msg;
    msg.stream_id = {1, 0};
    msg.sequence = static_cast<core::SequenceNo>(seq);
    msg.payload = random_payload(rng, payload_bytes);
    const util::Bytes one = framed(msg);
    wire.insert(wire.end(), one.begin(), one.end());
  }

  const util::PayloadStats before = util::payload_stats();
  transport.peer_send(producer, wire);
  GatewayOutcome outcome;
  outcome.messages_offered = messages;
  for (int spin = 0; spin < messages + 50; ++spin) {
    gateway.step(Duration::millis(2));
    if (gateway.stats().egress_frames >=
        static_cast<std::uint64_t>(messages) * static_cast<std::uint64_t>(subscribers)) {
      break;
    }
  }
  const util::PayloadStats after = util::payload_stats();

  // The sim bus jitters per-envelope latency, so deliveries reach the
  // gateway out of order; "latest" in the cache means latest *arrival*.
  // Every subscriber sees the same arrival order, so the tail of any
  // subscriber's stream is the sequence the cache must be holding.
  core::SequenceNo newest_arrival = 0;
  for (const ConnId conn : subs) {
    gw::FrameAssembler assembler;
    const util::Bytes received = transport.peer_take(conn);
    if (!assembler.push(received)) {
      outcome.corrupt_deliveries += 1;
      continue;
    }
    // Decode every delivery frame with the full checksum walk —
    // corruption anywhere on the egress path shows up here.
    while (const auto frame = assembler.frame()) {
      const auto decoded = core::decode_delivery(*frame);
      if (decoded.ok()) {
        newest_arrival = decoded.value().message.sequence;
      } else {
        outcome.corrupt_deliveries += 1;
      }
      outcome.frames_delivered += 1;
      assembler.pop();
    }
    if (assembler.poisoned() || assembler.buffered() > 0) outcome.corrupt_deliveries += 1;
  }
  outcome.bytes_egressed = static_cast<double>(gateway.stats().egress_bytes);
  outcome.data_sheds = static_cast<double>(gateway.stats().shed.data_total());
  outcome.control_sheds = static_cast<double>(gateway.stats().shed.control_total());
  if (messages > 0) {
    outcome.allocs_per_message =
        static_cast<double>(after.allocations - before.allocations) / messages;
    outcome.copies_per_message = static_cast<double>(after.copies - before.copies) / messages;
  }

  // The cache must answer with the newest sequence over the wire.
  const ConnId reader = transport.connect(Listener::kCache);
  gateway.step(Duration::millis(5));
  transport.peer_send(reader, line_bytes("GET 1/0\n"));
  gateway.step(Duration::millis(5));
  const util::Bytes reply = transport.peer_take(reader);
  const std::string expect = "VALUE 1/0 " + std::to_string(newest_arrival) + " ";
  const std::string got(reinterpret_cast<const char*>(reply.data()), reply.size());
  outcome.cache_serves_latest = got.rfind(expect, 0) == 0 ? 1 : 0;

  if (json_out != nullptr) {
    obs::MetricsRegistry& registry = runtime.telemetry().registry;
    registry.add_collector([&outcome](obs::SnapshotBuilder& out) {
      out.gauge("bench.gateway.messages_offered", outcome.messages_offered);
      out.gauge("bench.gateway.frames_delivered", outcome.frames_delivered);
      out.gauge("bench.gateway.corrupt_deliveries", outcome.corrupt_deliveries);
      out.gauge("bench.gateway.data_sheds", outcome.data_sheds);
      out.gauge("bench.gateway.allocs_per_message", outcome.allocs_per_message);
      out.gauge("bench.gateway.copies_per_message", outcome.copies_per_message);
      out.gauge("bench.gateway.cache_serves_latest", outcome.cache_serves_latest);
    });
    *json_out = obs::render_json(registry.snapshot());
  }
  return outcome;
}

/// Args: fan-out subscriber count; payload bytes per message.
void BM_GatewayFanOut(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  const auto payload_bytes = static_cast<std::size_t>(state.range(1));
  constexpr int kMessages = 64;

  GatewayOutcome outcome;
  for (auto _ : state) {
    outcome = run_gateway(subscribers, payload_bytes, kMessages);
    benchmark::DoNotOptimize(&outcome);
  }
  state.SetItemsProcessed(state.iterations() * kMessages * subscribers);
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(outcome.bytes_egressed));
  state.counters["frames_delivered"] = outcome.frames_delivered;
  state.counters["corrupt"] = outcome.corrupt_deliveries;
  state.counters["data_sheds"] = outcome.data_sheds;
  state.counters["control_sheds"] = outcome.control_sheds;
  state.counters["allocs_per_msg"] = outcome.allocs_per_message;
  state.counters["copies_per_msg"] = outcome.copies_per_message;
  state.counters["cache_latest"] = outcome.cache_serves_latest;

  // Machine-readable exposition for the harshest cell: widest fan-out,
  // largest payload. scripts/ci.sh gates on it.
  if (subscribers == 32 && payload_bytes == 32768) {
    std::string json;
    run_gateway(subscribers, payload_bytes, kMessages, &json);
    write_bench_report("gateway", json);
  }
}
BENCHMARK(BM_GatewayFanOut)
    ->ArgsProduct({{1, 8, 32}, {16, 1024, 32768}})
    ->ArgNames({"subs", "payload"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
