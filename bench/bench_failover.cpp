// Ablation A3 — replication mode and watchdog cadence for the Filtering
// Service (paper §3's presumed "service-level ... replication ... for
// efficiency, data-integrity, and fault-tolerance").
//
// One crash is injected mid-run. Swept: hot vs cold standby and the
// heartbeat interval. Reported: the detection window (virtual ms), the
// frames lost while headless, duplicate deliveries leaked after
// promotion (cold standby's data-integrity cost), and the steady-state
// ingest throughput (hot standby's 2x processing cost).
#include <benchmark/benchmark.h>

#include <set>

#include "garnet/failover.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace garnet::bench {
namespace {

using util::Duration;
using util::SimTime;

wireless::ReceptionReport make_report(core::StreamId id, core::SequenceNo seq,
                                      wireless::ReceiverId rx) {
  core::DataMessage msg;
  msg.stream_id = id;
  msg.sequence = seq;
  msg.payload = util::Bytes(16);
  return {rx, -40.0, SimTime{}, core::encode(msg)};
}

struct CrashOutcome {
  double detection_ms = 0;
  double lost_in_window = 0;
  double duplicates_leaked = 0;
};

/// Drives 20 virtual seconds of 100Hz duplicated traffic with a crash at
/// t=10s; every frame's second radio copy arrives 2s after the first
/// (a slow relay path), so the copies of recently-delivered frames
/// straddle the outage and probe the promoted replica's dedup state.
CrashOutcome run_crash(FilteringFailover::Mode mode, std::int64_t heartbeat_ms,
                       std::uint64_t seed) {
  sim::Scheduler scheduler;
  obs::MetricsRegistry registry;
  FilteringFailover::Config config;
  config.mode = mode;
  config.heartbeat_interval = Duration::millis(heartbeat_ms);
  config.miss_threshold = 3;
  FilteringFailover failover(scheduler, config);
  failover.set_metrics(registry);

  std::set<std::pair<std::uint32_t, core::SequenceNo>> delivered;
  std::uint64_t duplicates = 0;
  failover.set_message_sink([&](const core::DataMessage& m, SimTime) {
    if (!delivered.insert({m.stream_id.packed(), m.sequence}).second) ++duplicates;
  });

  util::Rng rng(seed);
  const core::StreamId stream{1, 0};
  for (int i = 0; i < 2000; ++i) {  // 100Hz for 20s
    const auto seq = static_cast<core::SequenceNo>(i);
    const SimTime at = SimTime{} + Duration::millis(10 * i);
    scheduler.schedule_at(at, [&failover, stream, seq] {
      failover.ingest(make_report(stream, seq, 1));
    });
    scheduler.schedule_at(at + Duration::seconds(2), [&failover, stream, seq] {
      failover.ingest(make_report(stream, seq, 2));
    });
  }
  scheduler.schedule_at(SimTime{} + Duration::seconds(10),
                        [&failover] { failover.kill_primary(); });
  // Bounded run: the watchdog re-arms forever, so the queue never drains.
  scheduler.run_until(SimTime{} + Duration::seconds(25));

  CrashOutcome outcome;
  const obs::MetricsSnapshot snap = registry.snapshot();
  outcome.detection_ms = snap.gauge("garnet.failover.detection_latency_ns") / 1e6;
  outcome.lost_in_window = static_cast<double>(snap.counter("garnet.failover.lost_in_window"));
  outcome.duplicates_leaked = static_cast<double>(duplicates);
  return outcome;
}

/// Args: mode (0=cold, 1=hot), heartbeat interval ms.
void BM_CrashRecovery(benchmark::State& state) {
  const auto mode =
      state.range(0) != 0 ? FilteringFailover::Mode::kHot : FilteringFailover::Mode::kCold;
  const auto heartbeat_ms = state.range(1);

  CrashOutcome outcome;
  for (auto _ : state) {
    outcome = run_crash(mode, heartbeat_ms, 7);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["detection_ms"] = outcome.detection_ms;
  state.counters["frames_lost_in_window"] = outcome.lost_in_window;
  state.counters["duplicates_leaked"] = outcome.duplicates_leaked;
}
BENCHMARK(BM_CrashRecovery)
    ->ArgsProduct({{0, 1}, {20, 100, 500}})
    ->ArgNames({"hot", "heartbeat_ms"})
    ->Unit(benchmark::kMillisecond);

/// Steady-state ingest cost: hot standby processes everything twice.
void BM_IngestThroughput(benchmark::State& state) {
  const auto mode =
      state.range(0) != 0 ? FilteringFailover::Mode::kHot : FilteringFailover::Mode::kCold;
  sim::Scheduler scheduler;
  FilteringFailover::Config config;
  config.mode = mode;
  FilteringFailover failover(scheduler, config);
  failover.set_message_sink([](const core::DataMessage&, SimTime) {});

  core::SequenceNo seq = 0;
  const core::StreamId stream{1, 0};
  for (auto _ : state) {
    failover.ingest(make_report(stream, seq++, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IngestThroughput)->Arg(0)->Arg(1)->ArgName("hot");

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
