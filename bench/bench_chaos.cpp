// Experiment A4 — chaos tolerance of the RPC control plane.
//
// Sweeps the bus-level drop probability (0%, 5%, 10%, 20%) over a fixed
// RPC workload and reports what the retry/backoff layer pays to keep the
// control plane correct: retries per call, duplicate requests absorbed
// by the callee's at-most-once cache, and the residual exhaustion rate.
// The fault plan is seeded, so every row of the table is replayable.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "net/rpc.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

struct ChaosOutcome {
  double succeeded = 0;
  double retries_per_call = 0;
  double deduped = 0;
  double exhausted = 0;
  double faults_injected = 0;
};

constexpr std::uint32_t kCalls = 200;

ChaosOutcome run_workload(double drop_percent, std::uint32_t retries, std::uint64_t seed,
                          obs::MetricsRegistry* registry = nullptr) {
  sim::Scheduler scheduler;
  net::MessageBus::Config config;
  config.faults.seed = seed;
  config.faults.global.drop = drop_percent / 100.0;
  net::MessageBus bus(scheduler, config);
  if (registry != nullptr) bus.set_metrics(*registry);

  net::RpcNode server(bus, "server");
  net::RpcNode client(bus, "client");
  server.expose(1, [](net::Address, util::BytesView args) -> net::RpcResult {
    return util::Bytes(args.begin(), args.end());
  });

  net::CallOptions options;
  options.timeout = Duration::millis(5);
  options.retries = retries;
  options.backoff = Duration::millis(1);
  options.idempotent = true;

  std::uint32_t succeeded = 0;
  for (std::uint32_t i = 0; i < kCalls; ++i) {
    client.call(server.address(), 1, {}, options, [&](net::RpcResult result) {
      if (result.ok()) ++succeeded;
    });
  }
  scheduler.run();

  const net::RpcStats& rpc = bus.rpc_stats();
  ChaosOutcome outcome;
  outcome.succeeded = succeeded;
  outcome.retries_per_call = static_cast<double>(rpc.retries) / kCalls;
  outcome.deduped = static_cast<double>(rpc.deduped);
  outcome.exhausted = static_cast<double>(rpc.exhausted);
  if (bus.fault_injector() != nullptr) {
    outcome.faults_injected = static_cast<double>(bus.fault_injector()->counters().total());
  }
  return outcome;
}

/// Args: drop percentage, retry budget.
void BM_RpcUnderDrop(benchmark::State& state) {
  const auto drop_percent = static_cast<double>(state.range(0));
  const auto retries = static_cast<std::uint32_t>(state.range(1));

  ChaosOutcome outcome;
  for (auto _ : state) {
    outcome = run_workload(drop_percent, retries, /*seed=*/0xC4A05u);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["success_rate"] = outcome.succeeded / kCalls;
  state.counters["retries_per_call"] = outcome.retries_per_call;
  state.counters["requests_deduped"] = outcome.deduped;
  state.counters["calls_exhausted"] = outcome.exhausted;
  state.counters["faults_injected"] = outcome.faults_injected;

  // One machine-readable exposition for the harshest configuration.
  if (drop_percent == 20 && retries == 8) {
    obs::MetricsRegistry registry;
    run_workload(drop_percent, retries, /*seed=*/0xC4A05u, &registry);
    write_bench_report("chaos", obs::render_json(registry.snapshot()));
  }
}
BENCHMARK(BM_RpcUnderDrop)
    ->ArgsProduct({{0, 5, 10, 20}, {0, 2, 8}})
    ->ArgNames({"drop_pct", "retries"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
