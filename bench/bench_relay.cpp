// Experiment E11 (extension) — multi-hop relaying, the paper's §8
// future-work item: "Exploration of the implications of supporting
// multi-hop routing within the sensor network ... Initial support has
// been provided by tagging the message header to reflect multi-hop and
// relayed data messages."
//
// A sparse receiver deployment leaves coverage holes; mobile sensors
// roaming into them lose frames. Relay-capable peers overhear and
// re-transmit (one extra hop, kRelayed-tagged). Sweeps the fraction of
// relay-capable sensors and reports: delivery fraction (unique messages
// reaching consumers / messages transmitted), radio energy per delivered
// message, and relayed-copy counts. Expected shape: delivery fraction
// rises with relay density; energy per delivered message reflects the
// relaying tax; location inference stays sound because relayed copies
// are excluded from evidence.
#include <benchmark/benchmark.h>

#include "garnet/runtime.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

struct RelayOutcome {
  double delivery_fraction = 0;
  double energy_per_delivered_mj = 0;
  double relayed_copies = 0;
  double frames_relayed = 0;
};

constexpr double kInitialBattery = 100.0;

RelayOutcome run_scenario(std::size_t sensors, std::size_t relays, std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {1000, 1000}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.02;
  config.field.radio.edge_loss = 0.2;
  Runtime runtime(config);
  // One receiver in the corner: most of the field is a coverage hole.
  runtime.field().medium().add_receiver({1, {200, 200}, 320});
  runtime.location().set_receiver_layout(runtime.field().medium().receivers());

  // Plain sensors first, then relay-capable ones (ids continue).
  wireless::SensorField::PopulationSpec plain;
  plain.first_id = 1;
  plain.count = sensors - relays;
  plain.interval_ms = 500;
  runtime.deploy_population(plain);

  wireless::SensorField::PopulationSpec relaying = plain;
  relaying.first_id = static_cast<core::SensorId>(1 + sensors - relays);
  relaying.count = relays;
  relaying.capabilities.relay_capable = true;
  if (relays > 0) runtime.deploy_population(relaying);

  core::Consumer consumer(runtime.bus(), "consumer.collector");
  runtime.provision(consumer, "collector");
  consumer.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(50));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(60));

  std::uint64_t transmitted = 0;
  std::uint64_t relayed = 0;
  double energy = 0;
  for (std::size_t i = 0; i < runtime.field().sensor_count(); ++i) {
    const wireless::SensorNode& node = runtime.field().sensor_at(i);
    transmitted += node.messages_sent();
    relayed += node.frames_relayed();
    energy += kInitialBattery - node.battery_joules();
  }
  // Battery default is effectively infinite; recompute energy from bytes.
  energy = static_cast<double>(runtime.telemetry().registry.snapshot().counter(
               "garnet.radio.uplink_bytes_sent")) *
           50e-6;

  RelayOutcome outcome;
  const std::uint64_t delivered = consumer.received();
  outcome.delivery_fraction =
      transmitted ? static_cast<double>(delivered) / static_cast<double>(transmitted) : 0;
  outcome.energy_per_delivered_mj =
      delivered ? energy * 1e3 / static_cast<double>(delivered) : 0;
  outcome.relayed_copies = static_cast<double>(runtime.filtering().stats().relayed_copies);
  outcome.frames_relayed = static_cast<double>(relayed);
  return outcome;
}

/// Args: relay-capable sensors out of 24.
void BM_RelayCoverage(benchmark::State& state) {
  const auto relays = static_cast<std::size_t>(state.range(0));
  RelayOutcome outcome;
  for (auto _ : state) {
    outcome = run_scenario(/*sensors=*/24, relays, /*seed=*/13);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["relays"] = static_cast<double>(relays);
  state.counters["delivery_fraction"] = outcome.delivery_fraction;
  state.counters["energy_per_delivered_mJ"] = outcome.energy_per_delivered_mj;
  state.counters["frames_relayed"] = outcome.frames_relayed;
  state.counters["relayed_copies_at_fixed_net"] = outcome.relayed_copies;
}
BENCHMARK(BM_RelayCoverage)
    ->Arg(0)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->ArgName("relays")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
