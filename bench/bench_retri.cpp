// Experiment E7 — consistent StreamIDs vs RETRI ephemeral identifiers
// (paper §7, contrasting Elson & Estrin's RETRI).
//
// RETRI shrinks per-message identifier bits by drawing a small random id
// per transaction; Garnet insists on the 32-bit consistent StreamID (+16
// sequence) because its whole fixed side keys on it. The trade measured
// here: identifier bits carried per message (energy proxy) versus the
// probability that two concurrent transactions collide and the fixed side
// misattributes data. Expected shape: RETRI's header saving is real and
// constant, but its misattribution rate grows with transaction density
// while Garnet's stays identically zero — matching the paper's argument
// that "the ephemeral nature of the RETRI identifier renders their
// technique inappropriate" for stream-keyed middleware.
#include <benchmark/benchmark.h>

#include "core/message.hpp"
#include "core/retri.hpp"
#include "util/rng.hpp"

namespace garnet::bench {
namespace {

/// Garnet identifier cost per message: 32-bit StreamID + 16-bit sequence.
constexpr double kGarnetIdBits = 48.0;
/// Messages exchanged per transaction (RETRI amortises id setup).
constexpr std::size_t kMessagesPerTransaction = 8;

struct RetriOutcome {
  double id_bits_per_message = 0;
  double misattribution_rate = 0;  ///< Fraction of transactions tainted.
  double analytic_rate = 0;
};

/// Simulates `transactions` RETRI transactions with `concurrent` active
/// at any time; a collision taints the transaction (its messages merge
/// with another stream at the receiver).
RetriOutcome run_retri(unsigned id_bits, std::size_t concurrent, std::size_t transactions,
                       std::uint64_t seed) {
  core::RetriAllocator alloc(id_bits, util::Rng(seed));
  util::Rng rng(seed ^ 0x9E37);

  // Keep `concurrent` transactions open; each new begin() may collide.
  std::vector<std::uint32_t> active;
  active.reserve(concurrent);
  std::uint64_t tainted = 0;
  for (std::size_t t = 0; t < transactions; ++t) {
    if (active.size() >= concurrent) {
      const std::size_t victim = rng.below(active.size());
      alloc.end(active[victim]);
      active[victim] = active.back();
      active.pop_back();
    }
    const auto collisions_before = alloc.stats().collisions;
    active.push_back(alloc.begin());
    if (alloc.stats().collisions > collisions_before) ++tainted;
  }

  RetriOutcome outcome;
  outcome.id_bits_per_message = static_cast<double>(id_bits);
  outcome.misattribution_rate =
      static_cast<double>(tainted) / static_cast<double>(transactions);
  outcome.analytic_rate =
      core::RetriAllocator::expected_collision_probability(id_bits, concurrent - 1);
  return outcome;
}

/// Args: RETRI id bits, concurrent transaction density.
void BM_RetriIdentifiers(benchmark::State& state) {
  const auto id_bits = static_cast<unsigned>(state.range(0));
  const auto concurrent = static_cast<std::size_t>(state.range(1));

  RetriOutcome outcome;
  for (auto _ : state) {
    outcome = run_retri(id_bits, concurrent, /*transactions=*/100'000, /*seed=*/5);
    benchmark::DoNotOptimize(&outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 100'000));
  state.counters["id_bits_per_msg"] = outcome.id_bits_per_message;
  state.counters["bits_saved_vs_garnet"] = kGarnetIdBits - outcome.id_bits_per_message;
  state.counters["misattribution_rate"] = outcome.misattribution_rate;
  state.counters["analytic_rate"] = outcome.analytic_rate;
}
BENCHMARK(BM_RetriIdentifiers)
    ->ArgsProduct({{4, 8, 12, 16}, {4, 16, 64, 256}})
    ->ArgNames({"id_bits", "concurrent"});

/// Garnet's side of the table: consistent ids never misattribute, at a
/// fixed 48-bit identifier cost; this also prices the id handling itself.
void BM_GarnetIdentifiers(benchmark::State& state) {
  const auto concurrent = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  // Distinct StreamIDs by construction: collision probability is zero.
  std::vector<core::StreamId> streams;
  streams.reserve(concurrent);
  for (std::size_t i = 0; i < concurrent; ++i) {
    streams.push_back({static_cast<core::SensorId>(i + 1), 0});
  }

  std::uint64_t collisions = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < 1000; ++i) {
      const core::StreamId a = streams[rng.below(concurrent)];
      const core::StreamId b = streams[rng.below(concurrent)];
      benchmark::DoNotOptimize(a.packed());
      if (a == b && &a != &b) {
        // Same stream chosen twice is *correct* attribution, not a
        // collision; counted only to keep the optimiser honest.
        benchmark::DoNotOptimize(collisions);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 1000));
  state.counters["id_bits_per_msg"] = kGarnetIdBits;
  state.counters["misattribution_rate"] = 0.0;
  state.counters["messages_per_transaction"] =
      static_cast<double>(kMessagesPerTransaction);
}
BENCHMARK(BM_GarnetIdentifiers)->Arg(4)->Arg(64)->Arg(256)->ArgName("concurrent");

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
