// Experiment E5 — Super-Coordinator prediction reduces actuation latency.
//
// Paper §6: from "nearly correct" global consumer state the coordinator
// can "predictively anticipate changes and invoke the services of the
// resource manager, reducing the effect of latencies arising from
// message-handling"; §6.1 motivates this with a water-course scenario.
//
// Setup: a flood-watch consumer cycles calm -> rising -> flood; on
// entering "flood" it asks its sensor for a faster sampling rate. The
// reactive configuration pays the Resource Manager's deliberation delay
// on every request; the predictive configuration trains the coordinator
// so the request is pre-armed while the consumer is still in "rising".
// Reported counters: mean/p95 admission latency (virtual microseconds)
// and pre-arm hit rate. Expected shape: predictive latency collapses to
// bus latency only once the transition model passes its observation
// threshold; reactive stays at deliberation cost.
#include <benchmark/benchmark.h>

#include "garnet/runtime.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

constexpr std::uint32_t kCalm = 1;
constexpr std::uint32_t kRising = 2;
constexpr std::uint32_t kFlood = 3;

struct Latencies {
  double mean_us = 0;
  double p95_us = 0;
  double prearm_hit_rate = 0;
};

Latencies run_scenario(bool predictive, std::size_t cycles, util::Duration deliberation,
                       std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  config.resource.evaluation_delay = deliberation;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 400);
  runtime.deploy_transmitters(4, 400);

  wireless::SensorNode::Config sensor_config;
  sensor_config.id = 1;
  sensor_config.capabilities.receive_capable = true;
  wireless::StreamSpec spec;
  spec.interval_ms = 500;
  spec.constraints = {.min_interval_ms = 50, .max_interval_ms = 60000, .max_payload = 64};
  sensor_config.streams.push_back(spec);
  runtime
      .deploy_sensor(std::move(sensor_config),
                     std::make_unique<sim::StaticMobility>(sim::Vec2{200, 200}))
      .start();

  core::Consumer consumer(runtime.bus(), "consumer.flood-watch");
  runtime.provision(consumer, "flood-watch");
  if (predictive) {
    runtime.coordinator().add_rule(
        {"flood-watch", kFlood, {1, 0}, core::UpdateAction::kSetIntervalMs, 50});
  }

  util::Quantiles admission_latency;
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    consumer.report_state(kCalm);
    runtime.run_for(Duration::seconds(5));
    consumer.report_state(kRising);
    runtime.run_for(Duration::seconds(5));
    consumer.report_state(kFlood);
    runtime.run_for(Duration::millis(10));  // state report reaches coordinator

    const util::SimTime asked_at = runtime.scheduler().now();
    bool decided = false;
    consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 50,
                            [&](std::uint32_t, core::Admission, std::uint32_t) {
                              admission_latency.add(runtime.scheduler().now() - asked_at);
                              decided = true;
                            });
    runtime.run_for(Duration::seconds(5));
    if (!decided) admission_latency.add(Duration::seconds(5));

    // Back off: restore the slow rate so cycles are comparable.
    consumer.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 500, {});
    runtime.run_for(Duration::seconds(5));
  }

  Latencies out;
  out.mean_us = admission_latency.mean() / 1e3;
  out.p95_us = admission_latency.quantile(0.95) / 1e3;
  const auto& rs = runtime.resource().stats();
  out.prearm_hit_rate =
      rs.evaluated ? static_cast<double>(rs.prearm_hits) / static_cast<double>(rs.evaluated) : 0;
  return out;
}

/// Args: predictive (0/1), Resource Manager deliberation delay (ms).
void BM_ActuationAdmissionLatency(benchmark::State& state) {
  const bool predictive = state.range(0) != 0;
  const auto deliberation = Duration::millis(state.range(1));

  Latencies latencies;
  for (auto _ : state) {
    latencies = run_scenario(predictive, /*cycles=*/12, deliberation, /*seed=*/3);
    benchmark::DoNotOptimize(&latencies);
  }
  state.counters["admission_mean_us"] = latencies.mean_us;
  state.counters["admission_p95_us"] = latencies.p95_us;
  state.counters["prearm_hit_rate"] = latencies.prearm_hit_rate;
}
BENCHMARK(BM_ActuationAdmissionLatency)
    ->ArgsProduct({{0, 1}, {2, 5, 20, 50}})
    ->ArgNames({"predictive", "deliberate_ms"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
