// Experiment E2 — duplicate elimination under receiver overlap, and
// ablation A2 — reorder-buffer depth vs in-order delivery.
//
// Paper claim (§4.2): overlapping receivers "improve data reception but
// cause potential duplication of data messages"; the Filtering Service
// "reconstructs the data streams by eliminating duplicate data messages".
// Sweeps the overlap factor (mean receivers hearing each frame) and the
// per-copy loss rate; reports filter throughput (wall-clock) plus the
// duplication ratio in and out. The expected shape: dup ratio in grows
// linearly with overlap, dup ratio out stays 0, and throughput degrades
// only mildly with overlap.
#include <algorithm>

#include "bench/common.hpp"
#include "core/filtering.hpp"
#include "sim/scheduler.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

/// Pre-builds a deterministic arrival schedule with the given mean
/// overlap (copies per frame) and loss rate.
std::vector<wireless::ReceptionReport> make_schedule(std::size_t messages, double overlap,
                                                     double loss, std::uint64_t seed,
                                                     std::size_t streams = 16) {
  util::Rng rng(seed);
  std::vector<wireless::ReceptionReport> schedule;
  schedule.reserve(static_cast<std::size_t>(static_cast<double>(messages) * overlap) + 16);

  std::vector<core::SequenceNo> next_seq(streams, 0);
  for (std::size_t i = 0; i < messages; ++i) {
    const auto stream = static_cast<core::SensorId>(rng.below(streams) + 1);
    core::DataMessage msg;
    msg.stream_id = {stream, 0};
    msg.sequence = next_seq[stream - 1]++;
    msg.payload = random_payload(rng, 24);
    const util::Bytes wire = core::encode(msg);

    // Number of receivers hearing this frame ~ overlap on average.
    const auto base = static_cast<std::size_t>(overlap);
    const std::size_t copies = base + (rng.chance(overlap - static_cast<double>(base)) ? 1 : 0);
    for (std::size_t c = 0; c < std::max<std::size_t>(copies, 1); ++c) {
      if (rng.chance(loss)) continue;
      schedule.push_back(wireless::ReceptionReport{static_cast<wireless::ReceiverId>(c + 1),
                                                   -40.0 - rng.uniform() * 30.0,
                                                   {},
                                                   wire});
    }
  }
  // Local shuffle models radio jitter (bounded displacement).
  for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
    const std::size_t j =
        i + rng.below(std::min<std::uint64_t>(6, schedule.size() - i));
    std::swap(schedule[i], schedule[j]);
  }
  return schedule;
}

/// Args: overlap x10 (10 = no overlap), loss percent.
void BM_FilterDedup(benchmark::State& state) {
  const double overlap = static_cast<double>(state.range(0)) / 10.0;
  const double loss = static_cast<double>(state.range(1)) / 100.0;
  const auto schedule = make_schedule(20'000, overlap, loss, 99);

  std::uint64_t out = 0;
  std::uint64_t dups = 0;
  std::uint64_t copies = 0;
  for (auto _ : state) {
    sim::Scheduler scheduler;
    core::FilteringService filter(scheduler, {});
    std::uint64_t delivered = 0;
    filter.set_message_sink([&](const core::DataMessage&, util::SimTime) { ++delivered; });
    for (const auto& report : schedule) filter.ingest(report);
    benchmark::DoNotOptimize(delivered);
    out = delivered;
    dups = filter.stats().duplicates_dropped;
    copies = filter.stats().copies_in;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * schedule.size()));
  state.counters["copies_in"] = static_cast<double>(copies);
  state.counters["unique_out"] = static_cast<double>(out);
  state.counters["dup_ratio_in"] =
      out > 0 ? static_cast<double>(copies) / static_cast<double>(out) : 0.0;
  state.counters["dups_removed"] = static_cast<double>(dups);
}
BENCHMARK(BM_FilterDedup)
    ->ArgsProduct({{10, 20, 40, 80}, {0, 15, 30}})
    ->ArgNames({"overlap_x10", "loss_pct"});

/// Ablation A2: reorder-buffer depth vs in-order delivery fraction under
/// jittered arrivals. Depth 0 forwards in arrival order; deeper buffers
/// restore sequence order at the cost of latency and memory.
void BM_FilterReorderDepth(benchmark::State& state) {
  const auto depth = static_cast<std::uint16_t>(state.range(0));
  const auto schedule = make_schedule(20'000, 2.0, 0.05, 7, /*streams=*/4);

  double in_order_fraction = 0;
  for (auto _ : state) {
    sim::Scheduler scheduler;
    core::FilteringService::Config config;
    config.reorder_depth = depth;
    config.reorder_timeout = Duration::millis(10);
    core::FilteringService filter(scheduler, config);

    std::vector<core::SequenceNo> last_seq(5, 0xFFFF);
    std::uint64_t in_order = 0;
    std::uint64_t total = 0;
    filter.set_message_sink([&](const core::DataMessage& msg, util::SimTime) {
      ++total;
      const auto idx = msg.stream_id.sensor;
      if (static_cast<core::SequenceNo>(last_seq[idx] + 1) == msg.sequence) ++in_order;
      last_seq[idx] = msg.sequence;
    });
    // Arrivals spaced in virtual time so gap timers interleave with
    // traffic instead of firing between every pair of copies.
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      scheduler.schedule_at(util::SimTime{} + Duration::micros(200 * static_cast<std::int64_t>(i)),
                            [&filter, &schedule, i] { filter.ingest(schedule[i]); });
    }
    scheduler.run();
    in_order_fraction = total > 0 ? static_cast<double>(in_order) / static_cast<double>(total) : 0;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * schedule.size()));
  state.counters["in_order_fraction"] = in_order_fraction;
}
BENCHMARK(BM_FilterReorderDepth)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->ArgName("depth");

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
