// Experiment E6 — stream sharing vs per-consumer coupling (the Fjords
// comparison, paper §7: sensor proxies "permit a set of queries to
// operate over the same sensor stream, and show that the sharing resulted
// in significant improvements").
//
// Two architectures deliver the same workload — N consumers all wanting
// every sample from a field of sensors:
//
//   garnet  — each sensor transmits each sample ONCE over the radio; the
//             Dispatching Service fans out copies on the fixed network.
//   coupled — the CORIE/close-coupling strawman: every consumer is served
//             by its own dedicated sensor stream, so each sample is
//             transmitted N times over the radio.
//
// Radio transmission is the scarce, battery-funded resource; fixed-network
// copies are cheap. Reported counters: radio frames and radio bytes per
// delivered sample, fixed-net envelopes per delivered sample, and sensor
// energy spent. Expected shape: garnet's radio cost is flat in N, the
// coupled baseline's grows linearly, crossing over immediately at N=2.
#include <benchmark/benchmark.h>

#include "garnet/runtime.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

struct SharingOutcome {
  double radio_frames_per_delivery = 0;
  double radio_bytes_per_delivery = 0;
  double fixed_msgs_per_delivery = 0;
  double energy_joules = 0;
};

constexpr std::size_t kSensors = 4;
constexpr double kInitialBattery = 50.0;

Runtime::Config field_config(std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  return config;
}

void deploy_sensors(Runtime& runtime, std::size_t streams_per_sensor) {
  for (core::SensorId id = 1; id <= kSensors; ++id) {
    wireless::SensorNode::Config config;
    config.id = id;
    config.battery_joules = kInitialBattery;
    // One internal stream per logical subscription the sensor must feed.
    for (std::size_t s = 0; s < streams_per_sensor; ++s) {
      wireless::StreamSpec spec;
      spec.id = static_cast<core::InternalStreamId>(s);
      spec.interval_ms = 200;
      config.streams.push_back(spec);
    }
    runtime.deploy_sensor(std::move(config), std::make_unique<sim::StaticMobility>(sim::Vec2{
                                                 100.0 + 50.0 * static_cast<double>(id), 200.0}));
  }
}

SharingOutcome run_scenario(std::size_t consumers, bool shared, std::uint64_t seed) {
  Runtime runtime(field_config(seed));
  runtime.deploy_receivers(4, 400);

  // Shared: one stream per sensor, everyone subscribes to it.
  // Coupled: one dedicated stream per (sensor, consumer) pair — the
  // sensor samples and transmits once per consumer.
  deploy_sensors(runtime, shared ? 1 : consumers);

  std::vector<std::unique_ptr<core::Consumer>> pool;
  std::uint64_t delivered = 0;
  for (std::size_t c = 0; c < consumers; ++c) {
    auto consumer =
        std::make_unique<core::Consumer>(runtime.bus(), "consumer." + std::to_string(c));
    runtime.provision(*consumer, "app" + std::to_string(c));
    consumer->set_data_handler([&delivered](const core::Delivery&) { ++delivered; });
    for (core::SensorId id = 1; id <= kSensors; ++id) {
      const core::InternalStreamId stream =
          shared ? 0 : static_cast<core::InternalStreamId>(c);
      consumer->subscribe(core::StreamPattern::exact({id, stream}));
    }
    pool.push_back(std::move(consumer));
  }
  runtime.run_for(Duration::millis(50));

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(30));

  double energy_spent = 0;
  for (std::size_t i = 0; i < runtime.field().sensor_count(); ++i) {
    energy_spent += kInitialBattery - runtime.field().sensor_at(i).battery_joules();
  }

  const auto snap = runtime.telemetry().registry.snapshot();
  SharingOutcome outcome;
  if (delivered > 0) {
    outcome.radio_frames_per_delivery =
        static_cast<double>(snap.counter("garnet.radio.uplink_frames")) /
        static_cast<double>(delivered);
    outcome.radio_bytes_per_delivery =
        static_cast<double>(snap.counter("garnet.radio.uplink_bytes_sent")) /
        static_cast<double>(delivered);
    outcome.fixed_msgs_per_delivery = static_cast<double>(snap.counter("garnet.bus.posted")) /
                                      static_cast<double>(delivered);
  }
  outcome.energy_joules = energy_spent;
  return outcome;
}

/// Args: consumer count, shared (1 = Garnet, 0 = coupled baseline).
void BM_StreamSharing(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  const bool shared = state.range(1) != 0;

  SharingOutcome outcome;
  for (auto _ : state) {
    outcome = run_scenario(consumers, shared, /*seed=*/21);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["radio_frames_per_delivery"] = outcome.radio_frames_per_delivery;
  state.counters["radio_bytes_per_delivery"] = outcome.radio_bytes_per_delivery;
  state.counters["fixed_msgs_per_delivery"] = outcome.fixed_msgs_per_delivery;
  state.counters["sensor_energy_J"] = outcome.energy_joules;
}
BENCHMARK(BM_StreamSharing)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {0, 1}})
    ->ArgNames({"consumers", "shared"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
