// Experiment E12 (extension) — network lifetime under reporting load.
//
// The paper's opening argument rests on "low cost, low power" devices
// (its first reference is "Upper Bounds on the Lifetime of Sensor
// Networks"), and its actuation path exists largely so consumers can
// *slow sensors down* when fidelity is not needed. This bench closes
// that loop quantitatively: identical fields run at different sampling
// intervals and payload sizes, and we report when batteries start dying
// and when half the field is dead. The shape to expect: lifetime scales
// ~linearly with the interval and inversely with bytes-per-message —
// which is exactly the leverage a Resource-Manager-mediated slowdown
// (E8) gives a deployment.
#include <benchmark/benchmark.h>

#include "garnet/runtime.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

struct LifetimeOutcome {
  double first_death_s = 0;
  double half_dead_s = 0;
  double messages_total = 0;
};

constexpr std::size_t kSensors = 10;

LifetimeOutcome run_field(std::uint32_t interval_ms, std::size_t payload_bytes,
                          std::uint64_t seed) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {400, 400}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  Runtime runtime(config);
  runtime.deploy_receivers(4, 350);

  for (core::SensorId id = 1; id <= kSensors; ++id) {
    wireless::SensorNode::Config sensor;
    sensor.id = id;
    sensor.battery_joules = 2.0;  // small cell: dies within the run
    sensor.tx_cost_joules_per_byte = 50e-6;
    wireless::StreamSpec spec;
    spec.interval_ms = interval_ms;
    spec.constraints.max_payload = 0xFFFF;
    spec.generate = [payload_bytes](util::SimTime, util::Rng&) {
      return util::Bytes(payload_bytes);
    };
    sensor.streams.push_back(spec);
    runtime.deploy_sensor(std::move(sensor),
                          std::make_unique<sim::StaticMobility>(
                              sim::Vec2{40.0 * static_cast<double>(id), 200.0}));
  }

  runtime.start_sensors();

  LifetimeOutcome outcome;
  const double step_s = 60.0;
  for (int step = 1; step <= 24 * 60; ++step) {  // up to one virtual day
    runtime.run_for(Duration::seconds(static_cast<std::int64_t>(step_s)));
    std::size_t dead = 0;
    for (std::size_t i = 0; i < runtime.field().sensor_count(); ++i) {
      if (!runtime.field().sensor_at(i).alive()) ++dead;
    }
    if (dead >= 1 && outcome.first_death_s == 0) {
      outcome.first_death_s = runtime.scheduler().now().to_seconds();
    }
    if (dead >= kSensors / 2) {
      outcome.half_dead_s = runtime.scheduler().now().to_seconds();
      break;
    }
  }
  for (std::size_t i = 0; i < runtime.field().sensor_count(); ++i) {
    outcome.messages_total +=
        static_cast<double>(runtime.field().sensor_at(i).messages_sent());
  }
  return outcome;
}

/// Args: sampling interval ms, payload bytes.
void BM_NetworkLifetime(benchmark::State& state) {
  const auto interval_ms = static_cast<std::uint32_t>(state.range(0));
  const auto payload = static_cast<std::size_t>(state.range(1));

  LifetimeOutcome outcome;
  for (auto _ : state) {
    outcome = run_field(interval_ms, payload, 11);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["first_death_s"] = outcome.first_death_s;
  state.counters["half_dead_s"] = outcome.half_dead_s;
  state.counters["messages_before_half_dead"] = outcome.messages_total;
}
BENCHMARK(BM_NetworkLifetime)
    ->ArgsProduct({{250, 1000, 4000}, {8, 64, 256}})
    ->ArgNames({"interval_ms", "payload"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
