// Shared helpers for the Garnet experiment benches.
//
// Conventions (see EXPERIMENTS.md):
//  * wall-clock rates (items_per_second) measure the middleware code;
//  * domain outcomes (duplicate ratios, activations, virtual-time
//    latencies) are exposed as benchmark counters, so each bench's
//    output is the experiment's table.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "core/message.hpp"
#include "util/rng.hpp"

namespace garnet::bench {

/// How a bench configures admission control (net/admission.hpp):
/// kProbed runs the throughput-probing controller, kStatic freezes the
/// ticket pools at their initial size — the pre-admission behaviour, so
/// old sweeps stay reproducible (`--admission=static`).
enum class AdmissionMode { kProbed, kStatic };

inline AdmissionMode& admission_mode() {
  static AdmissionMode mode = AdmissionMode::kProbed;
  return mode;
}

/// Strips Garnet-specific flags from argv before benchmark::Initialize
/// (google-benchmark exits on arguments it does not recognise):
///   --admission=static|probed   sets admission_mode()
///   --probe                     sets *probe_only (run only the probe
///                               sweep; callers translate it into a
///                               --benchmark_filter)
/// Unknown arguments pass through untouched.
inline void parse_garnet_flags(int& argc, char** argv, bool* probe_only = nullptr) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--admission=static") {
      admission_mode() = AdmissionMode::kStatic;
    } else if (arg == "--admission=probed") {
      admission_mode() = AdmissionMode::kProbed;
    } else if (arg == "--probe") {
      if (probe_only != nullptr) *probe_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
}

/// Deterministic random payload of `size` bytes.
inline util::Bytes random_payload(util::Rng& rng, std::size_t size) {
  util::Bytes payload(size);
  for (auto& b : payload) b = static_cast<std::byte>(rng.next());
  return payload;
}

/// Writes one experiment's machine-readable outcome: BENCH_<name>.json
/// in $GARNET_BENCH_JSON_DIR (default: the working directory). The
/// payload is typically a telemetry exposition (obs::render_json /
/// RuntimeReport::to_json), so the experiment tables in EXPERIMENTS.md
/// can be regenerated without scraping benchmark counters.
inline bool write_bench_report(const std::string& name, const std::string& json) {
  const char* dir = std::getenv("GARNET_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  path += "/BENCH_" + name + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

/// A plausible data message for codec/pipeline benches.
inline core::DataMessage make_message(util::Rng& rng, std::size_t payload_size) {
  core::DataMessage msg;
  msg.stream_id.sensor = static_cast<core::SensorId>(rng.below(core::kMaxSensorId + 1));
  msg.stream_id.stream = static_cast<core::InternalStreamId>(rng.below(256));
  msg.sequence = static_cast<core::SequenceNo>(rng.below(65536));
  msg.payload = random_payload(rng, payload_size);
  return msg;
}

}  // namespace garnet::bench
