// Shared helpers for the Garnet experiment benches.
//
// Conventions (see EXPERIMENTS.md):
//  * wall-clock rates (items_per_second) measure the middleware code;
//  * domain outcomes (duplicate ratios, activations, virtual-time
//    latencies) are exposed as benchmark counters, so each bench's
//    output is the experiment's table.
#pragma once

#include <benchmark/benchmark.h>

#include "core/message.hpp"
#include "util/rng.hpp"

namespace garnet::bench {

/// Deterministic random payload of `size` bytes.
inline util::Bytes random_payload(util::Rng& rng, std::size_t size) {
  util::Bytes payload(size);
  for (auto& b : payload) b = static_cast<std::byte>(rng.next());
  return payload;
}

/// A plausible data message for codec/pipeline benches.
inline core::DataMessage make_message(util::Rng& rng, std::size_t payload_size) {
  core::DataMessage msg;
  msg.stream_id.sensor = static_cast<core::SensorId>(rng.below(core::kMaxSensorId + 1));
  msg.stream_id.stream = static_cast<core::InternalStreamId>(rng.below(256));
  msg.sequence = static_cast<core::SequenceNo>(rng.below(65536));
  msg.payload = random_payload(rng, payload_size);
  return msg;
}

}  // namespace garnet::bench
