// Substrate costs underneath every experiment: the discrete-event
// scheduler, the fixed-network bus, and the RPC layer. These bound what
// the middleware numbers in E3/E9 can possibly be, and make regressions
// in the foundations visible independently of the services.
#include <benchmark/benchmark.h>

#include "net/rpc.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace garnet::bench {
namespace {

using util::Duration;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  util::Rng rng(1);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      scheduler.schedule_after(Duration::micros(static_cast<std::int64_t>(rng.below(1000))),
                               [&counter] { ++counter; });
    }
    scheduler.run();
  }
  benchmark::DoNotOptimize(counter);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(16)->Arg(256)->Arg(4096)->ArgName("batch");

void BM_SchedulerCancel(benchmark::State& state) {
  sim::Scheduler scheduler;
  for (auto _ : state) {
    const sim::EventId id = scheduler.schedule_after(Duration::seconds(100), [] {});
    benchmark::DoNotOptimize(scheduler.cancel(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerCancel);

void BM_BusPostDeliver(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  std::uint64_t delivered = 0;
  const net::Address sink =
      bus.add_endpoint("sink", [&delivered](net::Envelope) { ++delivered; });
  // Wrapped once; every post shares the same immutable buffer.
  const util::SharedBytes payload{util::Bytes(payload_size)};

  for (auto _ : state) {
    bus.post(sink, sink, net::MessageType::kAppBase, payload);
    scheduler.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * payload_size));
}
BENCHMARK(BM_BusPostDeliver)->Arg(16)->Arg(256)->Arg(4096)->ArgName("payload");

void BM_RpcRoundTrip(benchmark::State& state) {
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  net::RpcNode server(bus, "server");
  net::RpcNode client(bus, "client");
  server.expose(1, [](net::Address, util::BytesView args) -> net::RpcResult {
    return util::Bytes(args.begin(), args.end());
  });
  const util::Bytes args(32);

  std::uint64_t completed = 0;
  for (auto _ : state) {
    client.call(server.address(), 1, args, net::CallOptions{},
                [&completed](net::RpcResult) { ++completed; });
    scheduler.run();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RpcRoundTrip);

void BM_RpcConcurrentCalls(benchmark::State& state) {
  const auto in_flight = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  net::RpcNode server(bus, "server");
  net::RpcNode client(bus, "client");
  server.expose(1, [](net::Address, util::BytesView) -> net::RpcResult { return util::Bytes{}; });

  for (auto _ : state) {
    for (std::size_t i = 0; i < in_flight; ++i) {
      client.call(server.address(), 1, {}, net::CallOptions{}, [](net::RpcResult) {});
    }
    scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * in_flight));
}
BENCHMARK(BM_RpcConcurrentCalls)->Arg(1)->Arg(16)->Arg(256)->ArgName("in_flight");

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
