// Experiment A8 — registration-scale: the StreamTable migration at the
// paper's sensor counts.
//
// Garnet sizes its id space for 2^24 sensors; this bench walks the full
// fixed-side path — catalog registration, location evidence, filtering
// dedup state, dispatch fan-out with per-stream cursors — at 10^4, 10^5
// and 10^6 streams and reports what that footprint costs:
//
//   * bytes/stream: index + arena bytes across the four services'
//     StreamTables, divided by the stream count;
//   * msgs/s: steady-state dispatch throughput once the tables hold the
//     tier's population;
//   * checkpoint-capture stall: wall time of a full capture (walks
//     everything) vs an incremental capture after ~1% of streams were
//     touched — the stall the delta frames exist to eliminate.
//
// Every tier's numbers land in BENCH_scale.json; scripts/ci.sh gates on
// it via scripts/check_scale_report.py (bytes/stream budget, the 10^5
// tier's presence, and the delta-stall budget).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "core/location.hpp"
#include "sim/scheduler.hpp"

namespace garnet::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct TierResult {
  std::int64_t streams = 0;
  double registrations_per_sec = 0;
  double msgs_per_sec = 0;
  double bytes_per_stream = 0;
  double catalog_bytes = 0;
  double filtering_bytes = 0;
  double dispatch_bytes = 0;
  double location_bytes = 0;
  double full_capture_ms = 0;   ///< Max single-service full-capture stall.
  double delta_capture_ms = 0;  ///< Max single-service delta stall, ~1% dirty.
  double full_capture_bytes = 0;
  double delta_capture_bytes = 0;
};

TierResult run_tier(std::int64_t streams) {
  sim::Scheduler scheduler;
  net::MessageBus::Config bus_config;
  bus_config.max_jitter = util::Duration{};
  net::MessageBus bus(scheduler, bus_config);
  core::AuthService auth{{}};
  core::StreamCatalog catalog;
  core::FilteringService filtering(scheduler, {});
  core::LocationService location(bus, auth, {});
  core::DispatchingService dispatch(bus, auth, catalog);

  const net::Address consumer = bus.add_endpoint("scale.consumer", [](net::Envelope) {});
  dispatch.subscribe(consumer, core::StreamPattern::everything());

  // A 4x4 antenna grid so location evidence lands in known receivers.
  std::vector<wireless::Receiver> antennas;
  for (std::uint32_t i = 0; i < 16; ++i) {
    antennas.push_back({.id = static_cast<wireless::ReceiverId>(1 + i),
                        .position = {100.0 * static_cast<double>(i % 4),
                                     100.0 * static_cast<double>(i / 4)},
                        .range_m = 150.0});
  }
  location.set_receiver_layout(antennas);

  TierResult result;
  result.streams = streams;
  const auto count = static_cast<std::uint32_t>(streams);

  // Phase 1 — registration: every stream advertised into the catalog.
  const auto reg_start = Clock::now();
  for (std::uint32_t sensor = 0; sensor < count; ++sensor) {
    catalog.advertise({sensor, 0}, {}, "temperature");
  }
  result.registrations_per_sec = static_cast<double>(streams) / (ms_since(reg_start) / 1e3);

  // Phase 2 — location evidence for a slice of the population (every
  // 8th sensor; receivers hear active sensors, not the whole id space).
  const util::SimTime heard = scheduler.now();
  for (std::uint32_t sensor = 0; sensor < count; sensor += 8) {
    location.observe({.sensor = sensor,
                      .receiver = static_cast<wireless::ReceiverId>(1 + sensor % 16),
                      .rssi_dbm = -60.0,
                      .heard_at = heard});
  }

  // Phase 3 — traffic: one message per stream through filtering state
  // and the dispatch fan-out, populating the per-stream cursor table.
  core::DataMessage msg;
  msg.payload = util::Bytes(16);
  const auto traffic_start = Clock::now();
  for (std::uint32_t sensor = 0; sensor < count; ++sensor) {
    msg.stream_id = {sensor, 0};
    msg.sequence = 1;
    filtering.note_seen(msg.stream_id, msg.sequence);
    dispatch.on_filtered(msg, scheduler.now());
    if ((sensor & 0x1FFF) == 0x1FFF) scheduler.run();  // drain deliveries
  }
  scheduler.run();
  result.msgs_per_sec = static_cast<double>(streams) / (ms_since(traffic_start) / 1e3);

  // Footprint once the tier's population is resident.
  result.catalog_bytes = static_cast<double>(catalog.memory_bytes());
  result.filtering_bytes = static_cast<double>(filtering.memory_bytes());
  result.dispatch_bytes = static_cast<double>(dispatch.memory_bytes());
  result.location_bytes = static_cast<double>(location.memory_bytes());
  result.bytes_per_stream = (result.catalog_bytes + result.filtering_bytes +
                             result.dispatch_bytes + result.location_bytes) /
                            static_cast<double>(streams);

  // Phase 4 — full-capture stall: each service walks its whole table.
  // The headline number is the worst single capture (one service's
  // checkpoint blocks that service, not the others).
  {
    const auto t0 = Clock::now();
    const util::Bytes c = catalog.capture_full();
    const double catalog_ms = ms_since(t0);
    const auto t1 = Clock::now();
    const util::Bytes f = filtering.capture_full();
    const double filtering_ms = ms_since(t1);
    const auto t2 = Clock::now();
    const util::Bytes d = dispatch.capture_full();
    const double dispatch_ms = ms_since(t2);
    const auto t3 = Clock::now();
    const util::Bytes l = location.capture_full();
    const double location_ms = ms_since(t3);
    result.full_capture_ms =
        std::max({catalog_ms, filtering_ms, dispatch_ms, location_ms});
    result.full_capture_bytes =
        static_cast<double>(c.size() + f.size() + d.size() + l.size());
  }

  // Phase 5 — touch ~1% of streams, then capture the delta. This is the
  // steady-state checkpoint: cost tracks traffic, not population.
  for (std::uint32_t sensor = 0; sensor < count; sensor += 100) {
    msg.stream_id = {sensor, 0};
    msg.sequence = 2;
    filtering.note_seen(msg.stream_id, msg.sequence);
    dispatch.on_filtered(msg, scheduler.now());
  }
  scheduler.run();
  {
    const auto t0 = Clock::now();
    const util::Bytes c = catalog.capture_delta();
    const double catalog_ms = ms_since(t0);
    const auto t1 = Clock::now();
    const util::Bytes f = filtering.capture_delta();
    const double filtering_ms = ms_since(t1);
    const auto t2 = Clock::now();
    const util::Bytes d = dispatch.capture_delta();
    const double dispatch_ms = ms_since(t2);
    const auto t3 = Clock::now();
    const util::Bytes l = location.capture_delta();
    const double location_ms = ms_since(t3);
    result.delta_capture_ms =
        std::max({catalog_ms, filtering_ms, dispatch_ms, location_ms});
    result.delta_capture_bytes =
        static_cast<double>(c.size() + f.size() + d.size() + l.size());
  }
  return result;
}

/// Tiers already measured this process, keyed by stream count; the JSON
/// report is rewritten after every tier so the file always holds every
/// tier the run has produced (the 10^6 tier lands last).
std::map<std::int64_t, TierResult>& tier_results() {
  static std::map<std::int64_t, TierResult> results;
  return results;
}

void write_scale_report() {
  std::string json = "{\"experiment\":\"scale\",\"tiers\":[";
  bool first = true;
  for (const auto& [streams, tier] : tier_results()) {
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"streams\":%lld,\"registrations_per_sec\":%.0f,\"msgs_per_sec\":%.0f,"
        "\"bytes_per_stream\":%.1f,\"catalog_bytes\":%.0f,\"filtering_bytes\":%.0f,"
        "\"dispatch_bytes\":%.0f,\"location_bytes\":%.0f,\"full_capture_ms\":%.3f,"
        "\"delta_capture_ms\":%.3f,\"full_capture_bytes\":%.0f,\"delta_capture_bytes\":%.0f}",
        first ? "" : ",", static_cast<long long>(streams), tier.registrations_per_sec,
        tier.msgs_per_sec, tier.bytes_per_stream, tier.catalog_bytes, tier.filtering_bytes,
        tier.dispatch_bytes, tier.location_bytes, tier.full_capture_ms, tier.delta_capture_ms,
        tier.full_capture_bytes, tier.delta_capture_bytes);
    json += buf;
    first = false;
  }
  json += "]}";
  write_bench_report("scale", json);
}

/// Arg: stream count. 10^4 -> 10^5 -> 10^6 — the last tier is the
/// paper-scale population the StreamTable layout exists for.
void BM_RegistrationScale(benchmark::State& state) {
  const std::int64_t streams = state.range(0);
  TierResult tier;
  for (auto _ : state) {
    tier = run_tier(streams);
    benchmark::DoNotOptimize(&tier);
  }
  state.counters["regs_per_sec"] = tier.registrations_per_sec;
  state.counters["msgs_per_sec"] = tier.msgs_per_sec;
  state.counters["bytes_per_stream"] = tier.bytes_per_stream;
  state.counters["full_capture_ms"] = tier.full_capture_ms;
  state.counters["delta_capture_ms"] = tier.delta_capture_ms;
  state.SetItemsProcessed(state.iterations() * streams);

  tier_results()[streams] = tier;
  write_scale_report();
}
BENCHMARK(BM_RegistrationScale)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->ArgName("streams")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
