// Experiment E13 — tree routing: chain depth vs relay churn.
//
// Sweeps the multi-hop chain depth (1 = source inside receiver range,
// 2 = one relay hop, 4 = three relay hops) against relay churn (none,
// or 1% crash probability per relay per 500ms protocol round) and
// reports the delivery contract the routing plane exists for: the
// fraction of offered samples that arrive at the consumer, duplicates
// past filtering (must be zero — dedup plus the relay filter close the
// re-forward window), and ttl_dropped (must be zero — a TTL expiry in
// a loop-free chain means the forest looped traffic). The canonical
// cell (depth 4 under churn) is run at two advance() cadences and its
// fault + repair journals compared byte-for-byte; the full telemetry
// snapshot lands in BENCH_tree.json and scripts/ci.sh gates on it via
// scripts/check_tree_report.py.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "garnet/runtime.hpp"
#include "obs/export.hpp"

namespace garnet::bench {
namespace {

using util::Duration;
using util::SimTime;

constexpr std::int64_t kRunMs = 40000;
constexpr std::int64_t kRoundMs = 500;   ///< One protocol round.
constexpr std::int64_t kRestartMs = 1000;

struct TreeOutcome {
  double offered = 0;
  double delivered = 0;
  double duplicates = 0;
  double delivery_ratio = 0;
  double realized_depth = 0;
  double ttl_dropped = 0;
  double orphan_events = 0;
  double reattaches = 0;
  double forwarded = 0;
  double relay_crashes = 0;
  std::string fault_journal;
  std::string tree_journal;
};

/// Pre-samples the churn schedule outside the sim: every relay rolls a
/// 1% crash chance per round, rejoining cold 1s later. The plan is a
/// pure function of the fixed seed, so the run itself draws nothing —
/// relay faults ride the journal as pure time triggers. The last 5s are
/// kept quiet so the chain re-stabilises inside the measurement window,
/// and at least one crash is guaranteed so the gate always exercises
/// the repair path.
void schedule_churn(Runtime::Config& config, const std::vector<core::SensorId>& relays) {
  if (relays.empty()) return;
  util::Rng rng(0x7C0DE);
  std::map<core::SensorId, std::int64_t> down_until;
  bool any = false;
  for (std::int64_t at = 2 * kRoundMs; at + 5000 < kRunMs; at += kRoundMs) {
    for (core::SensorId id : relays) {
      if (at < down_until[id]) continue;
      if (!rng.chance(0.01)) continue;
      net::FaultPlan::RelayFaultSpec fault;
      fault.node = id;
      fault.at = SimTime{} + Duration::millis(at);
      fault.restart_after = Duration::millis(kRestartMs);
      config.faults.relay_faults.push_back(fault);
      down_until[id] = at + kRestartMs + 2000;
      any = true;
    }
  }
  if (!any) {
    net::FaultPlan::RelayFaultSpec fault;
    fault.node = relays.back();
    fault.at = SimTime{} + Duration::millis(kRunMs / 2);
    fault.restart_after = Duration::millis(kRestartMs);
    config.faults.relay_faults.push_back(fault);
  }
}

/// One cell: a straight chain with `depth - 1` relays spaced 120m apart
/// (receiver range 120m, overhear range 150m — each node hears exactly
/// its chain neighbours) and a sampling source at the far end, advanced
/// in `step`-sized strides. When `json_out` is set, the snapshot gains
/// the headline bench.tree.* gauges, including the journal match
/// against the `coarse` run of the same cell at a different cadence.
TreeOutcome run_tree_cell(int depth, bool churn, Duration step,
                          const TreeOutcome* coarse = nullptr,
                          std::string* json_out = nullptr) {
  Runtime::Config config;
  config.field.area = {{0, 0}, {800, 200}};
  config.field.seed = 0xE13;
  config.field.radio.base_loss = 0.0;
  config.field.radio.edge_loss = 0.0;
  config.field.tree_beacons = true;
  config.field.tree.beacon_interval = Duration::millis(100);
  config.field.tree_journal_limit = 8192;
  config.faults.journal_limit = 8192;

  std::vector<core::SensorId> relays;
  for (int hop = 1; hop < depth; ++hop) relays.push_back(static_cast<core::SensorId>(hop));
  const core::SensorId source = static_cast<core::SensorId>(depth);
  if (churn) schedule_churn(config, relays);

  Runtime runtime(config);
  runtime.field().medium().add_receiver({1, {0, 0}, 120});
  runtime.location().set_receiver_layout(runtime.field().medium().receivers());

  const auto chain_node = [&](core::SensorId id, bool sampling) {
    wireless::SensorNode::Config node;
    node.id = id;
    node.capabilities.relay_capable = true;
    node.relay_overhear_range_m = 150;
    node.tree = config.field.tree;
    if (sampling) {
      wireless::StreamSpec spec;
      spec.interval_ms = 200;
      node.streams.push_back(spec);
    }
    return node;
  };
  for (int hop = 1; hop < depth; ++hop) {
    runtime.deploy_sensor(chain_node(relays[static_cast<std::size_t>(hop - 1)], false),
                          std::make_unique<sim::StaticMobility>(
                              sim::Vec2{100.0 + 120.0 * (hop - 1), 0}));
  }
  runtime.deploy_sensor(chain_node(source, /*sampling=*/true),
                        std::make_unique<sim::StaticMobility>(
                            sim::Vec2{100.0 + 120.0 * (depth - 1), 0}));

  core::Consumer consumer(runtime.bus(), "consumer.app");
  runtime.provision(consumer, "app");
  consumer.subscribe(core::StreamPattern::all_of(source));
  std::map<std::pair<std::uint32_t, core::SequenceNo>, int> counts;
  consumer.set_data_handler([&](const core::DeliveryView& d) {
    ++counts[{d.message.stream_id.packed(), d.message.sequence}];
  });
  runtime.run_for(Duration::millis(20));

  runtime.start_sensors();
  const SimTime end = runtime.scheduler().now() + Duration::millis(kRunMs);
  while (runtime.scheduler().now() < end) runtime.run_for(step);

  TreeOutcome outcome;
  for (const auto& [key, count] : counts) {
    outcome.delivered += 1;
    if (count > 1) outcome.duplicates += count - 1;
  }
  const wireless::SensorNode* node = runtime.field().find_sensor(source);
  outcome.offered = node != nullptr ? static_cast<double>(node->messages_sent()) : 0;
  outcome.delivery_ratio = outcome.offered > 0 ? outcome.delivered / outcome.offered : 0;
  if (node != nullptr && node->router() != nullptr && node->router()->attached()) {
    outcome.realized_depth = node->router()->depth();
  }
  const wireless::tree::TreeStats& tree = runtime.field().tree_stats();
  outcome.ttl_dropped = static_cast<double>(tree.ttl_dropped);
  outcome.orphan_events = static_cast<double>(tree.orphan_events);
  outcome.reattaches = static_cast<double>(tree.attaches);
  outcome.forwarded = static_cast<double>(tree.forwarded);
  // The injector only exists when the plan is enabled (churn cells).
  if (const net::FaultInjector* injector = runtime.bus().fault_injector()) {
    outcome.relay_crashes = static_cast<double>(injector->counters().relay_crashed);
    outcome.fault_journal = injector->journal_text();
  }
  outcome.tree_journal = runtime.field().tree_journal().text();

  if (json_out != nullptr) {
    const double journal_match = coarse != nullptr &&
                                         coarse->fault_journal == outcome.fault_journal &&
                                         coarse->tree_journal == outcome.tree_journal
                                     ? 1
                                     : 0;
    obs::MetricsRegistry& registry = runtime.telemetry().registry;
    registry.add_collector([&outcome, depth, journal_match](obs::SnapshotBuilder& out) {
      out.gauge("bench.tree.depth", depth);
      out.gauge("bench.tree.realized_depth", outcome.realized_depth);
      out.gauge("bench.tree.offered", outcome.offered);
      out.gauge("bench.tree.delivered", outcome.delivered);
      out.gauge("bench.tree.delivery_ratio", outcome.delivery_ratio);
      out.gauge("bench.tree.duplicates", outcome.duplicates);
      out.gauge("bench.tree.ttl_dropped", outcome.ttl_dropped);
      out.gauge("bench.tree.orphan_events", outcome.orphan_events);
      out.gauge("bench.tree.relay_crashes", outcome.relay_crashes);
      out.gauge("bench.tree.journal_match", journal_match);
    });
    *json_out = obs::render_json(registry.snapshot());
  }
  return outcome;
}

/// Args: chain depth (hops from receiver to source); churn percent per
/// relay per 500ms round (0 or 1).
void BM_TreeDepthChurn(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const bool churn = state.range(1) != 0;

  TreeOutcome outcome;
  for (auto _ : state) {
    outcome = run_tree_cell(depth, churn, Duration::millis(kRunMs));
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["offered"] = outcome.offered;
  state.counters["delivered"] = outcome.delivered;
  state.counters["delivery_ratio"] = outcome.delivery_ratio;
  state.counters["duplicates"] = outcome.duplicates;
  state.counters["ttl_dropped"] = outcome.ttl_dropped;
  state.counters["orphans"] = outcome.orphan_events;
  state.counters["reattaches"] = outcome.reattaches;
  state.counters["forwarded"] = outcome.forwarded;
  state.counters["relay_crashes"] = outcome.relay_crashes;

  // Machine-readable exposition for the canonical cell (depth 4 under
  // churn). The cell runs once in a single 40s stride and once in 25ms
  // hops; the journals must agree byte-for-byte (the churn plan draws
  // nothing mid-run and the router draws nothing at all), and
  // scripts/ci.sh asserts delivery >= 95%, zero duplicates and zero
  // TTL expiries on the snapshot.
  if (depth == 4 && churn) {
    const TreeOutcome reference = run_tree_cell(depth, churn, Duration::millis(kRunMs));
    std::string json;
    run_tree_cell(depth, churn, Duration::millis(25), &reference, &json);
    write_bench_report("tree", json);
  }
}
BENCHMARK(BM_TreeDepthChurn)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->ArgNames({"depth", "churn_pct"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace garnet::bench

BENCHMARK_MAIN();
